//! The deterministic discrete-event execution engine.
//!
//! The engine runs [`Program`]s on a configurable simulated machine
//! ([`MachineConfig`]): a number of hardware contexts, a lock hand-off
//! policy and optional hand-off/spawn latencies. Virtual time advances
//! only through `Compute` actions; synchronization operations are
//! instantaneous (plus configured latencies). Every run with the same
//! programs, configuration and seed produces a byte-identical trace.
//!
//! The produced [`Trace`] uses exactly the event protocol of the paper's
//! instrumentation tool, so the analysis cannot tell a simulated execution
//! from a real one.

use crate::error::{Result, SimError};
use crate::machine::{LockPolicy, MachineConfig};
use crate::program::{Action, Program, StepCtx};
use critlock_trace::{
    ClockDomain, Event, EventKind, ObjId, ObjKind, ThreadId, ThreadStream, Trace, TraceMeta,
};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};

#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
enum EngineEvent {
    StartThread(ThreadId),
    ComputeDone { tid: ThreadId, gen: u64 },
    WakeLock { tid: ThreadId, lock: ObjId },
    WakeRw { tid: ThreadId, lock: ObjId, write: bool },
    WakeBarrier { tid: ThreadId, barrier: ObjId, epoch: u32 },
    WakeCond { tid: ThreadId, cv: ObjId, mutex: ObjId, seq: u64 },
    WakeJoin { tid: ThreadId, child: ThreadId },
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum TState {
    NotStarted,
    Ready,
    Running,
    Computing,
    BlockedLock(ObjId),
    InBarrier(ObjId),
    CondWaiting(ObjId),
    Joining(ThreadId),
    Finished,
}

struct ThreadCell {
    name: String,
    program: Option<Box<dyn Program>>,
    state: TState,
    events: Vec<Event>,
    held: Vec<ObjId>,
    last_spawned: Option<ThreadId>,
    remaining: u64,
    slice_start: u64,
    gen: u64,
    joiners: Vec<ThreadId>,
}

struct LockState {
    owner: Option<ThreadId>,
    waiters: VecDeque<ThreadId>,
}

struct RwLockState {
    /// Exclusive holder, if any.
    writer: Option<ThreadId>,
    /// Shared holders.
    readers: Vec<ThreadId>,
    /// FIFO of waiters with their requested mode (true = write). Grants
    /// happen strictly in queue order, which gives writer-preference the
    /// moment a writer reaches the front (no reader barging).
    waiters: VecDeque<(ThreadId, bool)>,
}

struct BarrierState {
    parties: usize,
    arrived: Vec<ThreadId>,
    epoch: u32,
}

struct CondvarState {
    waiters: VecDeque<(ThreadId, ObjId)>,
    next_seq: u64,
}

enum Slot {
    Lock(usize),
    RwLock(usize),
    Barrier(usize),
    Condvar(usize),
    Marker,
}

/// The simulator: register synchronization objects, spawn programs, run.
///
/// ```
/// use critlock_sim::{Simulator, MachineConfig, Op, ScriptProgram};
///
/// let mut sim = Simulator::new("two-phase", MachineConfig::ideal());
/// let l = sim.add_lock("L");
/// for i in 0..2 {
///     sim.spawn(
///         format!("T{i}"),
///         ScriptProgram::new(vec![Op::Critical(l, 10), Op::Compute(5)]),
///     );
/// }
/// let trace = sim.run().unwrap();
/// // The two critical sections serialize: 10 + 10, then 5 in parallel.
/// assert_eq!(trace.makespan(), 25);
/// ```
pub struct Simulator {
    cfg: MachineConfig,
    app: String,
    rng: SmallRng,
    time: u64,
    seq: u64,
    heap: BinaryHeap<Reverse<(u64, u64, EngineEvent)>>,
    threads: Vec<ThreadCell>,
    slots: Vec<Slot>,
    names: Vec<(ObjKind, String)>,
    locks: Vec<LockState>,
    rwlocks: Vec<RwLockState>,
    barriers: Vec<BarrierState>,
    condvars: Vec<CondvarState>,
    ready: VecDeque<ThreadId>,
    running: usize,
    event_count: u64,
}

impl Simulator {
    /// Create a simulator for an application named `app` on the given
    /// machine.
    pub fn new(app: impl Into<String>, cfg: MachineConfig) -> Self {
        let rng = SmallRng::seed_from_u64(cfg.seed);
        Simulator {
            cfg,
            app: app.into(),
            rng,
            time: 0,
            seq: 0,
            heap: BinaryHeap::new(),
            threads: Vec::new(),
            slots: Vec::new(),
            names: Vec::new(),
            locks: Vec::new(),
            rwlocks: Vec::new(),
            barriers: Vec::new(),
            condvars: Vec::new(),
            ready: VecDeque::new(),
            running: 0,
            event_count: 0,
        }
    }

    /// Register a lock.
    pub fn add_lock(&mut self, name: impl Into<String>) -> ObjId {
        let id = ObjId(self.slots.len() as u32);
        self.slots.push(Slot::Lock(self.locks.len()));
        self.names.push((ObjKind::Lock, name.into()));
        self.locks.push(LockState { owner: None, waiters: VecDeque::new() });
        id
    }

    /// Register a reader-writer lock.
    pub fn add_rwlock(&mut self, name: impl Into<String>) -> ObjId {
        let id = ObjId(self.slots.len() as u32);
        self.slots.push(Slot::RwLock(self.rwlocks.len()));
        self.names.push((ObjKind::RwLock, name.into()));
        self.rwlocks.push(RwLockState {
            writer: None,
            readers: Vec::new(),
            waiters: VecDeque::new(),
        });
        id
    }

    /// Register a barrier for `parties` threads.
    pub fn add_barrier(&mut self, name: impl Into<String>, parties: usize) -> ObjId {
        assert!(parties > 0, "barrier needs at least one party");
        let id = ObjId(self.slots.len() as u32);
        self.slots.push(Slot::Barrier(self.barriers.len()));
        self.names.push((ObjKind::Barrier, name.into()));
        self.barriers.push(BarrierState { parties, arrived: Vec::new(), epoch: 0 });
        id
    }

    /// Register a condition variable.
    pub fn add_condvar(&mut self, name: impl Into<String>) -> ObjId {
        let id = ObjId(self.slots.len() as u32);
        self.slots.push(Slot::Condvar(self.condvars.len()));
        self.names.push((ObjKind::Condvar, name.into()));
        self.condvars.push(CondvarState { waiters: VecDeque::new(), next_seq: 0 });
        id
    }

    /// Register a marker object (phase labels; no simulation semantics).
    pub fn add_marker(&mut self, name: impl Into<String>) -> ObjId {
        let id = ObjId(self.slots.len() as u32);
        self.slots.push(Slot::Marker);
        self.names.push((ObjKind::Marker, name.into()));
        id
    }

    /// Spawn a root thread that starts at time 0.
    pub fn spawn(&mut self, name: impl Into<String>, program: impl Program + 'static) -> ThreadId {
        self.spawn_boxed(name.into(), Box::new(program), 0)
    }

    fn spawn_boxed(&mut self, name: String, program: Box<dyn Program>, start_at: u64) -> ThreadId {
        let tid = ThreadId(self.threads.len() as u32);
        self.threads.push(ThreadCell {
            name,
            program: Some(program),
            state: TState::NotStarted,
            events: Vec::new(),
            held: Vec::new(),
            last_spawned: None,
            remaining: 0,
            slice_start: 0,
            gen: 0,
            joiners: Vec::new(),
        });
        self.schedule(start_at, EngineEvent::StartThread(tid));
        tid
    }

    /// Current virtual time (useful in assertions inside tests).
    pub fn now(&self) -> u64 {
        self.time
    }

    fn schedule(&mut self, at: u64, ev: EngineEvent) {
        self.seq += 1;
        self.heap.push(Reverse((at, self.seq, ev)));
    }

    fn emit(&mut self, tid: ThreadId, kind: EventKind) {
        let ts = self.time;
        self.event_count += 1;
        self.threads[tid.index()].events.push(Event::new(ts, kind));
    }

    fn lock_slot(&self, tid: ThreadId, obj: ObjId) -> Result<usize> {
        match self.slots.get(obj.index()) {
            Some(Slot::Lock(i)) => Ok(*i),
            _ => Err(SimError::BadObject { tid, obj, expected: "lock" }),
        }
    }

    fn rw_slot(&self, tid: ThreadId, obj: ObjId) -> Result<usize> {
        match self.slots.get(obj.index()) {
            Some(Slot::RwLock(i)) => Ok(*i),
            _ => Err(SimError::BadObject { tid, obj, expected: "rwlock" }),
        }
    }

    fn barrier_slot(&self, tid: ThreadId, obj: ObjId) -> Result<usize> {
        match self.slots.get(obj.index()) {
            Some(Slot::Barrier(i)) => Ok(*i),
            _ => Err(SimError::BadObject { tid, obj, expected: "barrier" }),
        }
    }

    fn condvar_slot(&self, tid: ThreadId, obj: ObjId) -> Result<usize> {
        match self.slots.get(obj.index()) {
            Some(Slot::Condvar(i)) => Ok(*i),
            _ => Err(SimError::BadObject { tid, obj, expected: "condvar" }),
        }
    }

    fn has_free_context(&self) -> bool {
        self.cfg.contexts == 0 || self.running < self.cfg.contexts
    }

    fn jittered(&mut self, d: u64) -> u64 {
        if self.cfg.jitter == 0.0 || d == 0 {
            return d;
        }
        let f = 1.0 + self.cfg.jitter * (self.rng.gen::<f64>() * 2.0 - 1.0);
        ((d as f64) * f).round().max(0.0) as u64
    }

    fn pick_waiter(&mut self, lock_idx: usize) -> Option<ThreadId> {
        let policy = self.cfg.lock_policy;
        let waiters = &mut self.locks[lock_idx].waiters;
        if waiters.is_empty() {
            return None;
        }
        match policy {
            LockPolicy::FifoHandoff => waiters.pop_front(),
            LockPolicy::LifoHandoff => waiters.pop_back(),
            LockPolicy::RandomHandoff => {
                let i = self.rng.gen_range(0..waiters.len());
                waiters.remove(i)
            }
        }
    }

    /// Run the simulation to completion and return the trace.
    pub fn run(mut self) -> Result<Trace> {
        loop {
            self.dispatch()?;
            if self.cfg.max_events > 0 && self.event_count > self.cfg.max_events {
                return Err(SimError::EventLimit { time: self.time, limit: self.cfg.max_events });
            }
            match self.heap.pop() {
                Some(Reverse((t, _, ev))) => {
                    debug_assert!(t >= self.time, "time went backwards");
                    self.time = t;
                    self.handle(ev)?;
                }
                None => break,
            }
        }

        // Everything must have finished, otherwise we deadlocked.
        let stuck: Vec<(ThreadId, String)> = self
            .threads
            .iter()
            .enumerate()
            .filter(|(_, c)| c.state != TState::Finished)
            .map(|(i, c)| {
                let what = match c.state {
                    TState::BlockedLock(l) => format!("lock {l}"),
                    TState::InBarrier(b) => format!("barrier {b}"),
                    TState::CondWaiting(cv) => format!("condvar {cv}"),
                    TState::Joining(t) => format!("join of {t}"),
                    other => format!("{other:?}"),
                };
                (ThreadId(i as u32), what)
            })
            .collect();
        if !stuck.is_empty() {
            return Err(SimError::Deadlock { time: self.time, stuck });
        }

        // Assemble the trace.
        let mut meta = TraceMeta::named(self.app.clone());
        meta.clock = ClockDomain::VirtualNs;
        meta.params = self.cfg.params();
        meta.params.insert("threads".into(), self.threads.len().to_string());
        let mut trace = Trace::new(meta);
        for (kind, name) in &self.names {
            trace.register_object(*kind, name.clone());
        }
        for (i, cell) in self.threads.into_iter().enumerate() {
            let mut stream = ThreadStream::new(ThreadId(i as u32));
            stream.name = Some(cell.name);
            stream.events = cell.events;
            trace.push_thread(stream);
        }
        trace.validate().map_err(SimError::InvalidTrace)?;
        Ok(trace)
    }

    /// Hand contexts to ready threads and run them until they block.
    fn dispatch(&mut self) -> Result<()> {
        while self.has_free_context() {
            let Some(tid) = self.ready.pop_front() else { break };
            self.running += 1;
            if self.threads[tid.index()].remaining > 0 {
                // Resuming a preempted compute: finish it before stepping
                // the program again.
                self.threads[tid.index()].state = TState::Computing;
                self.start_slice(tid);
            } else {
                self.threads[tid.index()].state = TState::Running;
                self.run_thread(tid)?;
            }
        }
        Ok(())
    }

    /// Drive one thread's program until it computes, blocks or exits.
    /// The thread must hold a context (`self.running` already counts it).
    fn run_thread(&mut self, tid: ThreadId) -> Result<()> {
        let ti = tid.index();
        loop {
            let mut prog =
                self.threads[ti].program.take().expect("running thread must have a program");
            let action = {
                let mut ctx = StepCtx {
                    now: self.time,
                    tid,
                    last_spawned: self.threads[ti].last_spawned,
                    rng: &mut self.rng,
                };
                prog.step(&mut ctx)
            };
            self.threads[ti].program = Some(prog);

            match action {
                Action::Compute(d) => {
                    let d = self.jittered(d);
                    if d == 0 {
                        continue;
                    }
                    self.threads[ti].remaining = d;
                    self.threads[ti].state = TState::Computing;
                    self.start_slice(tid);
                    return Ok(());
                }
                Action::Lock(lock) => {
                    let li = self.lock_slot(tid, lock)?;
                    self.emit(tid, EventKind::LockAcquire { lock });
                    if self.locks[li].owner == Some(tid) {
                        return Err(SimError::Reentrant { tid, lock });
                    }
                    if self.locks[li].owner.is_none() {
                        self.locks[li].owner = Some(tid);
                        self.emit(tid, EventKind::LockObtain { lock });
                        self.threads[ti].held.push(lock);
                        continue;
                    }
                    self.emit(tid, EventKind::LockContended { lock });
                    self.locks[li].waiters.push_back(tid);
                    self.threads[ti].state = TState::BlockedLock(lock);
                    self.running -= 1;
                    return Ok(());
                }
                Action::Unlock(lock) => {
                    self.do_unlock(tid, lock)?;
                    continue;
                }
                Action::RwRead(lock) | Action::RwWrite(lock) => {
                    let write = matches!(action, Action::RwWrite(_));
                    let ri = self.rw_slot(tid, lock)?;
                    self.emit(tid, EventKind::RwAcquire { lock, write });
                    {
                        let rs = &self.rwlocks[ri];
                        if rs.writer == Some(tid) || rs.readers.contains(&tid) {
                            return Err(SimError::Reentrant { tid, lock });
                        }
                    }
                    let grantable = {
                        let rs = &self.rwlocks[ri];
                        if write {
                            rs.writer.is_none() && rs.readers.is_empty() && rs.waiters.is_empty()
                        } else {
                            rs.writer.is_none() && rs.waiters.is_empty()
                        }
                    };
                    if grantable {
                        if write {
                            self.rwlocks[ri].writer = Some(tid);
                        } else {
                            self.rwlocks[ri].readers.push(tid);
                        }
                        self.emit(tid, EventKind::RwObtain { lock, write });
                        self.threads[ti].held.push(lock);
                        continue;
                    }
                    self.emit(tid, EventKind::RwContended { lock, write });
                    self.rwlocks[ri].waiters.push_back((tid, write));
                    self.threads[ti].state = TState::BlockedLock(lock);
                    self.running -= 1;
                    return Ok(());
                }
                Action::RwUnlock(lock) => {
                    self.do_rw_unlock(tid, lock)?;
                    continue;
                }
                Action::Barrier(barrier) => {
                    let bi = self.barrier_slot(tid, barrier)?;
                    let epoch = self.barriers[bi].epoch;
                    self.emit(tid, EventKind::BarrierArrive { barrier, epoch });
                    self.barriers[bi].arrived.push(tid);
                    if self.barriers[bi].arrived.len() >= self.barriers[bi].parties {
                        // Last arriver: release everyone at the current time.
                        let arrived = std::mem::take(&mut self.barriers[bi].arrived);
                        self.barriers[bi].epoch += 1;
                        self.emit(tid, EventKind::BarrierDepart { barrier, epoch });
                        for other in arrived {
                            if other != tid {
                                self.schedule(
                                    self.time,
                                    EngineEvent::WakeBarrier { tid: other, barrier, epoch },
                                );
                            }
                        }
                        continue;
                    }
                    self.threads[ti].state = TState::InBarrier(barrier);
                    self.running -= 1;
                    return Ok(());
                }
                Action::CondWait { cv, mutex } => {
                    let ci = self.condvar_slot(tid, cv)?;
                    if !self.threads[ti].held.contains(&mutex) {
                        return Err(SimError::CondWaitWithoutMutex { tid, cv, mutex });
                    }
                    // Atomically release the mutex and enqueue as waiter.
                    self.do_unlock(tid, mutex)?;
                    self.emit(tid, EventKind::CondWaitBegin { cv });
                    self.condvars[ci].waiters.push_back((tid, mutex));
                    self.threads[ti].state = TState::CondWaiting(cv);
                    self.running -= 1;
                    return Ok(());
                }
                Action::CondSignal(cv) => {
                    self.do_signal(tid, cv, false)?;
                    continue;
                }
                Action::CondBroadcast(cv) => {
                    self.do_signal(tid, cv, true)?;
                    continue;
                }
                Action::Spawn { name, program } => {
                    let start_at = self.time + self.cfg.spawn_delay_ns;
                    let child = self.spawn_boxed(name, program, start_at);
                    self.emit(tid, EventKind::ThreadCreate { child });
                    self.threads[ti].last_spawned = Some(child);
                    continue;
                }
                Action::Mark(id) => {
                    match self.slots.get(id.index()) {
                        Some(Slot::Marker) => {}
                        _ => return Err(SimError::BadObject { tid, obj: id, expected: "marker" }),
                    }
                    self.emit(tid, EventKind::Marker { id });
                    continue;
                }
                Action::Join(target) => {
                    if target.index() >= self.threads.len() {
                        return Err(SimError::JoinUnknownThread { tid, target });
                    }
                    self.emit(tid, EventKind::JoinBegin { child: target });
                    if self.threads[target.index()].state == TState::Finished {
                        self.emit(tid, EventKind::JoinEnd { child: target });
                        continue;
                    }
                    self.threads[target.index()].joiners.push(tid);
                    self.threads[ti].state = TState::Joining(target);
                    self.running -= 1;
                    return Ok(());
                }
                Action::Exit => {
                    if let Some(&lock) = self.threads[ti].held.first() {
                        return Err(SimError::ExitHoldingLock { tid, lock });
                    }
                    self.emit(tid, EventKind::ThreadExit);
                    self.threads[ti].state = TState::Finished;
                    let joiners = std::mem::take(&mut self.threads[ti].joiners);
                    for j in joiners {
                        self.schedule(self.time, EngineEvent::WakeJoin { tid: j, child: tid });
                    }
                    self.running -= 1;
                    return Ok(());
                }
            }
        }
    }

    fn do_unlock(&mut self, tid: ThreadId, lock: ObjId) -> Result<()> {
        let li = self.lock_slot(tid, lock)?;
        if self.locks[li].owner != Some(tid) {
            return Err(SimError::UnlockNotHeld { tid, lock });
        }
        let ti = tid.index();
        if let Some(pos) = self.threads[ti].held.iter().rposition(|&l| l == lock) {
            self.threads[ti].held.remove(pos);
        }
        self.emit(tid, EventKind::LockRelease { lock });
        match self.pick_waiter(li) {
            Some(next) => {
                // Reserve ownership for the waiter; its obtain event is
                // emitted when the hand-off completes.
                self.locks[li].owner = Some(next);
                self.schedule(
                    self.time + self.cfg.handoff_ns,
                    EngineEvent::WakeLock { tid: next, lock },
                );
            }
            None => {
                self.locks[li].owner = None;
            }
        }
        Ok(())
    }

    fn do_rw_unlock(&mut self, tid: ThreadId, lock: ObjId) -> Result<()> {
        let ri = self.rw_slot(tid, lock)?;
        let write = {
            let rs = &mut self.rwlocks[ri];
            if rs.writer == Some(tid) {
                rs.writer = None;
                true
            } else if let Some(pos) = rs.readers.iter().position(|&t| t == tid) {
                rs.readers.remove(pos);
                false
            } else {
                return Err(SimError::UnlockNotHeld { tid, lock });
            }
        };
        let ti = tid.index();
        if let Some(pos) = self.threads[ti].held.iter().rposition(|&l| l == lock) {
            self.threads[ti].held.remove(pos);
        }
        self.emit(tid, EventKind::RwRelease { lock, write });
        self.grant_rw_waiters(ri, lock);
        Ok(())
    }

    /// Hand the rwlock to waiters in FIFO order: either one writer, or a
    /// maximal run of consecutive readers.
    fn grant_rw_waiters(&mut self, ri: usize, lock: ObjId) {
        loop {
            let grant = {
                let rs = &self.rwlocks[ri];
                match rs.waiters.front() {
                    Some(&(_, true)) if rs.writer.is_none() && rs.readers.is_empty() => true,
                    Some(&(_, false)) if rs.writer.is_none() => true,
                    _ => false,
                }
            };
            if !grant {
                break;
            }
            let (next, write) = self.rwlocks[ri].waiters.pop_front().expect("front checked");
            if write {
                self.rwlocks[ri].writer = Some(next);
            } else {
                self.rwlocks[ri].readers.push(next);
            }
            self.schedule(
                self.time + self.cfg.handoff_ns,
                EngineEvent::WakeRw { tid: next, lock, write },
            );
            if write {
                break;
            }
        }
    }

    fn do_signal(&mut self, tid: ThreadId, cv: ObjId, broadcast: bool) -> Result<()> {
        let ci = self.condvar_slot(tid, cv)?;
        self.condvars[ci].next_seq += 1;
        let seq = self.condvars[ci].next_seq;
        if broadcast {
            self.emit(tid, EventKind::CondBroadcast { cv, signal_seq: seq });
            let waiters: Vec<(ThreadId, ObjId)> = self.condvars[ci].waiters.drain(..).collect();
            for (w, mutex) in waiters {
                self.schedule(self.time, EngineEvent::WakeCond { tid: w, cv, mutex, seq });
            }
        } else {
            self.emit(tid, EventKind::CondSignal { cv, signal_seq: seq });
            if let Some((w, mutex)) = self.condvars[ci].waiters.pop_front() {
                self.schedule(self.time, EngineEvent::WakeCond { tid: w, cv, mutex, seq });
            }
        }
        Ok(())
    }

    fn handle(&mut self, ev: EngineEvent) -> Result<()> {
        match ev {
            EngineEvent::StartThread(tid) => {
                self.emit(tid, EventKind::ThreadStart);
                self.threads[tid.index()].state = TState::Ready;
                self.ready.push_back(tid);
            }
            EngineEvent::ComputeDone { tid, gen } => {
                let ti = tid.index();
                if self.threads[ti].gen != gen || self.threads[ti].state != TState::Computing {
                    return Ok(()); // stale slice event after preemption
                }
                let elapsed = self.time - self.threads[ti].slice_start;
                let remaining = self.threads[ti].remaining.saturating_sub(elapsed);
                self.threads[ti].remaining = remaining;
                if remaining == 0 {
                    // Compute finished; continue the program (context kept).
                    self.threads[ti].state = TState::Running;
                    self.run_thread(tid)?;
                } else if !self.ready.is_empty() {
                    // Quantum expired with others waiting: preempt.
                    self.threads[ti].state = TState::Ready;
                    self.ready.push_back(tid);
                    self.running -= 1;
                } else {
                    self.start_slice(tid);
                }
            }
            EngineEvent::WakeLock { tid, lock } => {
                self.emit(tid, EventKind::LockObtain { lock });
                self.threads[tid.index()].held.push(lock);
                self.threads[tid.index()].state = TState::Ready;
                self.ready.push_back(tid);
            }
            EngineEvent::WakeRw { tid, lock, write } => {
                self.emit(tid, EventKind::RwObtain { lock, write });
                self.threads[tid.index()].held.push(lock);
                self.threads[tid.index()].state = TState::Ready;
                self.ready.push_back(tid);
            }
            EngineEvent::WakeBarrier { tid, barrier, epoch } => {
                self.emit(tid, EventKind::BarrierDepart { barrier, epoch });
                self.threads[tid.index()].state = TState::Ready;
                self.ready.push_back(tid);
            }
            EngineEvent::WakeCond { tid, cv, mutex, seq } => {
                self.emit(tid, EventKind::CondWakeup { cv, signal_seq: seq });
                // Re-acquire the guarding mutex (Pthreads semantics).
                let li = self.lock_slot(tid, mutex)?;
                self.emit(tid, EventKind::LockAcquire { lock: mutex });
                if self.locks[li].owner.is_none() {
                    self.locks[li].owner = Some(tid);
                    self.emit(tid, EventKind::LockObtain { lock: mutex });
                    self.threads[tid.index()].held.push(mutex);
                    self.threads[tid.index()].state = TState::Ready;
                    self.ready.push_back(tid);
                } else {
                    self.emit(tid, EventKind::LockContended { lock: mutex });
                    self.locks[li].waiters.push_back(tid);
                    self.threads[tid.index()].state = TState::BlockedLock(mutex);
                }
            }
            EngineEvent::WakeJoin { tid, child } => {
                self.emit(tid, EventKind::JoinEnd { child });
                self.threads[tid.index()].state = TState::Ready;
                self.ready.push_back(tid);
            }
        }
        Ok(())
    }

    fn start_slice(&mut self, tid: ThreadId) {
        let ti = tid.index();
        let remaining = self.threads[ti].remaining;
        let slice =
            if self.cfg.contexts > 0 { remaining.min(self.cfg.quantum.max(1)) } else { remaining };
        self.threads[ti].gen += 1;
        self.threads[ti].slice_start = self.time;
        let gen = self.threads[ti].gen;
        self.schedule(self.time + slice, EngineEvent::ComputeDone { tid, gen });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::program::{Op, ScriptProgram};
    use critlock_analysis::analyze;

    fn script(ops: Vec<Op>) -> ScriptProgram {
        ScriptProgram::new(ops)
    }

    #[test]
    fn two_threads_one_lock_serialize() {
        let mut sim = Simulator::new("serialize", MachineConfig::ideal());
        let l = sim.add_lock("L");
        for i in 0..2 {
            sim.spawn(format!("T{i}"), script(vec![Op::Critical(l, 10), Op::Compute(5)]));
        }
        let trace = sim.run().unwrap();
        assert_eq!(trace.makespan(), 25);
        trace.validate().unwrap();
    }

    /// The paper's micro-benchmark (Fig. 5) scaled to 20/25 time units:
    /// CS1 under L1 then CS2 under L2, four threads. Expected makespan
    /// a + 4b = 120 and CP shares 16.67% / 83.33% (Fig. 6).
    #[test]
    fn micro_benchmark_shape() {
        let (a, b) = (20u64, 25u64);
        let mut sim = Simulator::new("micro", MachineConfig::ideal());
        let l1 = sim.add_lock("L1");
        let l2 = sim.add_lock("L2");
        for i in 0..4 {
            sim.spawn(format!("T{i}"), script(vec![Op::Critical(l1, a), Op::Critical(l2, b)]));
        }
        let trace = sim.run().unwrap();
        assert_eq!(trace.makespan(), a + 4 * b);

        let rep = analyze(&trace);
        assert!(rep.cp_complete);
        assert_eq!(rep.cp_length, 120);
        let r1 = rep.lock_by_name("L1").unwrap();
        let r2 = rep.lock_by_name("L2").unwrap();
        assert_eq!(r1.cp_time, 20); // one CS1 on the CP
        assert_eq!(r2.cp_time, 100); // four CS2 on the CP
        assert!((r1.cp_time_frac - 1.0 / 6.0).abs() < 1e-9);
        assert!((r2.cp_time_frac - 5.0 / 6.0).abs() < 1e-9);
        assert_eq!(r2.invocations_on_cp, 4);
        // 3 of the 4 CP invocations of L2 blocked (T0's did not).
        assert!((r2.cont_prob_on_cp - 0.75).abs() < 1e-9);
    }

    #[test]
    fn barrier_all_depart_at_last_arrival() {
        let mut sim = Simulator::new("barrier", MachineConfig::ideal());
        let bar = sim.add_barrier("B", 3);
        for i in 0..3u64 {
            sim.spawn(
                format!("T{i}"),
                script(vec![Op::Compute(10 * (i + 1)), Op::Barrier(bar), Op::Compute(5)]),
            );
        }
        let trace = sim.run().unwrap();
        // Last arrival at 30; everyone departs at 30 and computes 5.
        assert_eq!(trace.makespan(), 35);
        let eps = critlock_trace::barrier_episodes(&trace);
        assert_eq!(eps.len(), 3);
        assert!(eps.iter().all(|e| e.depart == 30));
    }

    #[test]
    fn condvar_producer_consumer() {
        let mut sim = Simulator::new("cv", MachineConfig::ideal());
        let m = sim.add_lock("M");
        let cv = sim.add_condvar("CV");
        // Consumer: lock, wait (releases), then compute inside lock, unlock.
        sim.spawn(
            "consumer",
            script(vec![Op::Lock(m), Op::CondWait(cv, m), Op::Compute(7), Op::Unlock(m)]),
        );
        // Producer: compute 50, lock, signal, unlock.
        sim.spawn(
            "producer",
            script(vec![Op::Compute(50), Op::Critical(m, 1), Op::CondSignal(cv)]),
        );
        let trace = sim.run().unwrap();
        // Consumer wakes at 51 (signal at 51 after producer CS [50,51]),
        // reacquires, computes 7 -> exits at 58.
        assert_eq!(trace.makespan(), 58);
        let waits = critlock_trace::cond_wait_episodes(&trace);
        assert_eq!(waits.len(), 1);
        assert_eq!(waits[0].wakeup, 51);
    }

    #[test]
    fn condvar_broadcast_wakes_all() {
        let mut sim = Simulator::new("bcast", MachineConfig::ideal());
        let m = sim.add_lock("M");
        let cv = sim.add_condvar("CV");
        for i in 0..3 {
            sim.spawn(
                format!("w{i}"),
                script(vec![Op::Lock(m), Op::CondWait(cv, m), Op::Unlock(m), Op::Compute(5)]),
            );
        }
        sim.spawn("boss", script(vec![Op::Compute(20), Op::CondBroadcast(cv)]));
        let trace = sim.run().unwrap();
        let waits = critlock_trace::cond_wait_episodes(&trace);
        assert_eq!(waits.len(), 3);
        assert!(waits.iter().all(|w| w.wakeup == 20));
        // Mutex reacquisition serializes the wakeups but each holds ~0.
        trace.validate().unwrap();
    }

    #[test]
    fn dynamic_spawn_and_join() {
        struct Parent {
            stage: u32,
        }
        impl Program for Parent {
            fn step(&mut self, ctx: &mut StepCtx<'_>) -> Action {
                self.stage += 1;
                match self.stage {
                    1 => Action::Spawn {
                        name: "child".into(),
                        program: Box::new(ScriptProgram::new(vec![Op::Compute(30)])),
                    },
                    2 => Action::Compute(5),
                    3 => Action::Join(ctx.last_spawned.unwrap()),
                    4 => Action::Compute(2),
                    _ => Action::Exit,
                }
            }
        }
        let mut sim = Simulator::new("forkjoin", MachineConfig::ideal());
        sim.spawn("main", Parent { stage: 0 });
        let trace = sim.run().unwrap();
        // Child runs [0,30]; parent computes [0,5], joins until 30, +2.
        assert_eq!(trace.makespan(), 32);
        assert_eq!(trace.num_threads(), 2);
        let joins = critlock_trace::join_episodes(&trace);
        assert_eq!(joins.len(), 1);
        assert_eq!(joins[0].end, 30);
    }

    #[test]
    fn deadlock_detected() {
        let mut sim = Simulator::new("deadlock", MachineConfig::ideal());
        let a = sim.add_lock("A");
        let b = sim.add_lock("B");
        sim.spawn(
            "T0",
            script(vec![Op::Lock(a), Op::Compute(10), Op::Lock(b), Op::Unlock(b), Op::Unlock(a)]),
        );
        sim.spawn(
            "T1",
            script(vec![Op::Lock(b), Op::Compute(10), Op::Lock(a), Op::Unlock(a), Op::Unlock(b)]),
        );
        match sim.run() {
            Err(SimError::Deadlock { stuck, .. }) => assert_eq!(stuck.len(), 2),
            other => panic!("expected deadlock, got {other:?}"),
        }
    }

    #[test]
    fn reentrant_lock_rejected() {
        let mut sim = Simulator::new("reentrant", MachineConfig::ideal());
        let l = sim.add_lock("L");
        sim.spawn("T0", script(vec![Op::Lock(l), Op::Lock(l)]));
        assert!(matches!(sim.run(), Err(SimError::Reentrant { .. })));
    }

    #[test]
    fn unlock_not_held_rejected() {
        let mut sim = Simulator::new("badunlock", MachineConfig::ideal());
        let l = sim.add_lock("L");
        sim.spawn("T0", script(vec![Op::Unlock(l)]));
        assert!(matches!(sim.run(), Err(SimError::UnlockNotHeld { .. })));
    }

    #[test]
    fn exit_holding_lock_rejected() {
        let mut sim = Simulator::new("leak", MachineConfig::ideal());
        let l = sim.add_lock("L");
        sim.spawn("T0", script(vec![Op::Lock(l)]));
        assert!(matches!(sim.run(), Err(SimError::ExitHoldingLock { .. })));
    }

    #[test]
    fn condwait_without_mutex_rejected() {
        let mut sim = Simulator::new("badwait", MachineConfig::ideal());
        let m = sim.add_lock("M");
        let cv = sim.add_condvar("CV");
        sim.spawn("T0", script(vec![Op::CondWait(cv, m)]));
        assert!(matches!(sim.run(), Err(SimError::CondWaitWithoutMutex { .. })));
    }

    #[test]
    fn wrong_object_kind_rejected() {
        let mut sim = Simulator::new("badobj", MachineConfig::ideal());
        let b = sim.add_barrier("B", 1);
        sim.spawn("T0", script(vec![Op::Lock(b)]));
        assert!(matches!(sim.run(), Err(SimError::BadObject { .. })));
    }

    #[test]
    fn join_unknown_thread_rejected() {
        let mut sim = Simulator::new("badjoin", MachineConfig::ideal());
        sim.spawn("T0", script(vec![Op::Join(ThreadId(42))]));
        assert!(matches!(sim.run(), Err(SimError::JoinUnknownThread { .. })));
    }

    #[test]
    fn determinism_same_seed_same_trace() {
        let build = || {
            let mut sim =
                Simulator::new("det", MachineConfig::default().with_seed(99).with_jitter(0.2));
            let l = sim.add_lock("L");
            for i in 0..4 {
                sim.spawn(
                    format!("T{i}"),
                    script(vec![
                        Op::Repeat { times: 10, count: 2 },
                        Op::Critical(l, 7),
                        Op::Compute(13),
                    ]),
                );
            }
            sim.run().unwrap()
        };
        let t1 = build();
        let t2 = build();
        assert_eq!(t1, t2);
    }

    #[test]
    fn different_seed_with_jitter_differs() {
        let build = |seed| {
            let mut sim =
                Simulator::new("jit", MachineConfig::default().with_seed(seed).with_jitter(0.3));
            let l = sim.add_lock("L");
            for i in 0..4 {
                sim.spawn(format!("T{i}"), script(vec![Op::Critical(l, 100), Op::Compute(100)]));
            }
            sim.run().unwrap()
        };
        assert_ne!(build(1).makespan(), build(2).makespan());
    }

    #[test]
    fn fifo_handoff_orders_waiters() {
        let mut sim = Simulator::new("fifo", MachineConfig::ideal());
        let l = sim.add_lock("L");
        // T0 grabs at 0; T1 requests at 1, T2 at 2. FIFO: T1 then T2.
        sim.spawn("T0", script(vec![Op::Critical(l, 10)]));
        sim.spawn("T1", script(vec![Op::Compute(1), Op::Critical(l, 10)]));
        sim.spawn("T2", script(vec![Op::Compute(2), Op::Critical(l, 10)]));
        let trace = sim.run().unwrap();
        let eps = critlock_trace::lock_episodes(&trace);
        let obtain_of = |tid: u32| eps.iter().find(|e| e.tid.0 == tid).unwrap().obtain;
        assert_eq!(obtain_of(1), 10);
        assert_eq!(obtain_of(2), 20);
    }

    #[test]
    fn lifo_handoff_reverses_order() {
        let mut sim =
            Simulator::new("lifo", MachineConfig::default().with_policy(LockPolicy::LifoHandoff));
        let l = sim.add_lock("L");
        sim.spawn("T0", script(vec![Op::Critical(l, 10)]));
        sim.spawn("T1", script(vec![Op::Compute(1), Op::Critical(l, 10)]));
        sim.spawn("T2", script(vec![Op::Compute(2), Op::Critical(l, 10)]));
        let trace = sim.run().unwrap();
        let eps = critlock_trace::lock_episodes(&trace);
        let obtain_of = |tid: u32| eps.iter().find(|e| e.tid.0 == tid).unwrap().obtain;
        // LIFO: the latest waiter (T2) wins the first hand-off.
        assert_eq!(obtain_of(2), 10);
        assert_eq!(obtain_of(1), 20);
    }

    #[test]
    fn handoff_latency_extends_makespan() {
        let mut cfg = MachineConfig::ideal();
        cfg.handoff_ns = 5;
        let mut sim = Simulator::new("handoff", cfg);
        let l = sim.add_lock("L");
        sim.spawn("T0", script(vec![Op::Critical(l, 10)]));
        sim.spawn("T1", script(vec![Op::Critical(l, 10)]));
        let trace = sim.run().unwrap();
        // Second CS starts at 15 instead of 10.
        assert_eq!(trace.makespan(), 25);
    }

    #[test]
    fn single_context_serializes_compute() {
        let mut sim = Simulator::new("rr", MachineConfig::default().with_contexts(1));
        sim.spawn("T0", script(vec![Op::Compute(100)]));
        sim.spawn("T1", script(vec![Op::Compute(100)]));
        let trace = sim.run().unwrap();
        // One context: total work 200 regardless of interleaving.
        assert_eq!(trace.makespan(), 200);
    }

    #[test]
    fn oversubscription_round_robins() {
        let mut cfg = MachineConfig::default().with_contexts(1);
        cfg.quantum = 10;
        let mut sim = Simulator::new("rr2", cfg);
        sim.spawn("T0", script(vec![Op::Compute(50)]));
        sim.spawn("T1", script(vec![Op::Compute(50)]));
        let trace = sim.run().unwrap();
        assert_eq!(trace.makespan(), 100);
        // Both threads exit near the end (interleaved), not one at 50.
        let exit0 = trace.threads[0].end_ts().unwrap();
        let exit1 = trace.threads[1].end_ts().unwrap();
        assert!(exit0 > 80, "T0 exits at {exit0}, expected interleaving");
        assert!(exit1 > 80, "T1 exits at {exit1}");
    }

    #[test]
    fn plenty_contexts_run_parallel() {
        let mut sim = Simulator::new("par", MachineConfig::default().with_contexts(4));
        for i in 0..4 {
            sim.spawn(format!("T{i}"), script(vec![Op::Compute(100)]));
        }
        let trace = sim.run().unwrap();
        assert_eq!(trace.makespan(), 100);
    }

    #[test]
    fn script_repeat_expands() {
        let mut sim = Simulator::new("repeat", MachineConfig::ideal());
        let l = sim.add_lock("L");
        sim.spawn(
            "T0",
            script(vec![Op::Repeat { times: 3, count: 2 }, Op::Critical(l, 5), Op::Compute(5)]),
        );
        let trace = sim.run().unwrap();
        assert_eq!(trace.makespan(), 30);
        assert_eq!(critlock_trace::lock_episodes(&trace).len(), 3);
    }

    #[test]
    fn zero_repeat_skips_body() {
        let mut sim = Simulator::new("zrepeat", MachineConfig::ideal());
        let l = sim.add_lock("L");
        sim.spawn(
            "T0",
            script(vec![
                Op::Repeat { times: 0, count: 2 },
                Op::Critical(l, 5),
                Op::Compute(5),
                Op::Compute(3),
            ]),
        );
        let trace = sim.run().unwrap();
        assert_eq!(trace.makespan(), 3);
        assert!(critlock_trace::lock_episodes(&trace).is_empty());
    }

    #[test]
    fn closure_programs_work() {
        let mut stage = 0;
        let prog = move |_ctx: &mut StepCtx<'_>| {
            stage += 1;
            match stage {
                1 => Action::Compute(10),
                _ => Action::Exit,
            }
        };
        let mut sim = Simulator::new("closure", MachineConfig::ideal());
        sim.spawn("T0", prog);
        let trace = sim.run().unwrap();
        assert_eq!(trace.makespan(), 10);
    }

    #[test]
    fn rwlock_readers_share_writers_exclude() {
        let mut sim = Simulator::new("rw", MachineConfig::ideal());
        let l = sim.add_rwlock("R");
        // Two readers overlap fully; a writer arriving later waits for both.
        sim.spawn("r0", script(vec![Op::CriticalRead(l, 10)]));
        sim.spawn("r1", script(vec![Op::CriticalRead(l, 10)]));
        sim.spawn("w", script(vec![Op::Compute(1), Op::CriticalWrite(l, 5)]));
        let trace = sim.run().unwrap();
        // Readers done at 10 (parallel), writer [10,15].
        assert_eq!(trace.makespan(), 15);
        let eps = critlock_trace::rw_episodes(&trace);
        assert_eq!(eps.len(), 3);
        let w = eps.iter().find(|e| e.write).unwrap();
        assert!(w.contended);
        assert_eq!(w.obtain, 10);
    }

    #[test]
    fn rwlock_writer_blocks_readers() {
        let mut sim = Simulator::new("rw2", MachineConfig::ideal());
        let l = sim.add_rwlock("R");
        sim.spawn("w", script(vec![Op::CriticalWrite(l, 20)]));
        sim.spawn("r0", script(vec![Op::Compute(1), Op::CriticalRead(l, 5)]));
        sim.spawn("r1", script(vec![Op::Compute(2), Op::CriticalRead(l, 5)]));
        let trace = sim.run().unwrap();
        // Writer [0,20]; both readers granted together at 20, done at 25.
        assert_eq!(trace.makespan(), 25);
        let eps = critlock_trace::rw_episodes(&trace);
        let readers: Vec<_> = eps.iter().filter(|e| !e.write).collect();
        assert_eq!(readers.len(), 2);
        assert!(readers.iter().all(|e| e.obtain == 20 && e.contended));
    }

    #[test]
    fn rwlock_fifo_prevents_reader_barging() {
        let mut sim = Simulator::new("rw3", MachineConfig::ideal());
        let l = sim.add_rwlock("R");
        // r0 holds [0,10]; writer queues at 1; r1 arrives at 2 and must NOT
        // jump the queued writer: w runs [10,15], r1 [15,20].
        sim.spawn("r0", script(vec![Op::CriticalRead(l, 10)]));
        sim.spawn("w", script(vec![Op::Compute(1), Op::CriticalWrite(l, 5)]));
        sim.spawn("r1", script(vec![Op::Compute(2), Op::CriticalRead(l, 5)]));
        let trace = sim.run().unwrap();
        assert_eq!(trace.makespan(), 20);
        let eps = critlock_trace::rw_episodes(&trace);
        let w = eps.iter().find(|e| e.write).unwrap();
        assert_eq!((w.obtain, w.release), (10, 15));
        let r1 = eps.iter().find(|e| !e.write && e.acquire == 2).unwrap();
        assert_eq!(r1.obtain, 15);
    }

    #[test]
    fn rwlock_reentrant_rejected() {
        let mut sim = Simulator::new("rw4", MachineConfig::ideal());
        let l = sim.add_rwlock("R");
        struct P(u8, ObjId);
        impl Program for P {
            fn step(&mut self, _: &mut StepCtx<'_>) -> Action {
                self.0 += 1;
                match self.0 {
                    1 => Action::RwRead(self.1),
                    2 => Action::RwRead(self.1),
                    _ => Action::Exit,
                }
            }
        }
        sim.spawn("T0", P(0, l));
        assert!(matches!(sim.run(), Err(SimError::Reentrant { .. })));
    }

    #[test]
    fn rw_unlock_not_held_rejected() {
        let mut sim = Simulator::new("rw5", MachineConfig::ideal());
        let l = sim.add_rwlock("R");
        struct P(u8, ObjId);
        impl Program for P {
            fn step(&mut self, _: &mut StepCtx<'_>) -> Action {
                self.0 += 1;
                match self.0 {
                    1 => Action::RwUnlock(self.1),
                    _ => Action::Exit,
                }
            }
        }
        sim.spawn("T0", P(0, l));
        assert!(matches!(sim.run(), Err(SimError::UnlockNotHeld { .. })));
    }

    #[test]
    fn rw_identity_replay_preserves_makespan() {
        let mut sim = Simulator::new("rw6", MachineConfig::ideal());
        let l = sim.add_rwlock("R");
        sim.spawn("w", script(vec![Op::CriticalWrite(l, 20), Op::Compute(3)]));
        sim.spawn("r0", script(vec![Op::Compute(1), Op::CriticalRead(l, 5)]));
        sim.spawn("r1", script(vec![Op::Compute(2), Op::CriticalRead(l, 9)]));
        let trace = sim.run().unwrap();
        let replayed = crate::replay::replay(
            &trace,
            MachineConfig::ideal(),
            &crate::replay::ReplayConfig::identity(),
        )
        .unwrap();
        assert_eq!(replayed.makespan(), trace.makespan());
        assert_eq!(
            critlock_trace::rw_episodes(&replayed).len(),
            critlock_trace::rw_episodes(&trace).len()
        );
    }

    #[test]
    fn trace_metadata_includes_machine_params() {
        let mut sim = Simulator::new("meta", MachineConfig::power7_like());
        sim.spawn("T0", script(vec![Op::Compute(1)]));
        let trace = sim.run().unwrap();
        assert_eq!(trace.meta.params.get("contexts").unwrap(), "24");
        assert_eq!(trace.meta.params.get("threads").unwrap(), "1");
        assert_eq!(trace.meta.app, "meta");
    }
}

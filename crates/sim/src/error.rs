//! Simulator error types.

use critlock_trace::{ObjId, ThreadId};
use std::fmt;

/// Errors detected while running a simulation. These indicate bugs in the
/// simulated program (deadlock, protocol misuse), not in the engine.
#[derive(Debug)]
pub enum SimError {
    /// No runnable thread and no pending event, but some threads have not
    /// exited.
    Deadlock {
        /// Virtual time at which progress stopped.
        time: u64,
        /// The stuck threads and a description of what each waits for.
        stuck: Vec<(ThreadId, String)>,
    },
    /// A thread exited while holding a lock.
    ExitHoldingLock {
        /// The exiting thread.
        tid: ThreadId,
        /// The still-held lock.
        lock: ObjId,
    },
    /// A thread released a lock it does not hold.
    UnlockNotHeld {
        /// The offending thread.
        tid: ThreadId,
        /// The lock.
        lock: ObjId,
    },
    /// A thread re-acquired a lock it already holds (the simulated locks
    /// are non-reentrant, like `pthread_mutex_t` default mutexes).
    Reentrant {
        /// The offending thread.
        tid: ThreadId,
        /// The lock.
        lock: ObjId,
    },
    /// `CondWait` issued without holding the named mutex.
    CondWaitWithoutMutex {
        /// The offending thread.
        tid: ThreadId,
        /// The condition variable.
        cv: ObjId,
        /// The mutex that was supposed to be held.
        mutex: ObjId,
    },
    /// An action referenced an object of the wrong kind or an unknown id.
    BadObject {
        /// The offending thread.
        tid: ThreadId,
        /// The object id.
        obj: ObjId,
        /// What was expected.
        expected: &'static str,
    },
    /// `Join` on a thread id that was never spawned.
    JoinUnknownThread {
        /// The joining thread.
        tid: ThreadId,
        /// The unknown target.
        target: ThreadId,
    },
    /// The event-count safety valve tripped: the simulated program is
    /// livelocked or far larger than intended.
    EventLimit {
        /// Virtual time when the limit was hit.
        time: u64,
        /// The configured limit.
        limit: u64,
    },
    /// The produced trace failed validation (engine bug guard).
    InvalidTrace(critlock_trace::TraceError),
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::Deadlock { time, stuck } => {
                write!(f, "deadlock at t={time}: ")?;
                for (i, (tid, what)) in stuck.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{tid} waiting for {what}")?;
                }
                Ok(())
            }
            SimError::ExitHoldingLock { tid, lock } => {
                write!(f, "{tid} exited while holding {lock}")
            }
            SimError::UnlockNotHeld { tid, lock } => {
                write!(f, "{tid} released {lock} which it does not hold")
            }
            SimError::Reentrant { tid, lock } => {
                write!(f, "{tid} re-acquired held lock {lock} (non-reentrant)")
            }
            SimError::CondWaitWithoutMutex { tid, cv, mutex } => {
                write!(f, "{tid} waited on {cv} without holding {mutex}")
            }
            SimError::BadObject { tid, obj, expected } => {
                write!(f, "{tid} used {obj} which is not a {expected}")
            }
            SimError::JoinUnknownThread { tid, target } => {
                write!(f, "{tid} joined unknown thread {target}")
            }
            SimError::EventLimit { time, limit } => {
                write!(f, "event limit {limit} exceeded at t={time} (livelocked program?)")
            }
            SimError::InvalidTrace(e) => write!(f, "engine produced invalid trace: {e}"),
        }
    }
}

impl std::error::Error for SimError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SimError::InvalidTrace(e) => Some(e),
            _ => None,
        }
    }
}

/// Result alias for simulator operations.
pub type Result<T> = std::result::Result<T, SimError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        let e = SimError::Deadlock {
            time: 42,
            stuck: vec![(ThreadId(1), "lock obj0".into()), (ThreadId(2), "barrier obj1".into())],
        };
        let s = e.to_string();
        assert!(s.contains("t=42"));
        assert!(s.contains("T1 waiting for lock obj0"));
        assert!(s.contains("T2"));

        assert!(SimError::ExitHoldingLock { tid: ThreadId(0), lock: ObjId(3) }
            .to_string()
            .contains("obj3"));
        assert!(SimError::UnlockNotHeld { tid: ThreadId(0), lock: ObjId(3) }
            .to_string()
            .contains("does not hold"));
        assert!(SimError::Reentrant { tid: ThreadId(0), lock: ObjId(3) }
            .to_string()
            .contains("non-reentrant"));
        assert!(SimError::CondWaitWithoutMutex { tid: ThreadId(0), cv: ObjId(1), mutex: ObjId(2) }
            .to_string()
            .contains("without holding"));
        assert!(SimError::BadObject { tid: ThreadId(0), obj: ObjId(1), expected: "lock" }
            .to_string()
            .contains("not a lock"));
        assert!(SimError::JoinUnknownThread { tid: ThreadId(0), target: ThreadId(9) }
            .to_string()
            .contains("T9"));
    }
}

//! # critlock-sim
//!
//! A deterministic discrete-event simulator of multithreaded executions.
//!
//! The paper evaluated on a 24-hardware-thread POWER7 machine that we do
//! not have; this crate is the substitution (see `DESIGN.md` §2): workload
//! *programs* run on a configurable number of virtual hardware contexts in
//! virtual time, producing traces with exactly the event protocol of the
//! real instrumentation runtime. Determinism makes the paper's experiments
//! exactly reproducible at any thread count, and lets tests assert
//! hand-computed timings.
//!
//! * [`Simulator`] — the engine: register locks/barriers/condvars, spawn
//!   [`Program`]s, run to completion, get a `critlock_trace::Trace`.
//! * [`Program`]/[`Action`] — cooperative thread bodies; closures work,
//!   and [`ScriptProgram`] covers fixed action sequences.
//! * [`MachineConfig`] — contexts, preemption quantum, lock hand-off
//!   policy, hand-off latency, seeded jitter.
//! * [`replay`] — re-execute a recorded trace with modified critical
//!   section durations (ground-truth validation of what-if projections).

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod engine;
pub mod error;
pub mod machine;
pub mod program;
pub mod replay;

pub use engine::Simulator;
pub use error::{Result, SimError};
pub use machine::{LockPolicy, MachineConfig};
pub use program::{Action, Op, Program, ScriptProgram, StepCtx};

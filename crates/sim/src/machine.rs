//! Simulated machine configuration.

use serde_like::ParamMap;

/// How a released, contended lock picks its next owner.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum LockPolicy {
    /// FIFO hand-off: the longest-waiting thread gets the lock (fair,
    /// queue-lock-like). The default; makes executions easy to reason
    /// about and matches the hand-off behaviour the paper's FIFO examples
    /// assume.
    #[default]
    FifoHandoff,
    /// LIFO hand-off: the most recent waiter wins (barging-like, unfair).
    /// Used by the hand-off ablation study.
    LifoHandoff,
    /// Uniformly random waiter wins (seeded; still deterministic).
    RandomHandoff,
}

/// Configuration of the simulated machine.
#[derive(Debug, Clone, PartialEq)]
pub struct MachineConfig {
    /// Number of hardware contexts (cores × SMT). `0` means unlimited —
    /// every runnable thread runs immediately.
    pub contexts: usize,
    /// Preemption quantum in virtual ns, used only when more threads are
    /// runnable than contexts exist.
    pub quantum: u64,
    /// Lock hand-off policy.
    pub lock_policy: LockPolicy,
    /// Delay between a lock release and the waiter's obtain (hand-off
    /// latency, cache-line transfer etc.).
    pub handoff_ns: u64,
    /// Delay between `Spawn` and the child's first instruction.
    pub spawn_delay_ns: u64,
    /// Seed for the engine's deterministic RNG (jitter, random hand-off,
    /// and whatever programs draw from [`crate::StepCtx::rng`]).
    pub seed: u64,
    /// Multiplicative jitter applied to every `Compute` duration, as a
    /// fraction (0.05 = ±5%). Zero keeps durations exact, which the unit
    /// tests rely on.
    pub jitter: f64,
    /// Safety valve: abort the simulation with an error once this many
    /// trace events have been emitted (guards against livelocked
    /// programs, e.g. starvation under unfair hand-off policies).
    /// `0` disables the check.
    pub max_events: u64,
}

impl Default for MachineConfig {
    fn default() -> Self {
        MachineConfig {
            contexts: 0,
            quantum: 100_000,
            lock_policy: LockPolicy::FifoHandoff,
            handoff_ns: 0,
            spawn_delay_ns: 0,
            seed: 0x5EED,
            jitter: 0.0,
            max_events: 20_000_000,
        }
    }
}

impl MachineConfig {
    /// A machine shaped like the paper's test system (Table 1): 2 sockets
    /// × 6 cores × SMT2 = 24 hardware contexts.
    pub fn power7_like() -> Self {
        MachineConfig { contexts: 24, ..Default::default() }
    }

    /// Unlimited contexts, no overheads: the idealized machine used by
    /// tests with hand-computed expectations.
    pub fn ideal() -> Self {
        MachineConfig::default()
    }

    /// Builder-style seed override.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Builder-style context-count override.
    pub fn with_contexts(mut self, contexts: usize) -> Self {
        self.contexts = contexts;
        self
    }

    /// Builder-style lock-policy override.
    pub fn with_policy(mut self, policy: LockPolicy) -> Self {
        self.lock_policy = policy;
        self
    }

    /// Builder-style jitter override.
    pub fn with_jitter(mut self, jitter: f64) -> Self {
        self.jitter = jitter;
        self
    }

    /// Render the configuration as trace metadata parameters.
    pub fn params(&self) -> ParamMap {
        let mut m = ParamMap::new();
        m.insert("contexts".into(), self.contexts.to_string());
        m.insert("quantum".into(), self.quantum.to_string());
        m.insert("lock_policy".into(), format!("{:?}", self.lock_policy));
        m.insert("handoff_ns".into(), self.handoff_ns.to_string());
        m.insert("spawn_delay_ns".into(), self.spawn_delay_ns.to_string());
        m.insert("seed".into(), self.seed.to_string());
        m.insert("jitter".into(), self.jitter.to_string());
        m.insert("max_events".into(), self.max_events.to_string());
        m
    }
}

/// Tiny local alias module so `MachineConfig::params` can return the same
/// map type `TraceMeta` uses without pulling serde into the signature.
mod serde_like {
    /// Parameter map type shared with `critlock_trace::TraceMeta::params`.
    pub type ParamMap = std::collections::BTreeMap<String, String>;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_ideal() {
        let c = MachineConfig::default();
        assert_eq!(c.contexts, 0);
        assert_eq!(c.handoff_ns, 0);
        assert_eq!(c.jitter, 0.0);
        assert_eq!(c.lock_policy, LockPolicy::FifoHandoff);
        assert_eq!(MachineConfig::ideal(), c);
    }

    #[test]
    fn power7_has_24_contexts() {
        assert_eq!(MachineConfig::power7_like().contexts, 24);
    }

    #[test]
    fn builders() {
        let c = MachineConfig::default()
            .with_seed(7)
            .with_contexts(4)
            .with_policy(LockPolicy::LifoHandoff)
            .with_jitter(0.1);
        assert_eq!(c.seed, 7);
        assert_eq!(c.contexts, 4);
        assert_eq!(c.lock_policy, LockPolicy::LifoHandoff);
        assert_eq!(c.jitter, 0.1);
    }

    #[test]
    fn params_rendered() {
        let p = MachineConfig::power7_like().params();
        assert_eq!(p.get("contexts").unwrap(), "24");
        assert!(p.contains_key("seed"));
    }
}

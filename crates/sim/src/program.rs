//! Programs: the code simulated threads execute.
//!
//! A [`Program`] is a state machine the engine drives one [`Action`] at a
//! time. Because the simulator is single-threaded, programs may freely
//! share state through `Rc<RefCell<...>>` — that is how the workload
//! models implement task queues, work stealing and shared counters without
//! any real synchronization.

use critlock_trace::{ObjId, ThreadId};
use rand::rngs::SmallRng;
use std::fmt;

/// What a simulated thread does next.
pub enum Action {
    /// Execute for the given number of virtual nanoseconds.
    Compute(u64),
    /// Acquire a lock (blocking).
    Lock(ObjId),
    /// Release a held lock.
    Unlock(ObjId),
    /// Acquire a reader-writer lock in shared (read) mode.
    RwRead(ObjId),
    /// Acquire a reader-writer lock in exclusive (write) mode.
    RwWrite(ObjId),
    /// Release a held reader-writer lock (either mode).
    RwUnlock(ObjId),
    /// Wait at a barrier until all its parties arrive.
    Barrier(ObjId),
    /// Atomically release `mutex` and wait on `cv`; on wakeup the engine
    /// re-acquires `mutex` before the next step (Pthreads semantics).
    CondWait {
        /// The condition variable to wait on.
        cv: ObjId,
        /// The mutex that must be held when this action is issued.
        mutex: ObjId,
    },
    /// Wake one waiter of a condition variable (no-op if none).
    CondSignal(ObjId),
    /// Wake all waiters of a condition variable.
    CondBroadcast(ObjId),
    /// Create a new simulated thread running `program`. The child's id is
    /// available as [`StepCtx::last_spawned`] on the next step.
    Spawn {
        /// Thread name for the trace.
        name: String,
        /// The program the child runs.
        program: Box<dyn Program>,
    },
    /// Block until the given thread exits.
    Join(ThreadId),
    /// Drop a phase marker into the trace (no simulation semantics).
    Mark(ObjId),
    /// Terminate this thread. Must not hold any lock.
    Exit,
}

impl fmt::Debug for Action {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Action::Compute(d) => write!(f, "Compute({d})"),
            Action::Lock(l) => write!(f, "Lock({l})"),
            Action::Unlock(l) => write!(f, "Unlock({l})"),
            Action::RwRead(l) => write!(f, "RwRead({l})"),
            Action::RwWrite(l) => write!(f, "RwWrite({l})"),
            Action::RwUnlock(l) => write!(f, "RwUnlock({l})"),
            Action::Barrier(b) => write!(f, "Barrier({b})"),
            Action::CondWait { cv, mutex } => write!(f, "CondWait({cv}, {mutex})"),
            Action::CondSignal(cv) => write!(f, "CondSignal({cv})"),
            Action::CondBroadcast(cv) => write!(f, "CondBroadcast({cv})"),
            Action::Spawn { name, .. } => write!(f, "Spawn({name})"),
            Action::Join(t) => write!(f, "Join({t})"),
            Action::Mark(m) => write!(f, "Mark({m})"),
            Action::Exit => write!(f, "Exit"),
        }
    }
}

/// Per-step context handed to programs.
pub struct StepCtx<'a> {
    /// Current virtual time in nanoseconds.
    pub now: u64,
    /// The stepping thread's id.
    pub tid: ThreadId,
    /// The id of the thread created by this thread's most recent
    /// [`Action::Spawn`], if any.
    pub last_spawned: Option<ThreadId>,
    /// Deterministic per-engine random source (seeded from the machine
    /// configuration).
    pub rng: &'a mut SmallRng,
}

/// A simulated thread body. The engine calls [`Program::step`] whenever
/// the previous action has completed; returning [`Action::Exit`] ends the
/// thread.
pub trait Program {
    /// Produce the next action.
    fn step(&mut self, ctx: &mut StepCtx<'_>) -> Action;
}

impl<F> Program for F
where
    F: FnMut(&mut StepCtx<'_>) -> Action,
{
    fn step(&mut self, ctx: &mut StepCtx<'_>) -> Action {
        self(ctx)
    }
}

/// A scripted operation for [`ScriptProgram`]: a fixed action sequence
/// without dynamic control flow. Enough for micro-benchmarks and tests.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Op {
    /// Compute for a duration.
    Compute(u64),
    /// Acquire a lock.
    Lock(ObjId),
    /// Release a lock.
    Unlock(ObjId),
    /// Convenience: lock, compute `hold`, unlock.
    Critical(ObjId, u64),
    /// Convenience: rwlock in read mode, compute `hold`, unlock.
    CriticalRead(ObjId, u64),
    /// Convenience: rwlock in write mode, compute `hold`, unlock.
    CriticalWrite(ObjId, u64),
    /// Wait at a barrier.
    Barrier(ObjId),
    /// Wait on a condvar (mutex must be held).
    CondWait(ObjId, ObjId),
    /// Signal a condvar.
    CondSignal(ObjId),
    /// Broadcast a condvar.
    CondBroadcast(ObjId),
    /// Join a thread (by the id assigned at spawn time).
    Join(ThreadId),
    /// Drop a phase marker.
    Mark(ObjId),
    /// Repeat the following `count` ops `times` times. Nested repeats are
    /// not supported.
    Repeat {
        /// Number of iterations.
        times: u64,
        /// How many following ops form the repeated body.
        count: usize,
    },
}

/// A program that executes a fixed script of [`Op`]s and exits.
#[derive(Debug, Clone)]
pub struct ScriptProgram {
    ops: Vec<Op>,
    /// Index of the next op.
    pc: usize,
    /// Sub-state for a `Critical` op in flight.
    phase: Phase,
    /// Active repeat: (body_start, body_len, remaining_iterations).
    repeat: Option<(usize, usize, u64)>,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Phase {
    Idle,
    /// Lock granted; compute for the hold duration next.
    CriticalHold(ObjId, u64),
    /// Hold computed; unlock next.
    CriticalUnlock(ObjId),
    /// RwLock granted; compute for the hold duration next.
    RwHold(ObjId, u64),
    /// Rw hold computed; unlock next.
    RwUnlockNext(ObjId),
}

impl ScriptProgram {
    /// Create a program from a script.
    pub fn new(ops: Vec<Op>) -> Self {
        ScriptProgram { ops, pc: 0, phase: Phase::Idle, repeat: None }
    }
}

impl Program for ScriptProgram {
    fn step(&mut self, _ctx: &mut StepCtx<'_>) -> Action {
        match self.phase {
            Phase::CriticalHold(l, hold) => {
                self.phase = Phase::CriticalUnlock(l);
                return Action::Compute(hold);
            }
            Phase::CriticalUnlock(l) => {
                self.phase = Phase::Idle;
                return Action::Unlock(l);
            }
            Phase::RwHold(l, hold) => {
                self.phase = Phase::RwUnlockNext(l);
                return Action::Compute(hold);
            }
            Phase::RwUnlockNext(l) => {
                self.phase = Phase::Idle;
                return Action::RwUnlock(l);
            }
            Phase::Idle => {}
        }
        loop {
            // Handle repeat wrap-around.
            if let Some((start, len, remaining)) = self.repeat {
                if self.pc >= start + len {
                    if remaining > 1 {
                        self.repeat = Some((start, len, remaining - 1));
                        self.pc = start;
                    } else {
                        self.repeat = None;
                    }
                }
            }
            let Some(op) = self.ops.get(self.pc) else {
                return Action::Exit;
            };
            self.pc += 1;
            match *op {
                Op::Compute(d) => return Action::Compute(d),
                Op::Lock(l) => return Action::Lock(l),
                Op::Unlock(l) => return Action::Unlock(l),
                Op::Critical(l, hold) => {
                    self.phase = Phase::CriticalHold(l, hold);
                    return Action::Lock(l);
                }
                Op::CriticalRead(l, hold) => {
                    self.phase = Phase::RwHold(l, hold);
                    return Action::RwRead(l);
                }
                Op::CriticalWrite(l, hold) => {
                    self.phase = Phase::RwHold(l, hold);
                    return Action::RwWrite(l);
                }
                Op::Barrier(b) => return Action::Barrier(b),
                Op::CondWait(cv, m) => return Action::CondWait { cv, mutex: m },
                Op::CondSignal(cv) => return Action::CondSignal(cv),
                Op::CondBroadcast(cv) => return Action::CondBroadcast(cv),
                Op::Join(t) => return Action::Join(t),
                Op::Mark(m) => return Action::Mark(m),
                Op::Repeat { times, count } => {
                    if times == 0 {
                        self.pc += count; // skip the body entirely
                        continue;
                    }
                    self.repeat = Some((self.pc, count, times));
                    continue;
                }
            }
        }
    }
}

//! Trace replay with critical-section rescaling.
//!
//! The what-if projection in `critlock-analysis` is a first-order upper
//! bound: it subtracts saved time from the critical path assuming the
//! execution's structure does not change. The paper's own validation shows
//! the real gain is smaller because other segments move onto the critical
//! path. This module provides the ground truth: it reconstructs each
//! thread's *program* from a recorded trace (compute intervals and the
//! sequence of synchronization operations) and re-executes it through the
//! engine with selected critical sections shrunk. Blocking is re-resolved
//! from scratch, so path migration effects are captured.
//!
//! Limitations (documented, inherent to trace replay): dynamic decisions
//! the original program made (which queue to steal from, how many loop
//! iterations to run) are frozen as recorded; only timing is re-derived.

use crate::engine::Simulator;
use crate::error::Result;
use crate::machine::MachineConfig;
use crate::program::{Action, Program, StepCtx};
use critlock_trace::{EventKind, ObjId, ObjKind, ThreadId, Trace};
use std::cell::RefCell;
use std::collections::HashMap;
use std::rc::Rc;

/// How to transform critical-section compute durations during replay.
#[derive(Debug, Clone, Default)]
pub struct ReplayConfig {
    /// Multiply compute time spent while holding the given lock by the
    /// factor. Several entries compose (applied independently per lock).
    pub shrink: Vec<(ObjId, f64)>,
}

impl ReplayConfig {
    /// Replay without modifications (identity replay).
    pub fn identity() -> Self {
        ReplayConfig::default()
    }

    /// Shrink one lock's critical sections to `factor` of their recorded
    /// duration.
    pub fn shrink_lock(lock: ObjId, factor: f64) -> Self {
        assert!((0.0..=1.0).contains(&factor), "factor must be in [0,1]");
        ReplayConfig { shrink: vec![(lock, factor)] }
    }
}

/// Replay operation (a resolved [`Action`] without the dynamic parts).
#[derive(Debug, Clone, PartialEq)]
enum ROp {
    Compute(u64),
    Mark(ObjId),
    Lock(ObjId),
    Unlock(ObjId),
    Barrier(ObjId),
    RwRead(ObjId),
    RwWrite(ObjId),
    RwUnlock(ObjId),
    CondWait { cv: ObjId, mutex: ObjId },
    CondSignal(ObjId),
    CondBroadcast(ObjId),
    SpawnChild(ThreadId),
    Join(ThreadId),
}

/// Shared pool of per-thread op lists, consumed as children are spawned.
type OpsPool = Rc<RefCell<Vec<Option<Vec<ROp>>>>>;

struct ReplayProgram {
    ops: Vec<ROp>,
    pc: usize,
    pool: OpsPool,
    names: Rc<Vec<String>>,
    /// Original child tid -> new engine tid, for Join translation.
    tid_map: Rc<RefCell<HashMap<ThreadId, ThreadId>>>,
    /// Child whose spawn we just issued (original id), to record mapping.
    pending_child: Option<ThreadId>,
}

impl Program for ReplayProgram {
    fn step(&mut self, ctx: &mut StepCtx<'_>) -> Action {
        if let Some(orig) = self.pending_child.take() {
            let new_tid = ctx.last_spawned.expect("spawn must have completed");
            self.tid_map.borrow_mut().insert(orig, new_tid);
        }
        let Some(op) = self.ops.get(self.pc).cloned() else {
            return Action::Exit;
        };
        self.pc += 1;
        match op {
            ROp::Compute(d) => Action::Compute(d),
            ROp::Mark(m) => Action::Mark(m),
            ROp::Lock(l) => Action::Lock(l),
            ROp::Unlock(l) => Action::Unlock(l),
            ROp::Barrier(b) => Action::Barrier(b),
            ROp::RwRead(l) => Action::RwRead(l),
            ROp::RwWrite(l) => Action::RwWrite(l),
            ROp::RwUnlock(l) => Action::RwUnlock(l),
            ROp::CondWait { cv, mutex } => Action::CondWait { cv, mutex },
            ROp::CondSignal(cv) => Action::CondSignal(cv),
            ROp::CondBroadcast(cv) => Action::CondBroadcast(cv),
            ROp::SpawnChild(orig) => {
                let ops =
                    self.pool.borrow_mut()[orig.index()].take().expect("child ops consumed twice");
                self.pending_child = Some(orig);
                Action::Spawn {
                    name: self.names[orig.index()].clone(),
                    program: Box::new(ReplayProgram {
                        ops,
                        pc: 0,
                        pool: Rc::clone(&self.pool),
                        names: Rc::clone(&self.names),
                        tid_map: Rc::clone(&self.tid_map),
                        pending_child: None,
                    }),
                }
            }
            ROp::Join(orig) => {
                let mapped = self.tid_map.borrow().get(&orig).copied().unwrap_or(orig);
                Action::Join(mapped)
            }
        }
    }
}

/// Extract the replay ops of one thread stream.
fn ops_of_stream(
    stream: &critlock_trace::ThreadStream,
    trace_start: u64,
    rcfg: &ReplayConfig,
) -> Vec<ROp> {
    let mut ops = Vec::new();
    let mut prev_ts = trace_start;
    let mut waiting = false;
    let mut held: Vec<ObjId> = Vec::new();
    // Mutex whose post-condvar re-acquisition events must be swallowed.
    let mut skip_reacquire: Option<ObjId> = None;

    let scale = |held: &[ObjId], dt: u64| -> u64 {
        let mut v = dt as f64;
        for (lock, factor) in &rcfg.shrink {
            if held.contains(lock) {
                v *= factor;
            }
        }
        v.round() as u64
    };

    let gap = |ops: &mut Vec<ROp>, held: &[ObjId], prev_ts: &mut u64, ts: u64, waiting: bool| {
        if !waiting && ts > *prev_ts {
            let dt = scale(held, ts - *prev_ts);
            if dt > 0 {
                ops.push(ROp::Compute(dt));
            }
        }
        *prev_ts = ts;
    };

    for ev in &stream.events {
        match ev.kind {
            EventKind::ThreadStart => {
                // A delayed root start becomes initial compute only for
                // hand-built traces; engine children get start edges from
                // their spawner instead, so reset the clock here.
                prev_ts = ev.ts;
            }
            EventKind::LockAcquire { lock } => {
                if skip_reacquire == Some(lock) {
                    continue;
                }
                gap(&mut ops, &held, &mut prev_ts, ev.ts, waiting);
                ops.push(ROp::Lock(lock));
                waiting = true;
            }
            EventKind::LockContended { .. } => {}
            EventKind::LockObtain { lock } => {
                prev_ts = ev.ts;
                waiting = false;
                held.push(lock);
                if skip_reacquire == Some(lock) {
                    skip_reacquire = None;
                }
            }
            EventKind::LockRelease { lock } => {
                gap(&mut ops, &held, &mut prev_ts, ev.ts, waiting);
                if let Some(pos) = held.iter().rposition(|&l| l == lock) {
                    held.remove(pos);
                }
                ops.push(ROp::Unlock(lock));
            }
            EventKind::RwAcquire { lock, write } => {
                gap(&mut ops, &held, &mut prev_ts, ev.ts, waiting);
                ops.push(if write { ROp::RwWrite(lock) } else { ROp::RwRead(lock) });
                waiting = true;
            }
            EventKind::RwContended { .. } => {}
            EventKind::RwObtain { lock, .. } => {
                prev_ts = ev.ts;
                waiting = false;
                held.push(lock);
            }
            EventKind::RwRelease { lock, .. } => {
                gap(&mut ops, &held, &mut prev_ts, ev.ts, waiting);
                if let Some(pos) = held.iter().rposition(|&l| l == lock) {
                    held.remove(pos);
                }
                ops.push(ROp::RwUnlock(lock));
            }
            EventKind::BarrierArrive { barrier, .. } => {
                gap(&mut ops, &held, &mut prev_ts, ev.ts, waiting);
                ops.push(ROp::Barrier(barrier));
                waiting = true;
            }
            EventKind::BarrierDepart { .. } => {
                prev_ts = ev.ts;
                waiting = false;
            }
            EventKind::CondWaitBegin { cv } => {
                // The instrumentation emits Release(mutex) immediately
                // before the wait; convert that Unlock into a CondWait.
                match ops.pop() {
                    Some(ROp::Unlock(mutex)) => {
                        ops.push(ROp::CondWait { cv, mutex });
                        skip_reacquire = Some(mutex);
                    }
                    other => {
                        // Wait without a traced mutex release: degrade to a
                        // plain wait on a synthetic never-contended pattern
                        // is impossible here, so keep whatever we had and
                        // wait on the cv with no mutex conversion.
                        if let Some(op) = other {
                            ops.push(op);
                        }
                        // Cannot express a bare wait; treat it as blocked
                        // time that the wakeup edge will re-create.
                    }
                }
                waiting = true;
            }
            EventKind::CondWakeup { .. } => {
                prev_ts = ev.ts;
                waiting = false;
            }
            EventKind::CondSignal { cv, .. } => {
                gap(&mut ops, &held, &mut prev_ts, ev.ts, waiting);
                ops.push(ROp::CondSignal(cv));
            }
            EventKind::CondBroadcast { cv, .. } => {
                gap(&mut ops, &held, &mut prev_ts, ev.ts, waiting);
                ops.push(ROp::CondBroadcast(cv));
            }
            EventKind::ThreadCreate { child } => {
                gap(&mut ops, &held, &mut prev_ts, ev.ts, waiting);
                ops.push(ROp::SpawnChild(child));
            }
            EventKind::JoinBegin { child } => {
                gap(&mut ops, &held, &mut prev_ts, ev.ts, waiting);
                ops.push(ROp::Join(child));
                waiting = true;
            }
            EventKind::JoinEnd { .. } => {
                prev_ts = ev.ts;
                waiting = false;
            }
            EventKind::ThreadExit => {
                gap(&mut ops, &held, &mut prev_ts, ev.ts, waiting);
            }
            EventKind::Marker { id } => {
                gap(&mut ops, &held, &mut prev_ts, ev.ts, waiting);
                ops.push(ROp::Mark(id));
            }
        }
    }
    ops
}

/// Barrier party counts inferred from the trace (max arrivals per epoch).
fn barrier_parties(trace: &Trace) -> HashMap<ObjId, usize> {
    let mut counts: HashMap<(ObjId, u32), usize> = HashMap::new();
    for ep in critlock_trace::barrier_episodes(trace) {
        *counts.entry((ep.barrier, ep.epoch)).or_insert(0) += 1;
    }
    let mut parties: HashMap<ObjId, usize> = HashMap::new();
    for ((b, _), n) in counts {
        let e = parties.entry(b).or_insert(0);
        *e = (*e).max(n);
    }
    parties
}

/// Re-execute a recorded trace on a (possibly different) machine with
/// optional critical-section rescaling, returning the new trace.
pub fn replay(trace: &Trace, machine: MachineConfig, rcfg: &ReplayConfig) -> Result<Trace> {
    let mut sim = Simulator::new(format!("{}-replay", trace.meta.app), machine);

    // Register objects preserving ObjId numbering.
    let parties = barrier_parties(trace);
    for (i, obj) in trace.objects.iter().enumerate() {
        let id = ObjId(i as u32);
        match obj.kind {
            ObjKind::Lock => {
                sim.add_lock(obj.name.clone());
            }
            ObjKind::Barrier => {
                sim.add_barrier(obj.name.clone(), parties.get(&id).copied().unwrap_or(1));
            }
            ObjKind::Condvar => {
                sim.add_condvar(obj.name.clone());
            }
            ObjKind::Marker => {
                sim.add_marker(obj.name.clone());
            }
            ObjKind::RwLock => {
                sim.add_rwlock(obj.name.clone());
            }
        }
    }

    // Build per-thread op lists.
    let trace_start = trace.start_ts();
    let mut all_ops: Vec<Option<Vec<ROp>>> =
        trace.threads.iter().map(|s| Some(ops_of_stream(s, trace_start, rcfg))).collect();

    // Threads created by another thread are spawned dynamically; the rest
    // are roots.
    let mut created: Vec<bool> = vec![false; trace.threads.len()];
    for stream in &trace.threads {
        for ev in &stream.events {
            if let EventKind::ThreadCreate { child } = ev.kind {
                if child.index() < created.len() {
                    created[child.index()] = true;
                }
            }
        }
    }

    // Roots that started late (hand-built traces) get a leading delay.
    for (i, stream) in trace.threads.iter().enumerate() {
        if !created[i] {
            if let Some(start) = stream.start_ts() {
                let delay = start - trace_start;
                if delay > 0 {
                    if let Some(ops) = all_ops[i].as_mut() {
                        ops.insert(0, ROp::Compute(delay));
                    }
                }
            }
        }
    }

    let names: Rc<Vec<String>> = Rc::new(
        trace.threads.iter().map(|s| s.name.clone().unwrap_or_else(|| s.tid.to_string())).collect(),
    );
    let pool: OpsPool = Rc::new(RefCell::new(Vec::new()));
    let tid_map: Rc<RefCell<HashMap<ThreadId, ThreadId>>> = Rc::new(RefCell::new(HashMap::new()));

    // Move non-root ops into the pool; roots are spawned now.
    let mut roots: Vec<(ThreadId, Vec<ROp>)> = Vec::new();
    for (i, slot) in all_ops.iter_mut().enumerate() {
        if !created[i] {
            roots.push((ThreadId(i as u32), slot.take().expect("root ops present")));
        }
    }
    *pool.borrow_mut() = all_ops;

    for (orig, ops) in roots {
        let new_tid = sim.spawn(
            names[orig.index()].clone(),
            ReplayProgram {
                ops,
                pc: 0,
                pool: Rc::clone(&pool),
                names: Rc::clone(&names),
                tid_map: Rc::clone(&tid_map),
                pending_child: None,
            },
        );
        tid_map.borrow_mut().insert(orig, new_tid);
    }

    sim.run()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::program::{Op, ScriptProgram};
    use critlock_analysis::analyze;

    fn micro_trace() -> Trace {
        let (a, b) = (20u64, 25u64);
        let mut sim = Simulator::new("micro", MachineConfig::ideal());
        let l1 = sim.add_lock("L1");
        let l2 = sim.add_lock("L2");
        for i in 0..4 {
            sim.spawn(
                format!("T{i}"),
                ScriptProgram::new(vec![Op::Critical(l1, a), Op::Critical(l2, b)]),
            );
        }
        sim.run().unwrap()
    }

    #[test]
    fn identity_replay_preserves_makespan() {
        let t = micro_trace();
        let r = replay(&t, MachineConfig::ideal(), &ReplayConfig::identity()).unwrap();
        assert_eq!(r.makespan(), t.makespan());
        let rep_a = analyze(&t);
        let rep_b = analyze(&r);
        assert_eq!(rep_a.cp_length, rep_b.cp_length);
        assert_eq!(
            rep_a.lock_by_name("L2").unwrap().cp_time,
            rep_b.lock_by_name("L2").unwrap().cp_time
        );
    }

    /// Shrinking L2 (the critical lock) helps more than shrinking L1 (the
    /// wait-heavy lock): the paper's Fig. 6 validation, as ground truth.
    #[test]
    fn shrink_validates_cp_ranking() {
        let t = micro_trace();
        assert_eq!(t.makespan(), 120);
        let l1 = t.object_by_name("L1").unwrap();
        let l2 = t.object_by_name("L2").unwrap();

        // Reduce each CS by 10 units (same optimization effort).
        let r1 = replay(
            &t,
            MachineConfig::ideal(),
            &ReplayConfig::shrink_lock(l1, 0.5), // 20 -> 10
        )
        .unwrap();
        let r2 = replay(
            &t,
            MachineConfig::ideal(),
            &ReplayConfig::shrink_lock(l2, 0.6), // 25 -> 15
        )
        .unwrap();
        assert_eq!(r1.makespan(), 110); // hand-computed
        assert_eq!(r2.makespan(), 95); // hand-computed
        let s1 = 120.0 / r1.makespan() as f64;
        let s2 = 120.0 / r2.makespan() as f64;
        assert!(s2 > s1, "optimizing the critical lock must win: {s1} vs {s2}");
    }

    #[test]
    fn replay_resolves_new_contention_pattern() {
        // Shrinking to zero removes the lock's serialization entirely.
        let t = micro_trace();
        let l2 = t.object_by_name("L2").unwrap();
        let r = replay(&t, MachineConfig::ideal(), &ReplayConfig::shrink_lock(l2, 0.0)).unwrap();
        // Only the L1 chain remains: 4 * 20.
        assert_eq!(r.makespan(), 80);
    }

    #[test]
    fn replay_with_barriers_and_condvars() {
        let mut sim = Simulator::new("mix", MachineConfig::ideal());
        let m = sim.add_lock("M");
        let cv = sim.add_condvar("CV");
        let bar = sim.add_barrier("B", 2);
        sim.spawn(
            "waiter",
            ScriptProgram::new(vec![
                Op::Lock(m),
                Op::CondWait(cv, m),
                Op::Compute(5),
                Op::Unlock(m),
                Op::Barrier(bar),
                Op::Compute(3),
            ]),
        );
        sim.spawn(
            "signaler",
            ScriptProgram::new(vec![
                Op::Compute(10),
                Op::Critical(m, 2),
                Op::CondSignal(cv),
                Op::Barrier(bar),
            ]),
        );
        let t = sim.run().unwrap();
        let r = replay(&t, MachineConfig::ideal(), &ReplayConfig::identity()).unwrap();
        assert_eq!(r.makespan(), t.makespan());
        assert_eq!(
            critlock_trace::cond_wait_episodes(&r).len(),
            critlock_trace::cond_wait_episodes(&t).len()
        );
        assert_eq!(
            critlock_trace::barrier_episodes(&r).len(),
            critlock_trace::barrier_episodes(&t).len()
        );
    }

    #[test]
    fn replay_with_dynamic_spawn() {
        struct Parent {
            stage: u32,
        }
        impl Program for Parent {
            fn step(&mut self, ctx: &mut StepCtx<'_>) -> Action {
                self.stage += 1;
                match self.stage {
                    1 => Action::Spawn {
                        name: "child".into(),
                        program: Box::new(ScriptProgram::new(vec![Op::Compute(30)])),
                    },
                    2 => Action::Compute(5),
                    3 => Action::Join(ctx.last_spawned.unwrap()),
                    _ => Action::Exit,
                }
            }
        }
        let mut sim = Simulator::new("forkjoin", MachineConfig::ideal());
        sim.spawn("main", Parent { stage: 0 });
        let t = sim.run().unwrap();
        let r = replay(&t, MachineConfig::ideal(), &ReplayConfig::identity()).unwrap();
        assert_eq!(r.makespan(), t.makespan());
        assert_eq!(r.num_threads(), 2);
    }

    #[test]
    fn replay_on_smaller_machine() {
        // Two independent compute threads; replaying on one context
        // doubles the makespan.
        let mut sim = Simulator::new("par", MachineConfig::ideal());
        sim.spawn("T0", ScriptProgram::new(vec![Op::Compute(100)]));
        sim.spawn("T1", ScriptProgram::new(vec![Op::Compute(100)]));
        let t = sim.run().unwrap();
        assert_eq!(t.makespan(), 100);
        let r = replay(&t, MachineConfig::default().with_contexts(1), &ReplayConfig::identity())
            .unwrap();
        assert_eq!(r.makespan(), 200);
    }

    #[test]
    fn projection_is_upper_bound_of_replay() {
        // The analysis' first-order projection must be >= the replayed
        // ground truth speedup.
        let t = micro_trace();
        let rep = analyze(&t);
        let l1_proj = critlock_analysis::project_shrink(&rep, "L1", 0.5).unwrap();
        let l1 = t.object_by_name("L1").unwrap();
        let ground =
            replay(&t, MachineConfig::ideal(), &ReplayConfig::shrink_lock(l1, 0.5)).unwrap();
        let real_speedup = t.makespan() as f64 / ground.makespan() as f64;
        assert!(
            l1_proj.projected_speedup >= real_speedup - 1e-9,
            "projection {} must bound ground truth {}",
            l1_proj.projected_speedup,
            real_speedup
        );
    }
}

//! Typed diagnostics shared by trace validation and salvage.
//!
//! An [`Anomaly`] is a machine-readable description of one defect found
//! in a trace — a cross-thread inconsistency flagged by the analysis
//! validator, a protocol violation the salvage pass repaired, or a
//! resource-budget truncation. Anomalies are warnings, not errors: the
//! pipeline keeps going and reports what it saw. The [`std::fmt::Display`]
//! rendering is the human-readable form used in logs and text reports;
//! the serde form rides along in JSON reports.

use crate::event::Ts;
use crate::ids::{ObjId, ThreadId};
use serde::{Deserialize, Serialize};
use std::fmt;

/// One defect observed in a trace or in an analysis result.
///
/// Variants fall into three families: cross-thread validation findings
/// (produced by `critlock_analysis::validate`), per-thread salvage
/// repairs (produced by [`crate::salvage`]), and resource-governance
/// degradations (produced when a [`crate::Budget`] is exceeded).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum Anomaly {
    /// A thread's first event precedes the `ThreadCreate` that spawned it.
    StartBeforeCreation {
        /// The child thread.
        tid: ThreadId,
        /// Timestamp of the child's first event.
        start: Ts,
        /// Timestamp of the creating event.
        create: Ts,
    },
    /// A join returned before the joined child's last event.
    JoinBeforeChildExit {
        /// The joining thread.
        tid: ThreadId,
        /// The child being joined.
        child: ThreadId,
        /// Timestamp at which the join returned.
        join_end: Ts,
        /// Timestamp of the child's last event.
        child_exit: Ts,
    },
    /// A thread joins a child that never records an exit.
    JoinOfNonExitingThread {
        /// The joining thread.
        tid: ThreadId,
        /// The child that never exits.
        child: ThreadId,
    },
    /// A contended obtain has no enabling release by another thread.
    OrphanContendedObtain {
        /// The obtaining thread.
        tid: ThreadId,
        /// Rendered name of the lock.
        lock: String,
        /// Timestamp of the obtain.
        obtain: Ts,
        /// True if this was a reader-writer lock episode.
        rw: bool,
    },
    /// Two threads hold the same mutex at overlapping times.
    OverlappingHolds {
        /// Rendered name of the lock.
        lock: String,
        /// First holder.
        first: ThreadId,
        /// Second holder.
        second: ThreadId,
        /// Start of the overlapping hold.
        start: Ts,
        /// End of the earlier hold.
        end: Ts,
    },
    /// A write hold of an rwlock overlaps another hold of the same lock.
    RwWriteOverlap {
        /// Rendered name of the rwlock.
        lock: String,
        /// First holder.
        first: ThreadId,
        /// Second holder.
        second: ThreadId,
    },
    /// Participants of one barrier episode depart at different times.
    InconsistentBarrierDeparts {
        /// The barrier object.
        barrier: ObjId,
        /// Barrier generation.
        epoch: u32,
        /// A departure timestamp that disagrees.
        depart: Ts,
        /// The departure timestamp first seen for the episode.
        expected: Ts,
    },
    /// A barrier episode departs before its last arrival.
    BarrierDepartBeforeArrival {
        /// The barrier object.
        barrier: ObjId,
        /// Barrier generation.
        epoch: u32,
        /// The (too early) departure timestamp.
        depart: Ts,
        /// Timestamp of the last arrival.
        last_arrival: Ts,
    },
    /// A condvar wait ended before the signal it claims woke it.
    WakeupBeforeSignal {
        /// The woken thread.
        tid: ThreadId,
        /// Timestamp of the wakeup.
        wakeup: Ts,
        /// Sequence number of the claimed signal.
        signal_seq: u64,
        /// Timestamp of that signal.
        signal_ts: Ts,
    },
    /// A condvar wakeup references a signal the trace never recorded.
    UnrecordedSignal {
        /// The woken thread.
        tid: ThreadId,
        /// The condition variable.
        cv: ObjId,
        /// The unmatched sequence number.
        signal_seq: u64,
    },
    /// The computed critical path is longer than the makespan.
    PathLongerThanMakespan {
        /// Critical-path length.
        length: Ts,
        /// Trace makespan.
        makespan: Ts,
    },
    /// The critical-path slices do not tile the execution as required.
    BrokenTiling {
        /// Human-readable detail from the tiling checker.
        detail: String,
    },
    /// A critical-path slice lies outside its thread's lifetime.
    SliceOutsideLifetime {
        /// The slice's thread.
        tid: ThreadId,
        /// Slice start.
        slice_start: Ts,
        /// Slice end.
        slice_end: Ts,
        /// Thread lifetime start.
        start: Ts,
        /// Thread lifetime end.
        end: Ts,
    },
    /// A critical-path slice references a thread the trace doesn't have.
    SliceUnknownThread {
        /// The unknown thread id.
        tid: ThreadId,
    },
    /// Salvage clamped one or more backwards timestamps to the running
    /// maximum of the thread's stream.
    ClampedTimestamps {
        /// The repaired thread.
        tid: ThreadId,
        /// How many events were clamped.
        count: u64,
    },
    /// Salvage cut a thread's stream at its first protocol violation,
    /// keeping the longest protocol-consistent prefix.
    ProtocolTruncation {
        /// The truncated thread.
        tid: ThreadId,
        /// Index of the first event dropped.
        index: usize,
        /// What the offending event did wrong.
        reason: String,
    },
    /// Salvage dropped an event referencing an unregistered object (or
    /// one registered with a different kind).
    DanglingObjectRef {
        /// The thread whose event was dropped.
        tid: ThreadId,
        /// Index of the dropped event.
        index: usize,
        /// The unresolvable object id.
        obj: ObjId,
    },
    /// Salvage dropped an event referencing a thread id outside the
    /// trace.
    DanglingThreadRef {
        /// The thread whose event was dropped.
        tid: ThreadId,
        /// Index of the dropped event.
        index: usize,
        /// The unresolvable thread id.
        referenced: ThreadId,
    },
    /// Salvage synthesized the missing `ThreadStart` of a stream.
    SynthesizedStart {
        /// The repaired thread.
        tid: ThreadId,
    },
    /// Salvage closed open critical sections / waits and appended the
    /// missing `ThreadExit` of a stream.
    SynthesizedExit {
        /// The repaired thread.
        tid: ThreadId,
    },
    /// Salvage could keep nothing of a thread's stream; the thread is
    /// retained as an empty (quarantined) stream.
    QuarantinedThread {
        /// The quarantined thread.
        tid: ThreadId,
        /// Why nothing was salvageable.
        reason: String,
    },
    /// A per-thread section of a binary trace failed to decode; the
    /// events decoded before the failure were kept.
    CorruptSection {
        /// The affected thread.
        tid: ThreadId,
        /// Events recovered from the section before the decode failure.
        recovered: u64,
        /// The decoder's error message.
        detail: String,
    },
    /// The trace file's whole-file checksum did not match its contents.
    ChecksumMismatch {
        /// Checksum stored in the file.
        expected: u32,
        /// Checksum computed over the file contents.
        actual: u32,
    },
    /// The trace file ended before all announced sections were read.
    TruncatedFile {
        /// Threads whose sections were fully or partially lost.
        missing_threads: u64,
    },
    /// The event budget was exhausted; the trace was tail-truncated.
    BudgetEventsTruncated {
        /// Events kept.
        kept: u64,
        /// Events dropped.
        dropped: u64,
    },
    /// The thread budget was exhausted; trailing threads were dropped.
    BudgetThreadsTruncated {
        /// Threads kept.
        kept: u64,
        /// Threads dropped.
        dropped: u64,
    },
    /// The byte budget was exhausted before the input was fully read.
    BudgetBytesTruncated {
        /// The configured byte budget.
        limit: u64,
        /// Estimated bytes the input would have needed.
        needed: u64,
    },
    /// The wall-clock deadline expired; later pipeline stages were
    /// skipped or truncated.
    DeadlineExceeded {
        /// The stage at which the deadline fired.
        stage: String,
    },
    /// The critical path has zero length even though the trace contains
    /// lock episodes; every CP-time fraction is reported as an explicit
    /// zero rather than a masked or undefined ratio.
    ZeroLengthCriticalPath {
        /// Lock episodes present in the trace.
        episodes: u64,
    },
    /// A thread recorded lock wait/hold time despite a zero-length
    /// lifetime (its first and last event share a timestamp); its TYPE 2
    /// fractions are reported as explicit zeros rather than infinities.
    ZeroDurationThread {
        /// The degenerate thread.
        tid: ThreadId,
        /// Wait + hold time the thread recorded despite zero lifetime.
        busy: Ts,
    },
    /// The collector's analysis worker panicked while processing this
    /// session. The session is quarantined: its last good snapshot keeps
    /// being served (marked degraded), no further frames are analyzed,
    /// and every other session on the shard keeps streaming.
    AnalysisPanicked {
        /// The panic message, when the payload carried one.
        detail: String,
    },
    /// The collector could not keep journaling this session (disk quota
    /// exhausted, ENOSPC, or a persistent write/sync failure). Ingestion
    /// and analysis continue, but the session is no longer crash-resumable:
    /// a collector restart loses whatever arrived after journaling stopped.
    JournalDegraded {
        /// Human-readable cause (quota, ENOSPC, sync failure, ...).
        detail: String,
    },
}

impl Anomaly {
    /// The thread this anomaly is about, if it concerns a single thread.
    pub fn thread(&self) -> Option<ThreadId> {
        match *self {
            Anomaly::StartBeforeCreation { tid, .. }
            | Anomaly::JoinBeforeChildExit { tid, .. }
            | Anomaly::JoinOfNonExitingThread { tid, .. }
            | Anomaly::OrphanContendedObtain { tid, .. }
            | Anomaly::WakeupBeforeSignal { tid, .. }
            | Anomaly::UnrecordedSignal { tid, .. }
            | Anomaly::SliceOutsideLifetime { tid, .. }
            | Anomaly::SliceUnknownThread { tid }
            | Anomaly::ClampedTimestamps { tid, .. }
            | Anomaly::ProtocolTruncation { tid, .. }
            | Anomaly::DanglingObjectRef { tid, .. }
            | Anomaly::DanglingThreadRef { tid, .. }
            | Anomaly::SynthesizedStart { tid }
            | Anomaly::SynthesizedExit { tid }
            | Anomaly::QuarantinedThread { tid, .. }
            | Anomaly::CorruptSection { tid, .. }
            | Anomaly::ZeroDurationThread { tid, .. } => Some(tid),
            _ => None,
        }
    }

    /// Whether this anomaly came from the salvage/governance machinery
    /// (as opposed to a cross-thread validation finding).
    pub fn is_repair(&self) -> bool {
        matches!(
            self,
            Anomaly::ClampedTimestamps { .. }
                | Anomaly::ProtocolTruncation { .. }
                | Anomaly::DanglingObjectRef { .. }
                | Anomaly::DanglingThreadRef { .. }
                | Anomaly::SynthesizedStart { .. }
                | Anomaly::SynthesizedExit { .. }
                | Anomaly::QuarantinedThread { .. }
                | Anomaly::CorruptSection { .. }
                | Anomaly::ChecksumMismatch { .. }
                | Anomaly::TruncatedFile { .. }
                | Anomaly::BudgetEventsTruncated { .. }
                | Anomaly::BudgetThreadsTruncated { .. }
                | Anomaly::BudgetBytesTruncated { .. }
                | Anomaly::DeadlineExceeded { .. }
                | Anomaly::AnalysisPanicked { .. }
                | Anomaly::JournalDegraded { .. }
        )
    }
}

impl fmt::Display for Anomaly {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Anomaly::StartBeforeCreation { tid, start, create } => {
                write!(f, "{tid} starts at {start} before its creation at {create}")
            }
            Anomaly::JoinBeforeChildExit { tid, child, join_end, child_exit } => write!(
                f,
                "{tid} join of {child} returned at {join_end} before child exit at {child_exit}"
            ),
            Anomaly::JoinOfNonExitingThread { tid, child } => {
                write!(f, "{tid} joins {child} which never exits")
            }
            Anomaly::OrphanContendedObtain { tid, lock, obtain, rw } => write!(
                f,
                "{tid} contended {}obtain of {lock} at {obtain} has no prior release by another thread",
                if *rw { "rw-" } else { "" }
            ),
            Anomaly::OverlappingHolds { lock, first, second, start, end } => write!(
                f,
                "lock {lock} held concurrently by T{} and T{} ({start} < {end})",
                first.0, second.0
            ),
            Anomaly::RwWriteOverlap { lock, first, second } => write!(
                f,
                "rwlock {lock} write hold overlaps another hold (T{} vs T{})",
                first.0, second.0
            ),
            Anomaly::InconsistentBarrierDeparts { barrier, epoch, depart, expected } => write!(
                f,
                "barrier {barrier} epoch {epoch} departs at inconsistent times ({depart} vs {expected})"
            ),
            Anomaly::BarrierDepartBeforeArrival { barrier, epoch, depart, last_arrival } => write!(
                f,
                "barrier {barrier} epoch {epoch} departs at {depart} before last arrival {last_arrival}"
            ),
            Anomaly::WakeupBeforeSignal { tid, wakeup, signal_seq, signal_ts } => write!(
                f,
                "{tid} woke at {wakeup} before its signal #{signal_seq} at {signal_ts}"
            ),
            Anomaly::UnrecordedSignal { tid, cv, signal_seq } => {
                write!(f, "{tid} woken by unrecorded signal #{signal_seq} on {cv}")
            }
            Anomaly::PathLongerThanMakespan { length, makespan } => {
                write!(f, "critical path {length} longer than makespan {makespan}")
            }
            Anomaly::BrokenTiling { detail } => f.write_str(detail),
            Anomaly::SliceOutsideLifetime { tid, slice_start, slice_end, start, end } => write!(
                f,
                "CP slice [{slice_start},{slice_end}] outside lifetime of {tid} [{start},{end}]"
            ),
            Anomaly::SliceUnknownThread { tid } => {
                write!(f, "CP slice references unknown thread {tid}")
            }
            Anomaly::ClampedTimestamps { tid, count } => {
                write!(f, "{tid}: clamped {count} backwards timestamp(s)")
            }
            Anomaly::ProtocolTruncation { tid, index, reason } => {
                write!(f, "{tid}: stream cut at event {index} ({reason})")
            }
            Anomaly::DanglingObjectRef { tid, index, obj } => {
                write!(f, "{tid}: dropped event {index} referencing unknown object {obj}")
            }
            Anomaly::DanglingThreadRef { tid, index, referenced } => {
                write!(f, "{tid}: dropped event {index} referencing unknown thread {referenced}")
            }
            Anomaly::SynthesizedStart { tid } => {
                write!(f, "{tid}: synthesized missing ThreadStart")
            }
            Anomaly::SynthesizedExit { tid } => {
                write!(f, "{tid}: closed open sections and synthesized ThreadExit")
            }
            Anomaly::QuarantinedThread { tid, reason } => {
                write!(f, "{tid}: quarantined ({reason})")
            }
            Anomaly::CorruptSection { tid, recovered, detail } => {
                write!(f, "{tid}: corrupt section, recovered {recovered} event(s) ({detail})")
            }
            Anomaly::ChecksumMismatch { expected, actual } => write!(
                f,
                "file checksum mismatch (stored {expected:#010x}, computed {actual:#010x})"
            ),
            Anomaly::TruncatedFile { missing_threads } => {
                write!(f, "file truncated: {missing_threads} thread section(s) missing or partial")
            }
            Anomaly::BudgetEventsTruncated { kept, dropped } => {
                write!(f, "event budget exhausted: kept {kept}, dropped {dropped}")
            }
            Anomaly::BudgetThreadsTruncated { kept, dropped } => {
                write!(f, "thread budget exhausted: kept {kept}, dropped {dropped}")
            }
            Anomaly::BudgetBytesTruncated { limit, needed } => {
                write!(f, "byte budget exhausted: limit {limit}, input needs about {needed}")
            }
            Anomaly::DeadlineExceeded { stage } => {
                write!(f, "wall-clock deadline exceeded during {stage}")
            }
            Anomaly::ZeroLengthCriticalPath { episodes } => {
                write!(f, "critical path has zero length despite {episodes} lock episode(s); CP-time fractions reported as zero")
            }
            Anomaly::ZeroDurationThread { tid, busy } => {
                write!(f, "{tid} has zero lifetime but {busy} time unit(s) of lock wait/hold; fractions reported as zero")
            }
            Anomaly::AnalysisPanicked { detail } => {
                write!(f, "analysis worker panicked ({detail}); session quarantined")
            }
            Anomaly::JournalDegraded { detail } => {
                write!(f, "journaling degraded ({detail}); session no longer crash-resumable")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_keeps_key_phrases() {
        let a = Anomaly::StartBeforeCreation { tid: ThreadId(1), start: 3, create: 7 };
        assert!(a.to_string().contains("before its creation"));
        let a = Anomaly::JoinOfNonExitingThread { tid: ThreadId(0), child: ThreadId(2) };
        assert!(a.to_string().contains("never exits"));
        let a = Anomaly::OrphanContendedObtain {
            tid: ThreadId(0),
            lock: "L".into(),
            obtain: 9,
            rw: false,
        };
        assert!(a.to_string().contains("no prior release"));
        let a = Anomaly::OverlappingHolds {
            lock: "L".into(),
            first: ThreadId(0),
            second: ThreadId(1),
            start: 1,
            end: 5,
        };
        assert!(a.to_string().contains("held concurrently"));
    }

    #[test]
    fn thread_attribution() {
        let a = Anomaly::ProtocolTruncation { tid: ThreadId(3), index: 4, reason: "x".into() };
        assert_eq!(a.thread(), Some(ThreadId(3)));
        assert!(a.is_repair());
        let a = Anomaly::PathLongerThanMakespan { length: 2, makespan: 1 };
        assert_eq!(a.thread(), None);
        assert!(!a.is_repair());
    }

    #[test]
    fn serde_roundtrip() {
        let a = Anomaly::ChecksumMismatch { expected: 1, actual: 2 };
        let json = serde_json::to_string(&a).unwrap();
        let back: Anomaly = serde_json::from_str(&json).unwrap();
        assert_eq!(a, back);
    }
}

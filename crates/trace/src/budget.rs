//! Resource budgets for trace processing.
//!
//! A [`Budget`] caps how much work the pipeline may spend on one trace:
//! a maximum event count, a maximum thread count, a maximum estimate of
//! resident bytes, and a wall-clock deadline. Exceeding a budget never
//! aborts the pipeline — the input is *tail-truncated deterministically*
//! (events are kept in `(thread, index)` order until the cap is reached)
//! and the resulting report is marked degraded. Only the deadline is
//! inherently non-deterministic; it is checked at stage boundaries, so
//! the same trace under the same deadline may degrade at different
//! points on different runs.

use crate::event::Event;
use crate::trace::Trace;
use std::time::{Duration, Instant};

/// Resource limits for processing one trace (or one collector session).
///
/// The default budget is unlimited. Each limit is independent; `None`
/// means "no cap on this axis".
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Budget {
    /// Maximum total events across all threads.
    pub max_events: Option<u64>,
    /// Maximum number of thread streams.
    pub max_threads: Option<usize>,
    /// Maximum estimated resident bytes for the decoded trace.
    pub max_bytes: Option<u64>,
    /// Absolute wall-clock deadline for the whole pipeline run.
    pub deadline: Option<Instant>,
}

impl Budget {
    /// A budget with no limits.
    pub fn unlimited() -> Self {
        Budget::default()
    }

    /// True if no limit is set on any axis.
    pub fn is_unlimited(&self) -> bool {
        self.max_events.is_none()
            && self.max_threads.is_none()
            && self.max_bytes.is_none()
            && self.deadline.is_none()
    }

    /// Cap the total event count, builder-style.
    pub fn with_max_events(mut self, n: u64) -> Self {
        self.max_events = Some(n);
        self
    }

    /// Cap the thread count, builder-style.
    pub fn with_max_threads(mut self, n: usize) -> Self {
        self.max_threads = Some(n);
        self
    }

    /// Cap the estimated resident bytes, builder-style.
    pub fn with_max_bytes(mut self, n: u64) -> Self {
        self.max_bytes = Some(n);
        self
    }

    /// Set the deadline to `d` from now, builder-style.
    ///
    /// Saturates: a `d` so large that `now + d` is not representable by
    /// the monotonic clock (e.g. `Duration::MAX` from `--deadline-ms
    /// u64::MAX`) means the deadline can never be reached, so no deadline
    /// is set rather than panicking on `Instant` overflow.
    pub fn with_deadline_in(mut self, d: Duration) -> Self {
        self.deadline = Instant::now().checked_add(d);
        self
    }

    /// Whether the wall-clock deadline has passed.
    pub fn deadline_expired(&self) -> bool {
        matches!(self.deadline, Some(d) if Instant::now() >= d)
    }

    /// Whether an input of `len` encoded bytes fits the byte budget.
    /// The encoded size is a lower bound on the decoded resident size,
    /// so rejecting on it is conservative in the right direction.
    pub fn allows_input_bytes(&self, len: u64) -> bool {
        self.max_bytes.is_none_or(|cap| len <= cap)
    }

    /// Estimated resident bytes of a decoded trace: the dominant term is
    /// the event arrays; the object/name tables are noise next to them.
    pub fn estimate_trace_bytes(trace: &Trace) -> u64 {
        let per_event = std::mem::size_of::<Event>() as u64;
        let per_thread = 64u64; // stream header + Vec bookkeeping
        (trace.num_events() as u64) * per_event + (trace.num_threads() as u64) * per_thread
    }

    /// How many events of a trace with `total` events may be kept, or
    /// `None` if the event budget allows all of them.
    pub fn event_allowance(&self, total: u64) -> Option<u64> {
        match self.max_events {
            Some(cap) if total > cap => Some(cap),
            _ => None,
        }
    }

    /// How many threads of a trace with `total` streams may be kept, or
    /// `None` if the thread budget allows all of them.
    pub fn thread_allowance(&self, total: usize) -> Option<usize> {
        match self.max_threads {
            Some(cap) if total > cap => Some(cap),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_unlimited() {
        let b = Budget::unlimited();
        assert!(b.is_unlimited());
        assert!(!b.deadline_expired());
        assert!(b.allows_input_bytes(u64::MAX));
        assert_eq!(b.event_allowance(1_000_000), None);
        assert_eq!(b.thread_allowance(64), None);
    }

    #[test]
    fn caps_trigger_only_past_the_limit() {
        let b = Budget::unlimited().with_max_events(10).with_max_threads(2).with_max_bytes(100);
        assert!(!b.is_unlimited());
        assert_eq!(b.event_allowance(10), None);
        assert_eq!(b.event_allowance(11), Some(10));
        assert_eq!(b.thread_allowance(2), None);
        assert_eq!(b.thread_allowance(3), Some(2));
        assert!(b.allows_input_bytes(100));
        assert!(!b.allows_input_bytes(101));
    }

    #[test]
    fn deadline_in_the_past_is_expired() {
        let b = Budget {
            deadline: Some(Instant::now() - Duration::from_millis(1)),
            ..Default::default()
        };
        assert!(b.deadline_expired());
        let b = Budget::unlimited().with_deadline_in(Duration::from_secs(3600));
        assert!(!b.deadline_expired());
    }

    /// Regression: `with_deadline_in(Duration::MAX)` used to panic with
    /// "overflow when adding duration to instant". An unrepresentable
    /// deadline saturates to "no deadline".
    #[test]
    fn unrepresentable_deadline_saturates_instead_of_panicking() {
        let b = Budget::unlimited().with_deadline_in(Duration::MAX);
        assert_eq!(b.deadline, None);
        assert!(!b.deadline_expired());
        let b = Budget::unlimited().with_deadline_in(Duration::from_millis(u64::MAX));
        assert!(!b.deadline_expired());
    }

    #[test]
    fn trace_byte_estimate_scales_with_events() {
        let t = Trace::default();
        assert_eq!(Budget::estimate_trace_bytes(&t), 0);
    }
}

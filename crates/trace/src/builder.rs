//! A small DSL for hand-constructing traces.
//!
//! Used throughout the test suites to encode executions like the paper's
//! Fig. 1 exactly, timestamp by timestamp, and by the documentation
//! examples. Each thread is driven through a cursor that tracks "now" for
//! that thread; composite operations append the underlying event protocol.
//!
//! ```
//! use critlock_trace::builder::TraceBuilder;
//!
//! let mut b = TraceBuilder::new("example");
//! let l = b.lock("L");
//! let t0 = b.thread("T0", 0);
//! let t1 = b.thread("T1", 0);
//! b.on(t0).cs(l, 4).work(1).exit();
//! b.on(t1).work(1).cs_blocked(l, 4, 2).exit();
//! let trace = b.build().unwrap();
//! assert_eq!(trace.makespan(), 6);
//! ```

use crate::error::Result;
use crate::event::{Event, EventKind, Ts, SEQ_UNKNOWN};
use crate::ids::{ObjId, ObjKind, ThreadId};
use crate::trace::{ClockDomain, ThreadStream, Trace, TraceMeta};

/// Builder for hand-constructed traces. See the module docs for usage.
#[derive(Debug)]
pub struct TraceBuilder {
    trace: Trace,
    cursors: Vec<Ts>,
    exited: Vec<bool>,
}

impl TraceBuilder {
    /// Start building a trace for an application called `app`.
    pub fn new(app: impl Into<String>) -> Self {
        let mut meta = TraceMeta::named(app);
        meta.clock = ClockDomain::VirtualNs;
        TraceBuilder { trace: Trace::new(meta), cursors: Vec::new(), exited: Vec::new() }
    }

    /// Attach a workload parameter to the trace metadata.
    pub fn param(&mut self, key: impl Into<String>, value: impl ToString) -> &mut Self {
        self.trace.meta.params.insert(key.into(), value.to_string());
        self
    }

    /// Register a lock.
    pub fn lock(&mut self, name: impl Into<String>) -> ObjId {
        self.trace.register_object(ObjKind::Lock, name)
    }

    /// Register a reader-writer lock.
    pub fn rwlock(&mut self, name: impl Into<String>) -> ObjId {
        self.trace.register_object(ObjKind::RwLock, name)
    }

    /// Register a barrier.
    pub fn barrier(&mut self, name: impl Into<String>) -> ObjId {
        self.trace.register_object(ObjKind::Barrier, name)
    }

    /// Register a condition variable.
    pub fn condvar(&mut self, name: impl Into<String>) -> ObjId {
        self.trace.register_object(ObjKind::Condvar, name)
    }

    /// Register a marker.
    pub fn marker(&mut self, name: impl Into<String>) -> ObjId {
        self.trace.register_object(ObjKind::Marker, name)
    }

    /// Add a thread that starts running at `start_ts`. Returns its id.
    pub fn thread(&mut self, name: impl Into<String>, start_ts: Ts) -> ThreadId {
        let tid = ThreadId(self.trace.threads.len() as u32);
        let mut stream = ThreadStream::new(tid);
        stream.name = Some(name.into());
        stream.events.push(Event::new(start_ts, EventKind::ThreadStart));
        self.trace.push_thread(stream);
        self.cursors.push(start_ts);
        self.exited.push(false);
        tid
    }

    /// Obtain a cursor for appending events to `tid`'s stream.
    pub fn on(&mut self, tid: ThreadId) -> Cursor<'_> {
        assert!(tid.index() < self.trace.threads.len(), "unknown thread {tid}");
        assert!(!self.exited[tid.index()], "thread {tid} already exited");
        Cursor { b: self, tid }
    }

    /// The current cursor time of a thread.
    pub fn now(&self, tid: ThreadId) -> Ts {
        self.cursors[tid.index()]
    }

    /// Finish: validate and return the trace.
    pub fn build(mut self) -> Result<Trace> {
        // Close any thread the test forgot to exit, at its cursor.
        for i in 0..self.trace.threads.len() {
            if !self.exited[i] {
                let ts = self.cursors[i];
                self.trace.threads[i].events.push(Event::new(ts, EventKind::ThreadExit));
            }
        }
        self.trace.validate()?;
        Ok(self.trace)
    }
}

/// Per-thread cursor handed out by [`TraceBuilder::on`]. All operations
/// append events at (or after) the thread's current time and advance it.
#[derive(Debug)]
pub struct Cursor<'a> {
    b: &'a mut TraceBuilder,
    tid: ThreadId,
}

impl Cursor<'_> {
    fn push(&mut self, ts: Ts, kind: EventKind) -> &mut Self {
        let cur = &mut self.b.cursors[self.tid.index()];
        assert!(ts >= *cur, "{}: event at {ts} before cursor {cur}", self.tid);
        *cur = ts;
        self.b.trace.threads[self.tid.index()].events.push(Event::new(ts, kind));
        self
    }

    fn now(&self) -> Ts {
        self.b.cursors[self.tid.index()]
    }

    /// Advance the cursor by `d` time units of (non-critical) computation.
    pub fn work(&mut self, d: Ts) -> &mut Self {
        self.b.cursors[self.tid.index()] += d;
        self
    }

    /// Move the cursor to an absolute time (must not go backwards).
    pub fn at(&mut self, ts: Ts) -> &mut Self {
        let cur = self.now();
        assert!(ts >= cur, "{}: cannot move cursor back from {cur} to {ts}", self.tid);
        self.b.cursors[self.tid.index()] = ts;
        self
    }

    /// Uncontended critical section: acquire+obtain now, hold for `hold`,
    /// release.
    pub fn cs(&mut self, lock: ObjId, hold: Ts) -> &mut Self {
        let t = self.now();
        self.push(t, EventKind::LockAcquire { lock })
            .push(t, EventKind::LockObtain { lock })
            .push(t + hold, EventKind::LockRelease { lock })
    }

    /// Contended critical section: acquire now, block until `obtain_at`,
    /// hold for `hold`, release.
    pub fn cs_blocked(&mut self, lock: ObjId, obtain_at: Ts, hold: Ts) -> &mut Self {
        let t = self.now();
        assert!(obtain_at >= t, "{}: obtain at {obtain_at} before acquire {t}", self.tid);
        self.push(t, EventKind::LockAcquire { lock })
            .push(t, EventKind::LockContended { lock })
            .push(obtain_at, EventKind::LockObtain { lock })
            .push(obtain_at + hold, EventKind::LockRelease { lock })
    }

    /// Raw acquire+obtain now (for nested-lock scenarios); pair with
    /// [`Cursor::release`].
    pub fn acquire(&mut self, lock: ObjId) -> &mut Self {
        let t = self.now();
        self.push(t, EventKind::LockAcquire { lock }).push(t, EventKind::LockObtain { lock })
    }

    /// Raw contended acquire: request now, obtain at `obtain_at`.
    pub fn acquire_blocked(&mut self, lock: ObjId, obtain_at: Ts) -> &mut Self {
        let t = self.now();
        self.push(t, EventKind::LockAcquire { lock })
            .push(t, EventKind::LockContended { lock })
            .push(obtain_at, EventKind::LockObtain { lock })
    }

    /// Release a lock previously acquired with [`Cursor::acquire`].
    pub fn release(&mut self, lock: ObjId) -> &mut Self {
        let t = self.now();
        self.push(t, EventKind::LockRelease { lock })
    }

    /// Uncontended reader-writer critical section.
    pub fn rw(&mut self, lock: ObjId, write: bool, hold: Ts) -> &mut Self {
        let t = self.now();
        self.push(t, EventKind::RwAcquire { lock, write })
            .push(t, EventKind::RwObtain { lock, write })
            .push(t + hold, EventKind::RwRelease { lock, write })
    }

    /// Contended reader-writer critical section: request now, hold from
    /// `obtain_at` for `hold`.
    pub fn rw_blocked(&mut self, lock: ObjId, write: bool, obtain_at: Ts, hold: Ts) -> &mut Self {
        let t = self.now();
        assert!(obtain_at >= t);
        self.push(t, EventKind::RwAcquire { lock, write })
            .push(t, EventKind::RwContended { lock, write })
            .push(obtain_at, EventKind::RwObtain { lock, write })
            .push(obtain_at + hold, EventKind::RwRelease { lock, write })
    }

    /// Cross a barrier: arrive now, depart at `depart_at`.
    pub fn barrier(&mut self, barrier: ObjId, epoch: u32, depart_at: Ts) -> &mut Self {
        let t = self.now();
        assert!(depart_at >= t);
        self.push(t, EventKind::BarrierArrive { barrier, epoch })
            .push(depart_at, EventKind::BarrierDepart { barrier, epoch })
    }

    /// Wait on a condition variable: begin now, wake at `wake_at` due to
    /// signal `signal_seq`.
    pub fn cond_wait(&mut self, cv: ObjId, wake_at: Ts, signal_seq: u64) -> &mut Self {
        let t = self.now();
        assert!(wake_at >= t);
        self.push(t, EventKind::CondWaitBegin { cv })
            .push(wake_at, EventKind::CondWakeup { cv, signal_seq })
    }

    /// Wait on a condition variable without a known signal sequence.
    pub fn cond_wait_unmatched(&mut self, cv: ObjId, wake_at: Ts) -> &mut Self {
        self.cond_wait(cv, wake_at, SEQ_UNKNOWN)
    }

    /// Signal a condition variable now.
    pub fn cond_signal(&mut self, cv: ObjId, signal_seq: u64) -> &mut Self {
        let t = self.now();
        self.push(t, EventKind::CondSignal { cv, signal_seq })
    }

    /// Broadcast a condition variable now.
    pub fn cond_broadcast(&mut self, cv: ObjId, signal_seq: u64) -> &mut Self {
        let t = self.now();
        self.push(t, EventKind::CondBroadcast { cv, signal_seq })
    }

    /// Record creation of a child thread now.
    pub fn create(&mut self, child: ThreadId) -> &mut Self {
        let t = self.now();
        self.push(t, EventKind::ThreadCreate { child })
    }

    /// Join a child: begin now, return at `end_at`.
    pub fn join(&mut self, child: ThreadId, end_at: Ts) -> &mut Self {
        let t = self.now();
        assert!(end_at >= t);
        self.push(t, EventKind::JoinBegin { child }).push(end_at, EventKind::JoinEnd { child })
    }

    /// Drop a marker now.
    pub fn mark(&mut self, id: ObjId) -> &mut Self {
        let t = self.now();
        self.push(t, EventKind::Marker { id })
    }

    /// Record the thread's exit at the current cursor.
    pub fn exit(&mut self) {
        let t = self.now();
        self.push(t, EventKind::ThreadExit);
        self.b.exited[self.tid.index()] = true;
    }

    /// Record the thread's exit at an absolute time.
    pub fn exit_at(&mut self, ts: Ts) {
        self.at(ts).exit();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::episodes::lock_episodes;

    #[test]
    fn doc_example_builds() {
        let mut b = TraceBuilder::new("example");
        let l = b.lock("L");
        let t0 = b.thread("T0", 0);
        let t1 = b.thread("T1", 0);
        b.on(t0).cs(l, 4).work(1).exit();
        b.on(t1).work(1).cs_blocked(l, 4, 2).exit();
        let trace = b.build().unwrap();
        assert_eq!(trace.makespan(), 6);
        let eps = lock_episodes(&trace);
        assert_eq!(eps.len(), 2);
        assert!(eps.iter().any(|e| e.contended && e.wait_time() == 3));
    }

    #[test]
    fn auto_exit_on_build() {
        let mut b = TraceBuilder::new("auto");
        let t0 = b.thread("T0", 0);
        b.on(t0).work(5);
        let trace = b.build().unwrap();
        assert_eq!(trace.threads[0].events.last().unwrap().kind, EventKind::ThreadExit);
        assert_eq!(trace.threads[0].end_ts(), Some(5));
    }

    #[test]
    fn barriers_and_condvars() {
        let mut b = TraceBuilder::new("sync");
        let bar = b.barrier("B");
        let cv = b.condvar("CV");
        let t0 = b.thread("T0", 0);
        let t1 = b.thread("T1", 0);
        b.on(t0).work(3).barrier(bar, 0, 5).cond_signal(cv, 1).exit_at(9);
        b.on(t1).work(5).barrier(bar, 0, 5).cond_wait(cv, 5, 1).exit_at(10);
        let t = b.build().unwrap();
        assert_eq!(t.makespan(), 10);
    }

    #[test]
    fn spawn_join_edges() {
        let mut b = TraceBuilder::new("forkjoin");
        let main = b.thread("main", 0);
        let w = b.thread("w", 1);
        b.on(w).work(7).exit(); // exits at 8
        b.on(main).work(1).create(w).join(w, 8).exit_at(9);
        let t = b.build().unwrap();
        assert_eq!(t.makespan(), 9);
        assert_eq!(t.last_finisher(), Some(ThreadId(0)));
    }

    #[test]
    fn nested_locks() {
        let mut b = TraceBuilder::new("nested");
        let l1 = b.lock("L1");
        let l2 = b.lock("L2");
        let t0 = b.thread("T0", 0);
        b.on(t0).acquire(l1).work(1).acquire(l2).work(2).release(l2).work(1).release(l1).exit();
        let t = b.build().unwrap();
        let eps = lock_episodes(&t);
        assert_eq!(eps.len(), 2);
        let outer = eps.iter().find(|e| e.lock == l1).unwrap();
        assert_eq!(outer.hold_time(), 4);
        let inner = eps.iter().find(|e| e.lock == l2).unwrap();
        assert_eq!(inner.hold_time(), 2);
    }

    #[test]
    #[should_panic(expected = "cannot move cursor back")]
    fn cursor_cannot_rewind() {
        let mut b = TraceBuilder::new("bad");
        let t0 = b.thread("T0", 10);
        b.on(t0).at(5);
    }

    #[test]
    #[should_panic(expected = "already exited")]
    fn no_events_after_exit() {
        let mut b = TraceBuilder::new("bad");
        let t0 = b.thread("T0", 0);
        b.on(t0).exit();
        b.on(t0).work(1);
    }

    #[test]
    fn params_recorded() {
        let mut b = TraceBuilder::new("p");
        b.param("threads", 4);
        let t = b.build().unwrap();
        assert_eq!(t.meta.params.get("threads").unwrap(), "4");
    }
}

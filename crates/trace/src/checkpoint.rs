//! Durable checkpoint document for a collector session (`CLCK` format).
//!
//! A checkpoint captures everything the collector's session assembler
//! needs to resume analysis without replaying the full journal history:
//! the partial [`Trace`] assembled so far, the admission counters, and
//! the sliding-window ring state. Recovery loads the checkpoint and
//! replays only the journal frames *after* the checkpoint watermark —
//! O(tail), not O(session lifetime) — while staying byte-identical to a
//! never-crashed collector.
//!
//! Layout (all integers LEB128 varints unless noted):
//!
//! ```text
//! magic "CLCK" | version varint
//! payload-len varint | payload bytes | CRC32 of payload (4B LE)
//! ```
//!
//! The payload encodes the session token, the frame watermark, the
//! admission counters, the trace (meta JSON, objects, threads) and an
//! optional window-ring section. Unlike the `CLTR` trace format, event
//! timestamps here are **zigzag-encoded signed deltas**: an assembled
//! partial trace legally contains backwards per-thread timestamps across
//! frame boundaries (each `CLSM` frame restarts its delta base), so an
//! unsigned delta would be unrepresentable.

use crate::codec::{
    kind_from_u8, kind_to_u8, read_bytes, read_event_kind, read_string, read_tid, read_varint,
    write_bytes, write_event_kind, write_varint,
};
use crate::error::{Result, TraceError};
use crate::event::{Event, Ts};
use crate::ids::ObjInfo;
use crate::rollup::WindowDigest;
use crate::stream::crc32;
use crate::trace::{ThreadStream, Trace, TraceMeta};
use std::io::{Read, Write};

const MAGIC: &[u8; 4] = b"CLCK";
const VERSION: u64 = 1;

/// Caps applied to decoded counts so a corrupt length claim cannot
/// commit a huge allocation before the input runs out.
const MAX_COUNT: u64 = 1 << 24;

/// Sliding-window ring state carried by a checkpoint.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WindowCheckpoint {
    /// Window width the ring was built with.
    pub width: Ts,
    /// Ordinal of the next window to close.
    pub next_index: u64,
    /// Closed window digests still retained, oldest first.
    pub digests: Vec<WindowDigest>,
}

/// Everything needed to restore a session assembler exactly.
#[derive(Debug, Clone, PartialEq)]
pub struct CheckpointDoc {
    /// Session resume token (empty for anonymous sessions).
    pub token: Vec<u8>,
    /// Frame watermark: number of frames absorbed into this checkpoint.
    /// Recovery replays journal frames numbered `frames..`.
    pub frames: u64,
    /// Whether the session's Start frame was seen.
    pub started: bool,
    /// Whether the session's End frame was seen.
    pub ended: bool,
    /// Events admitted so far.
    pub events: u64,
    /// Events dropped by the admission budget so far.
    pub events_dropped: u64,
    /// Whether the window ring was marked stale at checkpoint time.
    pub windows_stale: bool,
    /// The partial trace assembled so far.
    pub trace: Trace,
    /// Window-ring state, if windowing was configured.
    pub window: Option<WindowCheckpoint>,
}

fn zigzag(d: i64) -> u64 {
    ((d << 1) ^ (d >> 63)) as u64
}

fn unzigzag(z: u64) -> i64 {
    ((z >> 1) as i64) ^ -((z & 1) as i64)
}

fn write_event_signed(out: &mut impl Write, prev_ts: Ts, ev: &Event) -> Result<()> {
    let d = ev.ts.wrapping_sub(prev_ts) as i64;
    write_varint(out, zigzag(d))?;
    write_event_kind(out, &ev.kind)
}

fn read_event_signed(inp: &mut impl Read, prev_ts: Ts) -> Result<Event> {
    let d = unzigzag(read_varint(inp)?);
    let ts = prev_ts.wrapping_add(d as u64);
    Ok(Event::new(ts, read_event_kind(inp)?))
}

fn checked_count(n: u64, what: &str) -> Result<usize> {
    if n > MAX_COUNT {
        return Err(TraceError::Decode(format!("unreasonable {what} count {n}")));
    }
    Ok(n as usize)
}

fn encode_payload(doc: &CheckpointDoc) -> Result<Vec<u8>> {
    let mut out = Vec::new();
    write_bytes(&mut out, &doc.token)?;
    write_varint(&mut out, doc.frames)?;
    let flags =
        u8::from(doc.started) | (u8::from(doc.ended) << 1) | (u8::from(doc.windows_stale) << 2);
    out.write_all(&[flags])?;
    write_varint(&mut out, doc.events)?;
    write_varint(&mut out, doc.events_dropped)?;

    let meta = serde_json::to_vec(&doc.trace.meta)?;
    write_bytes(&mut out, &meta)?;

    write_varint(&mut out, doc.trace.objects.len() as u64)?;
    for obj in &doc.trace.objects {
        out.write_all(&[kind_to_u8(obj.kind)])?;
        write_bytes(&mut out, obj.name.as_bytes())?;
    }

    write_varint(&mut out, doc.trace.threads.len() as u64)?;
    for t in &doc.trace.threads {
        write_varint(&mut out, u64::from(t.tid.0))?;
        match &t.name {
            Some(name) => {
                out.write_all(&[1])?;
                write_bytes(&mut out, name.as_bytes())?;
            }
            None => out.write_all(&[0])?,
        }
        write_varint(&mut out, t.events.len() as u64)?;
        let mut prev: Ts = 0;
        for ev in &t.events {
            write_event_signed(&mut out, prev, ev)?;
            prev = ev.ts;
        }
    }

    match &doc.window {
        Some(w) => {
            out.write_all(&[1])?;
            write_varint(&mut out, w.width)?;
            write_varint(&mut out, w.next_index)?;
            write_varint(&mut out, w.digests.len() as u64)?;
            for d in &w.digests {
                write_bytes(&mut out, &serde_json::to_vec(d)?)?;
            }
        }
        None => out.write_all(&[0])?,
    }
    Ok(out)
}

fn read_flag(inp: &mut impl Read) -> Result<u8> {
    let mut b = [0u8; 1];
    inp.read_exact(&mut b)?;
    Ok(b[0])
}

fn decode_payload(payload: &[u8]) -> Result<CheckpointDoc> {
    let inp = &mut &payload[..];
    let token = read_bytes(inp)?;
    let frames = read_varint(inp)?;
    let flags = read_flag(inp)?;
    let events = read_varint(inp)?;
    let events_dropped = read_varint(inp)?;

    let meta: TraceMeta = serde_json::from_slice(&read_bytes(inp)?)?;

    let n_objs = checked_count(read_varint(inp)?, "object")?;
    let mut objects = Vec::with_capacity(n_objs.min(1024));
    for _ in 0..n_objs {
        let kind = kind_from_u8(read_flag(inp)?)?;
        let name = read_string(inp)?;
        objects.push(ObjInfo { kind, name });
    }

    let n_threads = checked_count(read_varint(inp)?, "thread")?;
    let mut threads = Vec::with_capacity(n_threads.min(1024));
    for _ in 0..n_threads {
        let tid = read_tid(inp)?;
        let name = match read_flag(inp)? {
            0 => None,
            1 => Some(read_string(inp)?),
            v => return Err(TraceError::Decode(format!("bad name flag {v}"))),
        };
        let n_events = checked_count(read_varint(inp)?, "event")?;
        let mut events = Vec::with_capacity(n_events.min(1 << 16));
        let mut prev: Ts = 0;
        for _ in 0..n_events {
            let ev = read_event_signed(inp, prev)?;
            prev = ev.ts;
            events.push(ev);
        }
        threads.push(ThreadStream { tid, name, events });
    }

    let window = match read_flag(inp)? {
        0 => None,
        1 => {
            let width = read_varint(inp)?;
            let next_index = read_varint(inp)?;
            let n = checked_count(read_varint(inp)?, "window digest")?;
            let mut digests = Vec::with_capacity(n.min(1024));
            for _ in 0..n {
                digests.push(serde_json::from_slice(&read_bytes(inp)?)?);
            }
            Some(WindowCheckpoint { width, next_index, digests })
        }
        v => return Err(TraceError::Decode(format!("bad window flag {v}"))),
    };

    if !inp.is_empty() {
        return Err(TraceError::Decode(format!(
            "{} trailing bytes after checkpoint payload",
            inp.len()
        )));
    }

    Ok(CheckpointDoc {
        token,
        frames,
        started: flags & 1 != 0,
        ended: flags & 2 != 0,
        events,
        events_dropped,
        windows_stale: flags & 4 != 0,
        trace: Trace { meta, objects, threads },
        window,
    })
}

/// Serialize a checkpoint document to its on-disk `CLCK` byte form.
pub fn encode_checkpoint(doc: &CheckpointDoc) -> Result<Vec<u8>> {
    let payload = encode_payload(doc)?;
    let mut out = Vec::with_capacity(payload.len() + 16);
    out.extend_from_slice(MAGIC);
    write_varint(&mut out, VERSION)?;
    write_varint(&mut out, payload.len() as u64)?;
    out.extend_from_slice(&payload);
    out.extend_from_slice(&crc32(&payload).to_le_bytes());
    Ok(out)
}

/// Decode a `CLCK` checkpoint document, validating the payload CRC.
pub fn decode_checkpoint(bytes: &[u8]) -> Result<CheckpointDoc> {
    let inp = &mut &bytes[..];
    let mut magic = [0u8; 4];
    inp.read_exact(&mut magic)?;
    if &magic != MAGIC {
        return Err(TraceError::Decode("bad checkpoint magic".into()));
    }
    let version = read_varint(inp)?;
    if version != VERSION {
        return Err(TraceError::Decode(format!("unsupported checkpoint version {version}")));
    }
    let len = read_varint(inp)? as usize;
    if inp.len() < len + 4 {
        return Err(TraceError::Decode(format!(
            "checkpoint truncated ({} of {} payload+crc bytes)",
            inp.len(),
            len + 4
        )));
    }
    let payload = &inp[..len];
    let stored = u32::from_le_bytes([inp[len], inp[len + 1], inp[len + 2], inp[len + 3]]);
    if crc32(payload) != stored {
        return Err(TraceError::Decode("checkpoint CRC mismatch".into()));
    }
    decode_payload(payload)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::EventKind;
    use crate::ids::{ObjId, ObjKind, ThreadId};

    fn sample_doc() -> CheckpointDoc {
        let mut trace = Trace::new(TraceMeta::named("ckpt"));
        trace.objects.push(ObjInfo { kind: ObjKind::Lock, name: "m0".into() });
        let mut t0 = ThreadStream::new(ThreadId(0));
        t0.name = Some("main".into());
        t0.events = vec![
            Event::new(10, EventKind::LockAcquire { lock: ObjId(0) }),
            Event::new(20, EventKind::LockRelease { lock: ObjId(0) }),
            // Backwards timestamp across a frame boundary: legal in an
            // assembled partial trace, unrepresentable in CLTR deltas.
            Event::new(5, EventKind::LockAcquire { lock: ObjId(0) }),
            Event::new(6, EventKind::LockRelease { lock: ObjId(0) }),
        ];
        trace.threads.push(t0);
        CheckpointDoc {
            token: b"tok-123".to_vec(),
            frames: 7,
            started: true,
            ended: false,
            events: 4,
            events_dropped: 1,
            windows_stale: true,
            trace,
            window: Some(WindowCheckpoint {
                width: 100,
                next_index: 3,
                digests: vec![WindowDigest {
                    index: 2,
                    lo: 200,
                    hi: 300,
                    cp_length: 42,
                    makespan: 100,
                    locks: Vec::new(),
                }],
            }),
        }
    }

    #[test]
    fn roundtrip_including_backwards_timestamps() {
        let doc = sample_doc();
        let bytes = encode_checkpoint(&doc).unwrap();
        let back = decode_checkpoint(&bytes).unwrap();
        assert_eq!(back, doc);
    }

    #[test]
    fn roundtrip_minimal_doc() {
        let doc = CheckpointDoc {
            token: Vec::new(),
            frames: 0,
            started: false,
            ended: false,
            events: 0,
            events_dropped: 0,
            windows_stale: false,
            trace: Trace::new(TraceMeta::default()),
            window: None,
        };
        let bytes = encode_checkpoint(&doc).unwrap();
        assert_eq!(decode_checkpoint(&bytes).unwrap(), doc);
    }

    #[test]
    fn zigzag_roundtrips_extremes() {
        for d in [0i64, 1, -1, i64::MAX, i64::MIN, 1 << 40, -(1 << 40)] {
            assert_eq!(unzigzag(zigzag(d)), d);
        }
    }

    #[test]
    fn corrupt_payload_is_rejected() {
        let bytes = encode_checkpoint(&sample_doc()).unwrap();
        // Flip one payload byte: the CRC must catch it.
        let mut bad = bytes.clone();
        let mid = bad.len() / 2;
        bad[mid] ^= 0x40;
        assert!(decode_checkpoint(&bad).is_err());
        // Truncation is also rejected.
        assert!(decode_checkpoint(&bytes[..bytes.len() - 3]).is_err());
        // Bad magic.
        let mut wrong = bytes;
        wrong[0] = b'X';
        assert!(decode_checkpoint(&wrong).is_err());
    }
}

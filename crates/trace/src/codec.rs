//! Compact binary trace format.
//!
//! Layout (all integers LEB128 varints unless noted):
//!
//! ```text
//! magic "CLTR" | version u16-varint
//! meta: len + JSON bytes of TraceMeta
//! objects: count, then per object: kind u8, name len + bytes
//! threads: count, then per thread:
//!   tid, has_name u8 (+ name), event count,
//!   (v2) section byte length,
//!   events as (delta-ts varint, opcode u8, operands...)
//! ```
//!
//! Timestamps are delta-encoded per thread, which keeps typical event
//! records at 3–6 bytes.
//!
//! Version 2 prefixes each thread's encoded event block with its byte
//! length, so a reader holding the whole trace in memory can locate every
//! section without decoding it and hand the sections to worker threads:
//! [`read_trace_bytes`] decodes them in parallel (event timestamps are
//! delta-encoded *per thread*, so each section is self-contained).
//! Version 1 traces (no section lengths) are still read, serially.
//!
//! Version 3 appends a whole-file CRC32 (4 bytes, little-endian, over
//! everything from the magic through the last section) so the strict
//! readers deterministically reject byte-level corruption instead of
//! depending on a mutation happening to break the grammar. The tolerant
//! reader, [`read_trace_bytes_salvage`], records a checksum mismatch as
//! an [`Anomaly`] and keeps decoding.

use crate::anomaly::Anomaly;
use crate::budget::Budget;
use crate::error::{Result, TraceError};
use crate::event::{Event, EventKind};
use crate::ids::{ObjId, ObjInfo, ObjKind, ThreadId};
use crate::stream::{crc32, crc32_finish, crc32_update, CRC32_INIT};
use crate::trace::{ThreadStream, Trace, TraceMeta};
use rayon::prelude::*;
use std::fs::File;
use std::io::{BufWriter, Read, Write};
use std::path::Path;

const MAGIC: &[u8; 4] = b"CLTR";
const VERSION: u64 = 3;
/// Oldest format version [`read_trace`] still accepts.
const MIN_VERSION: u64 = 1;
/// First version carrying the trailing whole-file checksum.
const CRC_VERSION: u64 = 3;

/// Write an unsigned LEB128 varint.
pub fn write_varint(out: &mut impl Write, mut v: u64) -> Result<()> {
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            out.write_all(&[byte])?;
            return Ok(());
        }
        out.write_all(&[byte | 0x80])?;
    }
}

/// Read an unsigned LEB128 varint.
pub fn read_varint(inp: &mut impl Read) -> Result<u64> {
    let mut v: u64 = 0;
    let mut shift = 0u32;
    loop {
        let mut byte = [0u8; 1];
        inp.read_exact(&mut byte)?;
        let b = byte[0];
        if shift >= 63 && b > 1 {
            return Err(TraceError::Decode("varint overflow".into()));
        }
        v |= u64::from(b & 0x7f) << shift;
        if b & 0x80 == 0 {
            return Ok(v);
        }
        shift += 7;
        if shift > 63 {
            return Err(TraceError::Decode("varint too long".into()));
        }
    }
}

pub(crate) fn write_bytes(out: &mut impl Write, b: &[u8]) -> Result<()> {
    write_varint(out, b.len() as u64)?;
    out.write_all(b)?;
    Ok(())
}

pub(crate) fn read_bytes(inp: &mut impl Read) -> Result<Vec<u8>> {
    // Bound in the u64 domain *before* narrowing: on a 32-bit target a
    // huge claim would otherwise wrap through `as usize` and pass the cap.
    let len = read_varint(inp)?;
    if len > 1 << 30 {
        return Err(TraceError::Decode(format!("unreasonable length {len}")));
    }
    let len = len as usize;
    // Read through `take` instead of pre-allocating `len` bytes: a
    // corrupt length claim up to the 1 GiB cap must not commit a huge
    // allocation before the (short) input runs out.
    let mut buf = Vec::new();
    inp.by_ref().take(len as u64).read_to_end(&mut buf)?;
    if buf.len() != len {
        return Err(TraceError::Decode(format!(
            "byte string truncated ({} of {len} bytes)",
            buf.len()
        )));
    }
    Ok(buf)
}

pub(crate) fn read_string(inp: &mut impl Read) -> Result<String> {
    String::from_utf8(read_bytes(inp)?).map_err(|e| TraceError::Decode(e.to_string()))
}

pub(crate) fn kind_to_u8(k: ObjKind) -> u8 {
    match k {
        ObjKind::Lock => 0,
        ObjKind::Barrier => 1,
        ObjKind::Condvar => 2,
        ObjKind::Marker => 3,
        ObjKind::RwLock => 4,
    }
}

pub(crate) fn kind_from_u8(v: u8) -> Result<ObjKind> {
    Ok(match v {
        0 => ObjKind::Lock,
        1 => ObjKind::Barrier,
        2 => ObjKind::Condvar,
        3 => ObjKind::Marker,
        4 => ObjKind::RwLock,
        _ => return Err(TraceError::Decode(format!("bad object kind {v}"))),
    })
}

pub(crate) fn write_event(out: &mut impl Write, prev_ts: u64, ev: &Event) -> Result<()> {
    write_varint(out, ev.ts - prev_ts)?;
    write_event_kind(out, &ev.kind)
}

/// Encode an event's opcode + operands (no timestamp). Shared between
/// the delta-encoded CLTR/CLSM paths and the checkpoint codec, whose
/// zigzag timestamps tolerate the backwards deltas a partial trace can
/// legally contain across frame boundaries.
pub(crate) fn write_event_kind(out: &mut impl Write, kind: &EventKind) -> Result<()> {
    match *kind {
        EventKind::LockAcquire { lock } => {
            out.write_all(&[0])?;
            write_varint(out, lock.0 as u64)?;
        }
        EventKind::LockContended { lock } => {
            out.write_all(&[1])?;
            write_varint(out, lock.0 as u64)?;
        }
        EventKind::LockObtain { lock } => {
            out.write_all(&[2])?;
            write_varint(out, lock.0 as u64)?;
        }
        EventKind::LockRelease { lock } => {
            out.write_all(&[3])?;
            write_varint(out, lock.0 as u64)?;
        }
        EventKind::BarrierArrive { barrier, epoch } => {
            out.write_all(&[4])?;
            write_varint(out, barrier.0 as u64)?;
            write_varint(out, epoch as u64)?;
        }
        EventKind::BarrierDepart { barrier, epoch } => {
            out.write_all(&[5])?;
            write_varint(out, barrier.0 as u64)?;
            write_varint(out, epoch as u64)?;
        }
        EventKind::CondWaitBegin { cv } => {
            out.write_all(&[6])?;
            write_varint(out, cv.0 as u64)?;
        }
        EventKind::CondWakeup { cv, signal_seq } => {
            out.write_all(&[7])?;
            write_varint(out, cv.0 as u64)?;
            write_varint(out, signal_seq)?;
        }
        EventKind::CondSignal { cv, signal_seq } => {
            out.write_all(&[8])?;
            write_varint(out, cv.0 as u64)?;
            write_varint(out, signal_seq)?;
        }
        EventKind::CondBroadcast { cv, signal_seq } => {
            out.write_all(&[9])?;
            write_varint(out, cv.0 as u64)?;
            write_varint(out, signal_seq)?;
        }
        EventKind::ThreadCreate { child } => {
            out.write_all(&[10])?;
            write_varint(out, child.0 as u64)?;
        }
        EventKind::ThreadStart => out.write_all(&[11])?,
        EventKind::ThreadExit => out.write_all(&[12])?,
        EventKind::JoinBegin { child } => {
            out.write_all(&[13])?;
            write_varint(out, child.0 as u64)?;
        }
        EventKind::JoinEnd { child } => {
            out.write_all(&[14])?;
            write_varint(out, child.0 as u64)?;
        }
        EventKind::Marker { id } => {
            out.write_all(&[15])?;
            write_varint(out, id.0 as u64)?;
        }
        EventKind::RwAcquire { lock, write } => {
            out.write_all(&[16, write as u8])?;
            write_varint(out, lock.0 as u64)?;
        }
        EventKind::RwContended { lock, write } => {
            out.write_all(&[17, write as u8])?;
            write_varint(out, lock.0 as u64)?;
        }
        EventKind::RwObtain { lock, write } => {
            out.write_all(&[18, write as u8])?;
            write_varint(out, lock.0 as u64)?;
        }
        EventKind::RwRelease { lock, write } => {
            out.write_all(&[19, write as u8])?;
            write_varint(out, lock.0 as u64)?;
        }
    }
    Ok(())
}

fn read_bool(inp: &mut impl Read) -> Result<bool> {
    let mut b = [0u8; 1];
    inp.read_exact(&mut b)?;
    match b[0] {
        0 => Ok(false),
        1 => Ok(true),
        other => Err(TraceError::Decode(format!("bad bool {other}"))),
    }
}

fn read_obj(inp: &mut impl Read) -> Result<ObjId> {
    let v = read_varint(inp)?;
    u32::try_from(v).map(ObjId).map_err(|_| TraceError::Decode("object id overflow".into()))
}

pub(crate) fn read_tid(inp: &mut impl Read) -> Result<ThreadId> {
    let v = read_varint(inp)?;
    u32::try_from(v).map(ThreadId).map_err(|_| TraceError::Decode("thread id overflow".into()))
}

/// Barrier epochs are `u32` in the event model; a wider varint is a
/// corrupt or hostile encoding, not a value to wrap.
fn read_epoch(inp: &mut impl Read) -> Result<u32> {
    let v = read_varint(inp)?;
    u32::try_from(v).map_err(|_| TraceError::Decode(format!("barrier epoch overflow ({v})")))
}

pub(crate) fn read_event(inp: &mut impl Read, prev_ts: u64) -> Result<Event> {
    let dt = read_varint(inp)?;
    let ts =
        prev_ts.checked_add(dt).ok_or_else(|| TraceError::Decode("timestamp overflow".into()))?;
    Ok(Event::new(ts, read_event_kind(inp)?))
}

/// Decode an event's opcode + operands (no timestamp); the inverse of
/// [`write_event_kind`].
pub(crate) fn read_event_kind(inp: &mut impl Read) -> Result<EventKind> {
    let mut op = [0u8; 1];
    inp.read_exact(&mut op)?;
    let kind = match op[0] {
        0 => EventKind::LockAcquire { lock: read_obj(inp)? },
        1 => EventKind::LockContended { lock: read_obj(inp)? },
        2 => EventKind::LockObtain { lock: read_obj(inp)? },
        3 => EventKind::LockRelease { lock: read_obj(inp)? },
        4 => EventKind::BarrierArrive { barrier: read_obj(inp)?, epoch: read_epoch(inp)? },
        5 => EventKind::BarrierDepart { barrier: read_obj(inp)?, epoch: read_epoch(inp)? },
        6 => EventKind::CondWaitBegin { cv: read_obj(inp)? },
        7 => EventKind::CondWakeup { cv: read_obj(inp)?, signal_seq: read_varint(inp)? },
        8 => EventKind::CondSignal { cv: read_obj(inp)?, signal_seq: read_varint(inp)? },
        9 => EventKind::CondBroadcast { cv: read_obj(inp)?, signal_seq: read_varint(inp)? },
        10 => EventKind::ThreadCreate { child: read_tid(inp)? },
        11 => EventKind::ThreadStart,
        12 => EventKind::ThreadExit,
        13 => EventKind::JoinBegin { child: read_tid(inp)? },
        14 => EventKind::JoinEnd { child: read_tid(inp)? },
        15 => EventKind::Marker { id: read_obj(inp)? },
        16 => {
            let write = read_bool(inp)?;
            EventKind::RwAcquire { lock: read_obj(inp)?, write }
        }
        17 => {
            let write = read_bool(inp)?;
            EventKind::RwContended { lock: read_obj(inp)?, write }
        }
        18 => {
            let write = read_bool(inp)?;
            EventKind::RwObtain { lock: read_obj(inp)?, write }
        }
        19 => {
            let write = read_bool(inp)?;
            EventKind::RwRelease { lock: read_obj(inp)?, write }
        }
        other => return Err(TraceError::Decode(format!("bad opcode {other}"))),
    };
    Ok(kind)
}

/// Checksums everything written through it, without buffering.
struct CrcWriter<'a, W: Write> {
    inner: &'a mut W,
    state: u32,
}

impl<W: Write> Write for CrcWriter<'_, W> {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        let n = self.inner.write(buf)?;
        self.state = crc32_update(self.state, &buf[..n]);
        Ok(n)
    }

    fn flush(&mut self) -> std::io::Result<()> {
        self.inner.flush()
    }
}

/// Checksums everything read through it, without buffering.
struct CrcReader<'a, R: Read> {
    inner: &'a mut R,
    state: u32,
}

impl<R: Read> Read for CrcReader<'_, R> {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        let n = self.inner.read(buf)?;
        self.state = crc32_update(self.state, &buf[..n]);
        Ok(n)
    }
}

/// Serialize a trace into the binary format (current version).
pub fn write_trace(trace: &Trace, out: &mut impl Write) -> Result<()> {
    write_trace_with_version(trace, VERSION, out)
}

/// Serialize a trace as a specific format version.
///
/// Version 1 omits section byte lengths, version 2 omits the whole-file
/// checksum trailer. Exists for compatibility testing (the readers accept
/// `MIN_VERSION..=VERSION`) and for talking to older fleet components;
/// new writers should use [`write_trace`].
pub fn write_trace_with_version(trace: &Trace, version: u64, out: &mut impl Write) -> Result<()> {
    if !(MIN_VERSION..=VERSION).contains(&version) {
        return Err(TraceError::Decode(format!("unsupported version {version}")));
    }
    let mut out = CrcWriter { inner: out, state: CRC32_INIT };
    out.write_all(MAGIC)?;
    write_varint(&mut out, version)?;
    let meta = serde_json::to_vec(&trace.meta)?;
    write_bytes(&mut out, &meta)?;

    write_varint(&mut out, trace.objects.len() as u64)?;
    for obj in &trace.objects {
        out.write_all(&[kind_to_u8(obj.kind)])?;
        write_bytes(&mut out, obj.name.as_bytes())?;
    }

    write_varint(&mut out, trace.threads.len() as u64)?;
    let mut section = Vec::new();
    for stream in &trace.threads {
        write_varint(&mut out, stream.tid.0 as u64)?;
        match &stream.name {
            Some(n) => {
                out.write_all(&[1])?;
                write_bytes(&mut out, n.as_bytes())?;
            }
            None => out.write_all(&[0])?,
        }
        write_varint(&mut out, stream.events.len() as u64)?;
        // v2+: the event block is length-prefixed so readers can skip to
        // the next section without decoding. Encode into a reusable
        // scratch buffer to learn the length.
        section.clear();
        let mut prev = 0u64;
        for ev in &stream.events {
            write_event(&mut section, prev, ev)?;
            prev = ev.ts;
        }
        if version >= 2 {
            write_bytes(&mut out, &section)?;
        } else {
            out.write_all(&section)?;
        }
    }
    if version >= CRC_VERSION {
        // Whole-file checksum trailer, excluded from its own coverage.
        let crc = crc32_finish(out.state);
        out.inner.write_all(&crc.to_le_bytes())?;
    }
    Ok(())
}

/// Decode one thread's event block from its self-contained section.
fn decode_events(section: &[u8], nev: usize) -> Result<Vec<Event>> {
    let mut events = Vec::with_capacity(nev.min(1 << 20));
    let mut iter = RawEventIter::new(section, nev as u64);
    for ev in &mut iter {
        events.push(ev?.event());
    }
    if !iter.remaining_bytes().is_empty() {
        return Err(TraceError::Decode("trailing bytes in thread section".into()));
    }
    Ok(events)
}

/// Read everything before the thread sections; returns the trace shell
/// plus the declared thread count and format version.
fn read_preamble(inp: &mut impl Read) -> Result<(Trace, usize, u64)> {
    let mut magic = [0u8; 4];
    inp.read_exact(&mut magic)?;
    if &magic != MAGIC {
        return Err(TraceError::Decode("bad magic (not a CLTR trace)".into()));
    }
    let version = read_varint(inp)?;
    if !(MIN_VERSION..=VERSION).contains(&version) {
        return Err(TraceError::Decode(format!("unsupported version {version}")));
    }
    let meta: TraceMeta = serde_json::from_slice(&read_bytes(inp)?)?;
    let mut trace = Trace::new(meta);

    // Ids are dense u32s, so a count past u32::MAX cannot name real
    // objects/threads — reject it instead of narrowing (which would wrap
    // on 32-bit targets).
    let nobj = read_varint(inp)?;
    if nobj > u32::MAX as u64 {
        return Err(TraceError::Decode(format!("object count {nobj} overflows id space")));
    }
    for _ in 0..nobj {
        let mut k = [0u8; 1];
        inp.read_exact(&mut k)?;
        let kind = kind_from_u8(k[0])?;
        let name = read_string(inp)?;
        trace.objects.push(ObjInfo { kind, name });
    }

    let nthreads = read_varint(inp)?;
    if nthreads > u32::MAX as u64 {
        return Err(TraceError::Decode(format!("thread count {nthreads} overflows id space")));
    }
    Ok((trace, nthreads as usize, version))
}

fn read_thread_header(inp: &mut impl Read) -> Result<(ThreadId, Option<String>, usize)> {
    let tid = read_tid(inp)?;
    let mut has_name = [0u8; 1];
    inp.read_exact(&mut has_name)?;
    let name = if has_name[0] == 1 { Some(read_string(inp)?) } else { None };
    let nev = read_varint(inp)?;
    let nev = usize::try_from(nev)
        .map_err(|_| TraceError::Decode(format!("event count {nev} overflows address space")))?;
    Ok((tid, name, nev))
}

/// Deserialize a trace from the binary format (streaming, serial).
pub fn read_trace(inp: &mut impl Read) -> Result<Trace> {
    let mut inp = CrcReader { inner: inp, state: CRC32_INIT };
    let (mut trace, nthreads, version) = read_preamble(&mut inp)?;
    for _ in 0..nthreads {
        let (tid, name, nev) = read_thread_header(&mut inp)?;
        let events = if version >= 2 {
            decode_events(&read_bytes(&mut inp)?, nev)?
        } else {
            let mut events = Vec::with_capacity(nev.min(1 << 20));
            let mut prev = 0u64;
            for _ in 0..nev {
                let ev = read_event(&mut inp, prev)?;
                prev = ev.ts;
                events.push(ev);
            }
            events
        };
        let mut stream = ThreadStream::new(tid);
        stream.name = name;
        stream.events = events;
        trace.threads.push(stream);
    }
    if version >= CRC_VERSION {
        let actual = crc32_finish(inp.state);
        let mut trailer = [0u8; 4];
        inp.inner.read_exact(&mut trailer)?;
        let expected = u32::from_le_bytes(trailer);
        if expected != actual {
            return Err(TraceError::Decode(format!(
                "file checksum mismatch (stored {expected:#010x}, computed {actual:#010x})"
            )));
        }
    }
    Ok(trace)
}

/// Deserialize a trace held entirely in memory.
///
/// Parses a borrowed [`RawTraceView`] over the buffer (envelope checks,
/// checksum, section bounds — no event copies) and then materializes all
/// thread sections in parallel across the active rayon pool; output is
/// identical to [`read_trace`] on the same bytes, for every supported
/// format version.
pub fn read_trace_bytes(buf: &[u8]) -> Result<Trace> {
    RawTraceView::parse(buf)?.to_trace()
}

/// Verify the v3 whole-file checksum trailer of `buf` and return `rem`
/// (the unconsumed tail) with the 4 trailer bytes sliced off.
fn check_trailer<'a>(buf: &'a [u8], rem: &'a [u8]) -> Result<&'a [u8]> {
    let consumed = buf.len() - rem.len();
    let body = buf
        .len()
        .checked_sub(4)
        .filter(|&b| b >= consumed)
        .ok_or_else(|| TraceError::Decode("file checksum trailer missing".into()))?;
    let expected = u32::from_le_bytes([buf[body], buf[body + 1], buf[body + 2], buf[body + 3]]);
    let actual = crc32(&buf[..body]);
    if expected != actual {
        return Err(TraceError::Decode(format!(
            "file checksum mismatch (stored {expected:#010x}, computed {actual:#010x})"
        )));
    }
    Ok(&buf[consumed..body])
}

// ----------------------------------------------------- zero-copy view
//
// The borrowed decode path: a validated window over an in-memory CLTR
// buffer (an mmap'd file or a received network buffer) that yields
// events straight off the wire bytes, without materializing an owned
// `Vec<Event>` per thread first. The owned readers above remain the
// compatibility path; [`RawTraceView::to_trace`] produces bit-identical
// output (see the equivalence property tests).
//
// All cursors below are plain sub-slices of the caller's buffer — the
// module contains no `unsafe`; lifetimes tie every view to the backing
// buffer, so a view can never outlive the bytes it points into.

/// Read one LEB128 varint off a slice cursor, advancing it. Same
/// overlong/overflow rules as [`read_varint`], but errors (rather than
/// blocks) at end of input.
#[inline]
pub(crate) fn raw_varint(rem: &mut &[u8]) -> Result<u64> {
    let mut v: u64 = 0;
    let mut shift = 0u32;
    let mut i = 0;
    while i < rem.len() {
        let b = rem[i];
        i += 1;
        if shift >= 63 && b > 1 {
            return Err(TraceError::Decode("varint overflow".into()));
        }
        v |= u64::from(b & 0x7f) << shift;
        if b & 0x80 == 0 {
            *rem = &rem[i..];
            return Ok(v);
        }
        shift += 7;
        if shift > 63 {
            return Err(TraceError::Decode("varint too long".into()));
        }
    }
    Err(TraceError::Decode("varint truncated".into()))
}

#[inline]
fn raw_u8(rem: &mut &[u8]) -> Result<u8> {
    let (&b, rest) =
        rem.split_first().ok_or_else(|| TraceError::Decode("unexpected end of input".into()))?;
    *rem = rest;
    Ok(b)
}

/// Split `len` bytes off the cursor, bounds-checked in the u64 domain so
/// an oversized claim can never wrap through a narrowing cast.
#[inline]
fn raw_take<'a>(rem: &mut &'a [u8], len: u64) -> Result<&'a [u8]> {
    if len > rem.len() as u64 {
        return Err(TraceError::Decode(format!(
            "truncated input (need {len} bytes, have {})",
            rem.len()
        )));
    }
    let (taken, rest) = rem.split_at(len as usize);
    *rem = rest;
    Ok(taken)
}

/// Length-prefixed byte string as a borrowed slice.
#[inline]
fn raw_len_bytes<'a>(rem: &mut &'a [u8]) -> Result<&'a [u8]> {
    let len = raw_varint(rem)?;
    raw_take(rem, len)
}

/// Length-prefixed UTF-8 string as a borrowed `&str`.
#[inline]
fn raw_str<'a>(rem: &mut &'a [u8]) -> Result<&'a str> {
    std::str::from_utf8(raw_len_bytes(rem)?).map_err(|e| TraceError::Decode(e.to_string()))
}

#[inline]
fn raw_obj(rem: &mut &[u8]) -> Result<ObjId> {
    let v = raw_varint(rem)?;
    u32::try_from(v).map(ObjId).map_err(|_| TraceError::Decode("object id overflow".into()))
}

#[inline]
pub(crate) fn raw_tid(rem: &mut &[u8]) -> Result<ThreadId> {
    let v = raw_varint(rem)?;
    u32::try_from(v).map(ThreadId).map_err(|_| TraceError::Decode("thread id overflow".into()))
}

#[inline]
fn raw_epoch(rem: &mut &[u8]) -> Result<u32> {
    let v = raw_varint(rem)?;
    u32::try_from(v).map_err(|_| TraceError::Decode(format!("barrier epoch overflow ({v})")))
}

#[inline]
fn raw_bool(rem: &mut &[u8]) -> Result<bool> {
    match raw_u8(rem)? {
        0 => Ok(false),
        1 => Ok(true),
        other => Err(TraceError::Decode(format!("bad bool {other}"))),
    }
}

/// Slice-cursor mirror of [`read_event_kind`]; enforces the same typed
/// bounds (object/thread ids, barrier epochs).
#[inline]
fn raw_event_kind(rem: &mut &[u8]) -> Result<EventKind> {
    let kind = match raw_u8(rem)? {
        0 => EventKind::LockAcquire { lock: raw_obj(rem)? },
        1 => EventKind::LockContended { lock: raw_obj(rem)? },
        2 => EventKind::LockObtain { lock: raw_obj(rem)? },
        3 => EventKind::LockRelease { lock: raw_obj(rem)? },
        4 => EventKind::BarrierArrive { barrier: raw_obj(rem)?, epoch: raw_epoch(rem)? },
        5 => EventKind::BarrierDepart { barrier: raw_obj(rem)?, epoch: raw_epoch(rem)? },
        6 => EventKind::CondWaitBegin { cv: raw_obj(rem)? },
        7 => EventKind::CondWakeup { cv: raw_obj(rem)?, signal_seq: raw_varint(rem)? },
        8 => EventKind::CondSignal { cv: raw_obj(rem)?, signal_seq: raw_varint(rem)? },
        9 => EventKind::CondBroadcast { cv: raw_obj(rem)?, signal_seq: raw_varint(rem)? },
        10 => EventKind::ThreadCreate { child: raw_tid(rem)? },
        11 => EventKind::ThreadStart,
        12 => EventKind::ThreadExit,
        13 => EventKind::JoinBegin { child: raw_tid(rem)? },
        14 => EventKind::JoinEnd { child: raw_tid(rem)? },
        15 => EventKind::Marker { id: raw_obj(rem)? },
        16 => {
            let write = raw_bool(rem)?;
            EventKind::RwAcquire { lock: raw_obj(rem)?, write }
        }
        17 => {
            let write = raw_bool(rem)?;
            EventKind::RwContended { lock: raw_obj(rem)?, write }
        }
        18 => {
            let write = raw_bool(rem)?;
            EventKind::RwObtain { lock: raw_obj(rem)?, write }
        }
        19 => {
            let write = raw_bool(rem)?;
            EventKind::RwRelease { lock: raw_obj(rem)?, write }
        }
        other => return Err(TraceError::Decode(format!("bad opcode {other}"))),
    };
    Ok(kind)
}

/// Decode one delta-encoded event record off a slice cursor.
#[inline]
fn raw_event(rem: &mut &[u8], prev_ts: u64) -> Result<(u64, EventKind)> {
    let dt = raw_varint(rem)?;
    let ts =
        prev_ts.checked_add(dt).ok_or_else(|| TraceError::Decode("timestamp overflow".into()))?;
    Ok((ts, raw_event_kind(rem)?))
}

/// One event yielded by [`RawEventIter`]: the decoded fields plus the
/// exact wire bytes they came from (useful for re-framing or journaling
/// a record without re-encoding it).
#[derive(Debug, Clone, Copy)]
pub struct EventRef<'a> {
    /// Absolute timestamp (the per-thread delta chain already applied).
    pub ts: u64,
    /// Decoded opcode + operands.
    pub kind: EventKind,
    /// The encoded record: delta-ts varint, opcode, operands.
    pub raw: &'a [u8],
}

impl EventRef<'_> {
    /// Materialize the owned [`Event`].
    #[inline]
    pub fn event(&self) -> Event {
        Event::new(self.ts, self.kind)
    }
}

/// Borrowed iterator over one thread's encoded event section.
///
/// Yields up to the declared event count, decoding each record in place;
/// stops (fused) at the first malformed record. Framing is validated as
/// a side effect of decoding — the strict callers additionally require
/// [`Self::remaining_bytes`] to be empty afterwards, the salvage caller
/// keeps the successfully decoded prefix.
#[derive(Debug, Clone)]
pub struct RawEventIter<'a> {
    rem: &'a [u8],
    prev_ts: u64,
    remaining: u64,
    failed: bool,
}

impl<'a> RawEventIter<'a> {
    /// Iterate `declared` events off `section`.
    pub fn new(section: &'a [u8], declared: u64) -> Self {
        RawEventIter { rem: section, prev_ts: 0, remaining: declared, failed: false }
    }

    /// Section bytes not yet consumed. After a full iteration this must
    /// be empty for a well-formed section.
    pub fn remaining_bytes(&self) -> &'a [u8] {
        self.rem
    }

    /// Declared events not yet yielded.
    pub fn remaining_events(&self) -> u64 {
        self.remaining
    }
}

impl<'a> Iterator for RawEventIter<'a> {
    type Item = Result<EventRef<'a>>;

    fn next(&mut self) -> Option<Self::Item> {
        if self.failed || self.remaining == 0 {
            return None;
        }
        let start = self.rem;
        match raw_event(&mut self.rem, self.prev_ts) {
            Ok((ts, kind)) => {
                self.prev_ts = ts;
                self.remaining -= 1;
                let raw = &start[..start.len() - self.rem.len()];
                Some(Ok(EventRef { ts, kind, raw }))
            }
            Err(e) => {
                self.failed = true;
                self.rem = start;
                Some(Err(e))
            }
        }
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        if self.failed {
            return (0, Some(0));
        }
        let n = usize::try_from(self.remaining).unwrap_or(usize::MAX);
        (0, Some(n))
    }
}

/// One thread's header plus its (not yet decoded) event section, borrowed
/// from the trace buffer.
#[derive(Debug, Clone, Copy)]
pub struct RawThread<'a> {
    /// The thread's trace id.
    pub tid: ThreadId,
    /// Optional thread name, borrowed from the buffer.
    pub name: Option<&'a str>,
    /// Event count the header declares for this section.
    pub declared_events: u64,
    section: &'a [u8],
}

impl<'a> RawThread<'a> {
    /// The encoded event section (exact byte window, nothing decoded).
    pub fn section(&self) -> &'a [u8] {
        self.section
    }

    /// Iterate the section's events without materializing them.
    pub fn events(&self) -> RawEventIter<'a> {
        RawEventIter::new(self.section, self.declared_events)
    }

    /// Validate the section's framing — every declared record decodes and
    /// no bytes trail the last one — without materializing events.
    /// Returns the validated event count.
    pub fn validate(&self) -> Result<u64> {
        let mut iter = self.events();
        let mut n = 0u64;
        for ev in &mut iter {
            ev?;
            n += 1;
        }
        if !iter.remaining_bytes().is_empty() {
            return Err(TraceError::Decode(format!(
                "trailing bytes in thread section (tid {})",
                self.tid.0
            )));
        }
        Ok(n)
    }

    /// Strictly materialize the section into owned events.
    pub fn decode(&self) -> Result<Vec<Event>> {
        let cap = usize::try_from(self.declared_events).unwrap_or(usize::MAX);
        let mut events = Vec::with_capacity(cap.min(1 << 20));
        let mut iter = self.events();
        for ev in &mut iter {
            events.push(ev?.event());
        }
        if !iter.remaining_bytes().is_empty() {
            return Err(TraceError::Decode("trailing bytes in thread section".into()));
        }
        Ok(events)
    }
}

/// A synchronization object's registration, borrowed from the buffer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RawObjRef<'a> {
    /// Object kind.
    pub kind: ObjKind,
    /// Object name, borrowed from the buffer.
    pub name: &'a str,
}

/// A validated, borrowed view over a complete in-memory CLTR buffer.
///
/// [`parse`](Self::parse) checks the envelope once — magic, version, the
/// v3 whole-file checksum, preamble grammar and section bounds — after
/// which every thread's events can be iterated ([`RawThread::events`])
/// or materialized in parallel ([`Self::to_trace`]) without copying the
/// buffer. Event *records* are validated lazily, as they are decoded.
///
/// Version 1 buffers (no section framing) are supported too: locating
/// their section boundaries requires one decode pass at parse time,
/// still without materializing events.
#[derive(Debug, Clone)]
pub struct RawTraceView<'a> {
    version: u64,
    meta: TraceMeta,
    objects: Vec<RawObjRef<'a>>,
    threads: Vec<RawThread<'a>>,
}

impl<'a> RawTraceView<'a> {
    /// Parse and validate the envelope of a CLTR buffer.
    pub fn parse(buf: &'a [u8]) -> Result<Self> {
        let mut rem = buf;
        let magic = raw_take(&mut rem, 4)
            .map_err(|_| TraceError::Decode("bad magic (not a CLTR trace)".into()))?;
        if magic != MAGIC {
            return Err(TraceError::Decode("bad magic (not a CLTR trace)".into()));
        }
        let version = raw_varint(&mut rem)?;
        if !(MIN_VERSION..=VERSION).contains(&version) {
            return Err(TraceError::Decode(format!("unsupported version {version}")));
        }
        if version >= CRC_VERSION {
            // Verify the trailer before trusting any length field, and
            // slice it off so section windows never include it.
            rem = check_trailer(buf, rem)?;
        }
        let meta: TraceMeta = serde_json::from_slice(raw_len_bytes(&mut rem)?)?;

        let nobj = raw_varint(&mut rem)?;
        if nobj > u32::MAX as u64 {
            return Err(TraceError::Decode(format!("object count {nobj} overflows id space")));
        }
        let mut objects = Vec::with_capacity((nobj as usize).min(1 << 16));
        for _ in 0..nobj {
            let kind = kind_from_u8(raw_u8(&mut rem)?)?;
            objects.push(RawObjRef { kind, name: raw_str(&mut rem)? });
        }

        let nthreads = raw_varint(&mut rem)?;
        if nthreads > u32::MAX as u64 {
            return Err(TraceError::Decode(format!("thread count {nthreads} overflows id space")));
        }
        let mut threads = Vec::with_capacity((nthreads as usize).min(1 << 16));
        for _ in 0..nthreads {
            let tid = raw_tid(&mut rem)?;
            let name = if raw_u8(&mut rem)? == 1 { Some(raw_str(&mut rem)?) } else { None };
            let declared_events = raw_varint(&mut rem)?;
            let section = if version >= 2 {
                let len = raw_varint(&mut rem)?;
                if len > rem.len() as u64 {
                    return Err(TraceError::Decode(format!(
                        "thread section length {len} exceeds remaining {}",
                        rem.len()
                    )));
                }
                let section = raw_take(&mut rem, len)?;
                // A record is at least 2 bytes (delta varint + opcode),
                // so a count past len/2 cannot fit — reject before any
                // consumer sizes an allocation from the claim.
                if declared_events > section.len() as u64 / 2 {
                    return Err(TraceError::Decode(format!(
                        "event count {declared_events} exceeds section capacity {}",
                        section.len()
                    )));
                }
                section
            } else {
                // v1: no framing — walk the records to find the boundary.
                let start = rem;
                let mut prev = 0u64;
                for _ in 0..declared_events {
                    let (ts, _) = raw_event(&mut rem, prev)?;
                    prev = ts;
                }
                &start[..start.len() - rem.len()]
            };
            threads.push(RawThread { tid, name, declared_events, section });
        }
        // Bytes after the last section are ignored, matching the owned
        // readers (under v3 the checksum already covers them).
        Ok(RawTraceView { version, meta, objects, threads })
    }

    /// Format version of the underlying buffer.
    pub fn version(&self) -> u64 {
        self.version
    }

    /// Trace metadata (deserialized once at parse; the JSON blob is the
    /// one part of the format that cannot be borrowed).
    pub fn meta(&self) -> &TraceMeta {
        &self.meta
    }

    /// Registered synchronization objects, names borrowed.
    pub fn objects(&self) -> &[RawObjRef<'a>] {
        &self.objects
    }

    /// Per-thread sections, in file order.
    pub fn threads(&self) -> &[RawThread<'a>] {
        &self.threads
    }

    /// Total events the thread headers declare.
    pub fn declared_events(&self) -> u64 {
        self.threads.iter().map(|t| t.declared_events).sum()
    }

    /// Validate every section's framing without materializing events;
    /// returns the total validated event count.
    pub fn validate(&self) -> Result<u64> {
        let mut total = 0u64;
        for t in &self.threads {
            total += t.validate()?;
        }
        Ok(total)
    }

    /// Materialize the owned [`Trace`], decoding thread sections in
    /// parallel across the active rayon pool. Bit-identical to the
    /// streaming reader's output on the same bytes.
    pub fn to_trace(&self) -> Result<Trace> {
        let mut trace = Trace::new(self.meta.clone());
        trace.objects = self
            .objects
            .iter()
            .map(|o| ObjInfo { kind: o.kind, name: o.name.to_string() })
            .collect();
        let decoded: Vec<Result<ThreadStream>> = self
            .threads
            .par_iter()
            .map(|t| {
                let mut stream = ThreadStream::new(t.tid);
                stream.name = t.name.map(str::to_string);
                stream.events = t.decode()?;
                Ok(stream)
            })
            .collect();
        for stream in decoded {
            trace.threads.push(stream?);
        }
        Ok(trace)
    }
}

/// Decode up to `take` events from a section, returning whatever prefix
/// decodes cleanly, the count of unconsumed section bytes, and the error
/// message that stopped the scan, if any.
fn decode_events_prefix(section: &[u8], take: u64) -> (Vec<Event>, usize, Option<String>) {
    let mut events = Vec::with_capacity((take.min(1 << 20)) as usize);
    let mut iter = RawEventIter::new(section, take);
    loop {
        match iter.next() {
            Some(Ok(ev)) => events.push(ev.event()),
            Some(Err(e)) => return (events, iter.remaining_bytes().len(), Some(e.to_string())),
            None => return (events, iter.remaining_bytes().len(), None),
        }
    }
}

/// Tolerant decode for salvage mode: recover whatever the byte buffer
/// still encodes instead of failing on the first inconsistency.
///
/// Only an unreadable preamble (magic/version/meta/object table) is an
/// error — past that point every problem is recorded as an [`Anomaly`]:
/// a checksum mismatch keeps decoding, a corrupt or truncated thread
/// section contributes its longest decodable event prefix, and missing
/// trailing sections are reported but don't discard the threads already
/// decoded. The [`Budget`] is enforced here too, so sections past the
/// event/thread allowance are never decoded (or even allocated).
///
/// The returned trace makes no protocol guarantees; run it through
/// [`crate::salvage::salvage_trace`] before analysis.
pub fn read_trace_bytes_salvage(buf: &[u8], budget: &Budget) -> Result<(Trace, Vec<Anomaly>)> {
    let mut rem = buf;
    let (mut trace, nthreads, version) = read_preamble(&mut rem)?;
    let mut anomalies = Vec::new();

    if version >= CRC_VERSION {
        let consumed = buf.len() - rem.len();
        match buf.len().checked_sub(4).filter(|&b| b >= consumed) {
            Some(body) => {
                let expected =
                    u32::from_le_bytes([buf[body], buf[body + 1], buf[body + 2], buf[body + 3]]);
                let actual = crc32(&buf[..body]);
                if expected != actual {
                    anomalies.push(Anomaly::ChecksumMismatch { expected, actual });
                }
                rem = &buf[consumed..body];
            }
            None => anomalies.push(Anomaly::TruncatedFile { missing_threads: nthreads as u64 }),
        }
    }

    let kept_threads = budget.thread_allowance(nthreads).unwrap_or(nthreads);
    if kept_threads < nthreads {
        anomalies.push(Anomaly::BudgetThreadsTruncated {
            kept: kept_threads as u64,
            dropped: (nthreads - kept_threads) as u64,
        });
    }
    let per_event = std::mem::size_of::<Event>() as u64;
    let event_cap = budget.max_events;
    let byte_cap = budget.max_bytes.map(|b| b / per_event.max(1));
    let mut allowance = event_cap.unwrap_or(u64::MAX).min(byte_cap.unwrap_or(u64::MAX));
    let mut declared_total = 0u64;

    for i in 0..kept_threads {
        if budget.deadline_expired() {
            anomalies.push(Anomaly::DeadlineExceeded { stage: "decode".into() });
            break;
        }
        let tid = ThreadId(i as u32);
        let Ok((read_tid, name, nev)) = read_thread_header(&mut rem) else {
            anomalies.push(Anomaly::TruncatedFile { missing_threads: (nthreads - i) as u64 });
            break;
        };
        declared_total = declared_total.saturating_add(nev as u64);
        let take = (nev as u64).min(allowance);

        let (events, decode_err, poisoned) = if version >= 2 {
            match read_varint(&mut rem) {
                Ok(len) if (len as usize) <= rem.len() => {
                    let (section, rest) = rem.split_at(len as usize);
                    rem = rest;
                    let (events, unconsumed, err) = decode_events_prefix(section, take);
                    // Trailing section bytes after a full decode mean the
                    // section itself is inconsistent; keep the events.
                    let err = err.or_else(|| {
                        (take == nev as u64 && unconsumed > 0)
                            .then(|| "trailing bytes in thread section".to_string())
                    });
                    (events, err, false)
                }
                Ok(len) => {
                    // Length points past the end of the file: decode what
                    // is physically there, then the buffer is exhausted.
                    let section = rem;
                    rem = &[];
                    let (events, _, _) = decode_events_prefix(section, take);
                    (events, Some(format!("section length {len} exceeds file")), false)
                }
                Err(e) => (Vec::new(), Some(e.to_string()), true),
            }
        } else {
            // v1: sections are not framed, so a decode error loses sync
            // with every section after this one.
            let (events, err) = decode_events_prefix_stream(&mut rem, take);
            let poisoned = err.is_some();
            (events, err, poisoned)
        };

        if let Some(detail) = decode_err {
            anomalies.push(Anomaly::CorruptSection { tid, recovered: events.len() as u64, detail });
        }
        allowance -= events.len() as u64;
        let mut stream = ThreadStream::new(read_tid);
        stream.name = name;
        stream.events = events;
        trace.threads.push(stream);

        if poisoned {
            let missing = (nthreads - i - 1) as u64;
            if missing > 0 {
                anomalies.push(Anomaly::TruncatedFile { missing_threads: missing });
            }
            break;
        }
    }

    if let Some(cap) = event_cap {
        if declared_total > cap {
            anomalies
                .push(Anomaly::BudgetEventsTruncated { kept: cap, dropped: declared_total - cap });
        }
    }
    if let Some(cap) = byte_cap {
        if declared_total > cap {
            anomalies.push(Anomaly::BudgetBytesTruncated {
                limit: budget.max_bytes.unwrap_or(0),
                needed: declared_total.saturating_mul(per_event),
            });
        }
    }
    Ok((trace, anomalies))
}

/// Like [`decode_events_prefix`] but consumes from a shared stream (v1
/// layout, no section framing).
fn decode_events_prefix_stream(rem: &mut &[u8], take: u64) -> (Vec<Event>, Option<String>) {
    let mut events = Vec::with_capacity((take.min(1 << 20)) as usize);
    let mut prev = 0u64;
    for _ in 0..take {
        match raw_event(rem, prev) {
            Ok((ts, kind)) => {
                prev = ts;
                events.push(Event::new(ts, kind));
            }
            Err(e) => return (events, Some(e.to_string())),
        }
    }
    (events, None)
}

/// Save a trace to a file in the binary format.
pub fn save(trace: &Trace, path: impl AsRef<Path>) -> Result<()> {
    let mut w = BufWriter::new(File::create(path)?);
    write_trace(trace, &mut w)?;
    w.flush()?;
    Ok(())
}

/// Load a trace from a binary-format file.
///
/// Reads the file into memory in one pass and decodes via
/// [`read_trace_bytes`], avoiding per-byte reader overhead and letting
/// thread sections decode in parallel.
pub fn load(path: impl AsRef<Path>) -> Result<Trace> {
    let buf = std::fs::read(path)?;
    read_trace_bytes(&buf)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::TraceBuilder;
    use std::io::Cursor;

    fn roundtrip(trace: &Trace) -> Trace {
        let mut buf = Vec::new();
        write_trace(trace, &mut buf).unwrap();
        read_trace(&mut Cursor::new(buf)).unwrap()
    }

    fn sample() -> Trace {
        let mut b = TraceBuilder::new("codec-sample");
        b.param("threads", 3);
        let l = b.lock("L");
        let bar = b.barrier("B");
        let cv = b.condvar("CV");
        let m = b.marker("phase");
        let t0 = b.thread("main", 0);
        let t1 = b.thread("w1", 1);
        let t2 = b.thread("w2", 1);
        b.on(t1).work(2).cs(l, 5).barrier(bar, 0, 10).exit_at(20);
        b.on(t2).work(3).cs_blocked(l, 8, 2).barrier(bar, 0, 10).cond_wait(cv, 15, 1).exit_at(19);
        b.on(t0)
            .create(t1)
            .create(t2)
            .mark(m)
            .work(14)
            .cond_signal(cv, 1)
            .join(t1, 20)
            .join(t2, 20)
            .exit_at(21);
        b.build().unwrap()
    }

    #[test]
    fn varint_roundtrip() {
        for v in [0u64, 1, 127, 128, 300, 1 << 20, u64::MAX / 2, u64::MAX] {
            let mut buf = Vec::new();
            write_varint(&mut buf, v).unwrap();
            assert_eq!(read_varint(&mut Cursor::new(buf)).unwrap(), v);
        }
    }

    #[test]
    fn varint_rejects_overlong() {
        let buf = vec![0x80u8; 11];
        assert!(read_varint(&mut Cursor::new(buf)).is_err());
    }

    #[test]
    fn trace_roundtrip_exact() {
        let t = sample();
        let back = roundtrip(&t);
        assert_eq!(t, back);
        back.validate().unwrap();
    }

    #[test]
    fn bad_magic_rejected() {
        let buf = b"NOPE".to_vec();
        assert!(matches!(
            read_trace(&mut Cursor::new(buf)),
            Err(TraceError::Decode(_)) | Err(TraceError::Io(_))
        ));
    }

    #[test]
    fn truncated_stream_rejected() {
        let t = sample();
        let mut buf = Vec::new();
        write_trace(&t, &mut buf).unwrap();
        buf.truncate(buf.len() / 2);
        assert!(read_trace(&mut Cursor::new(buf)).is_err());
    }

    #[test]
    fn file_roundtrip() {
        let t = sample();
        let dir = std::env::temp_dir().join("critlock-codec-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("sample.cltr");
        save(&t, &path).unwrap();
        let back = load(&path).unwrap();
        assert_eq!(t, back);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn empty_trace_roundtrip() {
        let t = Trace::default();
        assert_eq!(roundtrip(&t), t);
    }

    #[test]
    fn bytes_path_matches_streaming_reader() {
        let t = sample();
        let mut buf = Vec::new();
        write_trace(&t, &mut buf).unwrap();
        let streaming = read_trace(&mut Cursor::new(buf.clone())).unwrap();
        let parallel = read_trace_bytes(&buf).unwrap();
        assert_eq!(streaming, parallel);
        assert_eq!(parallel, t);
    }

    /// Hand-encode a v1 trace (no section byte lengths) and check both
    /// readers still accept it.
    #[test]
    fn version1_still_readable() {
        let t = sample();
        let mut buf = Vec::new();
        buf.extend_from_slice(MAGIC);
        write_varint(&mut buf, 1).unwrap();
        write_bytes(&mut buf, &serde_json::to_vec(&t.meta).unwrap()).unwrap();
        write_varint(&mut buf, t.objects.len() as u64).unwrap();
        for obj in &t.objects {
            buf.push(kind_to_u8(obj.kind));
            write_bytes(&mut buf, obj.name.as_bytes()).unwrap();
        }
        write_varint(&mut buf, t.threads.len() as u64).unwrap();
        for stream in &t.threads {
            write_varint(&mut buf, stream.tid.0 as u64).unwrap();
            match &stream.name {
                Some(n) => {
                    buf.push(1);
                    write_bytes(&mut buf, n.as_bytes()).unwrap();
                }
                None => buf.push(0),
            }
            write_varint(&mut buf, stream.events.len() as u64).unwrap();
            let mut prev = 0u64;
            for ev in &stream.events {
                write_event(&mut buf, prev, ev).unwrap();
                prev = ev.ts;
            }
        }
        assert_eq!(read_trace(&mut Cursor::new(buf.clone())).unwrap(), t);
        assert_eq!(read_trace_bytes(&buf).unwrap(), t);
    }

    /// A section length pointing past the end of the buffer (here:
    /// truncating the file under an intact length) must error, not panic.
    #[test]
    fn oversized_section_length_rejected() {
        let t = sample();
        let mut buf = Vec::new();
        write_trace(&t, &mut buf).unwrap();
        buf.truncate(buf.len() - 4);
        assert!(read_trace_bytes(&buf).is_err());
    }

    /// Any single-byte corruption of a v3 file is rejected by both
    /// strict readers via the whole-file checksum, even where the
    /// mutated byte still decodes as valid grammar.
    #[test]
    fn v3_checksum_detects_bit_flip() {
        let t = sample();
        let mut buf = Vec::new();
        write_trace(&t, &mut buf).unwrap();
        for at in [7, buf.len() / 2, buf.len() - 5] {
            let mut bad = buf.clone();
            bad[at] ^= 0x40;
            assert!(read_trace_bytes(&bad).is_err(), "flip at {at} accepted by bytes reader");
            assert!(
                read_trace(&mut Cursor::new(bad)).is_err(),
                "flip at {at} accepted by streaming reader"
            );
        }
    }

    /// The tolerant reader records the checksum mismatch as an anomaly
    /// and still decodes the (grammatically intact) trace.
    #[test]
    fn salvage_decode_reports_checksum_mismatch() {
        let t = sample();
        let mut buf = Vec::new();
        write_trace(&t, &mut buf).unwrap();
        let at = buf.len() - 1; // corrupt the trailer itself
        buf[at] ^= 0x40;
        let (back, anomalies) = read_trace_bytes_salvage(&buf, &Budget::unlimited()).unwrap();
        assert_eq!(back, t);
        assert!(anomalies.iter().any(|a| matches!(a, Anomaly::ChecksumMismatch { .. })));
    }

    /// Cutting the file mid-section loses the tail but salvage-decode
    /// keeps every section before the cut.
    #[test]
    fn salvage_decode_recovers_truncated_file() {
        let t = sample();
        let mut buf = Vec::new();
        write_trace(&t, &mut buf).unwrap();
        buf.truncate(buf.len() * 2 / 3);
        let (back, anomalies) = read_trace_bytes_salvage(&buf, &Budget::unlimited()).unwrap();
        assert!(!anomalies.is_empty());
        assert!(back.num_events() > 0, "nothing recovered from a 2/3 file");
        assert!(back.num_events() < t.num_events());
    }

    /// An uncorrupted file salvage-decodes to the identical trace with
    /// no anomalies.
    #[test]
    fn salvage_decode_of_clean_file_is_identity() {
        let t = sample();
        let mut buf = Vec::new();
        write_trace(&t, &mut buf).unwrap();
        let (back, anomalies) = read_trace_bytes_salvage(&buf, &Budget::unlimited()).unwrap();
        assert_eq!(back, t);
        assert_eq!(anomalies, Vec::new());
    }

    /// Event budgets are enforced during decode: sections past the
    /// allowance are never decoded, and the truncation is recorded.
    #[test]
    fn salvage_decode_enforces_event_budget() {
        let t = sample();
        let mut buf = Vec::new();
        write_trace(&t, &mut buf).unwrap();
        let budget = Budget::unlimited().with_max_events(4);
        let (back, anomalies) = read_trace_bytes_salvage(&buf, &budget).unwrap();
        assert!(back.num_events() <= 4);
        assert!(anomalies
            .iter()
            .any(|a| matches!(a, Anomaly::BudgetEventsTruncated { kept: 4, .. })));
    }

    /// Encode a version-2 file around one hand-built event section.
    fn v2_with_section(section: &[u8], nev: u64) -> Vec<u8> {
        let t = Trace::default();
        let mut buf = Vec::new();
        buf.extend_from_slice(MAGIC);
        write_varint(&mut buf, 2).unwrap();
        write_bytes(&mut buf, &serde_json::to_vec(&t.meta).unwrap()).unwrap();
        write_varint(&mut buf, 0).unwrap(); // no objects
        write_varint(&mut buf, 1).unwrap(); // one thread
        write_varint(&mut buf, 0).unwrap(); // tid 0
        buf.push(0); // unnamed
        write_varint(&mut buf, nev).unwrap();
        write_bytes(&mut buf, section).unwrap();
        buf
    }

    /// A barrier epoch wider than u32 is a typed decode error in every
    /// reader — strict streaming, strict bytes, the zero-copy validator —
    /// and a recorded anomaly in salvage; it must never wrap.
    #[test]
    fn barrier_epoch_overflow_rejected_everywhere() {
        // dt 0, opcode 4 (BarrierArrive), barrier id 0, epoch 1<<32.
        let mut section = vec![0u8, 4, 0];
        write_varint(&mut section, 1u64 << 32).unwrap();
        let buf = v2_with_section(&section, 1);

        let err = read_trace(&mut Cursor::new(buf.clone())).unwrap_err();
        assert!(err.to_string().contains("epoch"), "streaming: {err}");
        let err = read_trace_bytes(&buf).unwrap_err();
        assert!(err.to_string().contains("epoch"), "bytes: {err}");

        let view = RawTraceView::parse(&buf).unwrap(); // envelope is fine
        let err = view.validate().unwrap_err();
        assert!(err.to_string().contains("epoch"), "validator: {err}");

        let (_, anomalies) = read_trace_bytes_salvage(&buf, &Budget::unlimited()).unwrap();
        assert!(
            anomalies.iter().any(|a| matches!(
                a,
                Anomaly::CorruptSection { detail, .. } if detail.contains("epoch")
            )),
            "salvage: {anomalies:?}"
        );

        // The owned serial path (v1 layout) hits the same typed error.
        let mut v1 = Vec::new();
        v1.extend_from_slice(MAGIC);
        write_varint(&mut v1, 1).unwrap();
        write_bytes(&mut v1, &serde_json::to_vec(&Trace::default().meta).unwrap()).unwrap();
        write_varint(&mut v1, 0).unwrap();
        write_varint(&mut v1, 1).unwrap();
        write_varint(&mut v1, 0).unwrap();
        v1.push(0);
        write_varint(&mut v1, 1).unwrap();
        v1.extend_from_slice(&section);
        let err = read_trace(&mut Cursor::new(v1)).unwrap_err();
        assert!(err.to_string().contains("epoch"), "v1 streaming: {err}");
    }

    /// The borrowed view agrees with the owned readers on every format
    /// version, and its `EventRef.raw` windows tile the section exactly.
    #[test]
    fn raw_view_matches_owned_readers_across_versions() {
        let t = sample();
        for version in MIN_VERSION..=VERSION {
            let mut buf = Vec::new();
            write_trace_with_version(&t, version, &mut buf).unwrap();
            assert_eq!(read_trace(&mut Cursor::new(buf.clone())).unwrap(), t, "v{version}");
            assert_eq!(read_trace_bytes(&buf).unwrap(), t, "v{version}");

            let view = RawTraceView::parse(&buf).unwrap();
            assert_eq!(view.version(), version);
            assert_eq!(view.to_trace().unwrap(), t, "v{version}");
            assert_eq!(view.validate().unwrap(), t.num_events() as u64);
            for (raw_thread, stream) in view.threads().iter().zip(&t.threads) {
                assert_eq!(raw_thread.tid, stream.tid);
                assert_eq!(raw_thread.name, stream.name.as_deref());
                let mut tiled = Vec::new();
                for (ev, owned) in raw_thread.events().zip(&stream.events) {
                    let ev = ev.unwrap();
                    assert_eq!(&ev.event(), owned);
                    tiled.extend_from_slice(ev.raw);
                }
                assert_eq!(tiled, raw_thread.section(), "v{version} raw windows must tile");
            }
        }
    }

    /// Trailing bytes after the declared events make the section
    /// inconsistent: strict readers and the validator reject, salvage
    /// keeps the decoded prefix and records the anomaly.
    #[test]
    fn raw_view_rejects_trailing_section_bytes() {
        // One ThreadStart record (2 bytes) plus a stray byte.
        let buf = v2_with_section(&[0, 11, 0], 1);
        assert!(read_trace_bytes(&buf).is_err());
        let view = RawTraceView::parse(&buf).unwrap();
        assert!(view.validate().unwrap_err().to_string().contains("trailing"));
        let (back, anomalies) = read_trace_bytes_salvage(&buf, &Budget::unlimited()).unwrap();
        assert_eq!(back.num_events(), 1);
        assert!(anomalies.iter().any(|a| matches!(a, Anomaly::CorruptSection { .. })));
    }

    /// An event count no section of that byte length could hold is
    /// rejected at parse time, before anything sizes an allocation on it.
    #[test]
    fn declared_count_exceeding_section_capacity_rejected() {
        let buf = v2_with_section(&[0, 11], 5);
        let err = RawTraceView::parse(&buf).unwrap_err();
        assert!(err.to_string().contains("section capacity"), "{err}");
        assert!(read_trace_bytes(&buf).is_err());
    }

    /// A corrupt length claim near the 1 GiB cap over a short input must
    /// fail from the input running out, not commit the huge allocation.
    #[test]
    fn huge_length_claim_is_a_cheap_error() {
        let mut buf = Vec::new();
        buf.extend_from_slice(MAGIC);
        write_varint(&mut buf, VERSION).unwrap();
        write_varint(&mut buf, (1u64 << 30) - 1).unwrap(); // meta length
        buf.extend_from_slice(b"{}");
        let err = read_trace(&mut Cursor::new(buf)).unwrap_err();
        assert!(err.to_string().contains("truncated"), "{err}");
    }
}

//! CRC-32 (IEEE 802.3, reflected polynomial `0xEDB88320`) with a
//! hardware-accelerated fast path.
//!
//! Every checksum in the trace formats — CLSM frame CRCs, the CLTR v3
//! whole-file trailer, journal and checkpoint digests — funnels through
//! [`crc32_update`]. The function dispatches at runtime:
//!
//! * **Hardware path** (x86-64 with `PCLMULQDQ` + SSE4.1): carry-less
//!   multiplication folding over 64-byte blocks, the construction from
//!   Intel's *Fast CRC Computation Using PCLMULQDQ* whitepaper as
//!   popularized by zlib. No lookup table is touched on this path.
//! * **Software path**: the byte-at-a-time 256-entry table, kept as the
//!   portable fallback and as the reference the hardware path is tested
//!   against ([`crc32_update_sw`]).
//!
//! Both paths compute the *same* polynomial, so digests are byte-identical
//! regardless of which path ran — a trace checksummed on a machine with
//! PCLMULQDQ verifies on one without, and vice versa. Note that the SSE4.2
//! `crc32` *instruction* is deliberately not used: it hardwires the
//! Castagnoli polynomial (CRC-32C), which would silently change every
//! digest in the format.
//!
//! Under Miri the hardware path is compiled out (vendor intrinsics are
//! unsupported there); the software path is what Miri exercises.

/// Initial state for an incremental CRC-32 computation.
pub const CRC32_INIT: u32 = !0u32;

/// CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320) of `bytes`.
pub fn crc32(bytes: &[u8]) -> u32 {
    crc32_finish(crc32_update(CRC32_INIT, bytes))
}

/// Finalize an incremental CRC-32 state into the checksum value.
pub fn crc32_finish(state: u32) -> u32 {
    !state
}

/// Fold `bytes` into a running CRC-32 state. Start from [`CRC32_INIT`]
/// and finish with [`crc32_finish`]; feeding the data in any split is
/// equivalent to one [`crc32`] call over the concatenation.
///
/// Dispatches to the PCLMULQDQ folding kernel for buffers of at least 64
/// bytes when the CPU supports it; the result is byte-identical to the
/// table path either way.
pub fn crc32_update(state: u32, bytes: &[u8]) -> u32 {
    #[cfg(all(target_arch = "x86_64", not(miri)))]
    if bytes.len() >= HW_MIN_LEN && hw_available() {
        // The kernel consumes whole 16-byte blocks; the sub-block tail
        // goes through the table. `len >= 64` makes the prefix >= 64.
        let split = bytes.len() & !15;
        // SAFETY: `hw_available` verified pclmulqdq + sse4.1 at runtime,
        // and the prefix is a multiple of 16 bytes, at least 64 long.
        let folded = unsafe { crc32_fold_pclmul(state, &bytes[..split]) };
        return crc32_update_sw(folded, &bytes[split..]);
    }
    crc32_update_sw(state, bytes)
}

/// The portable table-driven update — the reference implementation the
/// hardware path must match bit-for-bit (see the equivalence tests).
pub fn crc32_update_sw(state: u32, bytes: &[u8]) -> u32 {
    const TABLE: [u32; 256] = crc32_table();
    let mut crc = state;
    for &b in bytes {
        crc = (crc >> 8) ^ TABLE[((crc ^ b as u32) & 0xff) as usize];
    }
    crc
}

const fn crc32_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 { 0xEDB8_8320 ^ (c >> 1) } else { c >> 1 };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
}

/// Below this length the dispatch overhead outweighs folding; the table
/// handles short buffers (frame headers, acks) directly.
#[cfg(all(target_arch = "x86_64", not(miri)))]
const HW_MIN_LEN: usize = 64;

/// One-time runtime probe for the folding kernel's ISA requirements,
/// cached in an atomic so steady-state dispatch is a single load.
#[cfg(all(target_arch = "x86_64", not(miri)))]
fn hw_available() -> bool {
    use std::sync::atomic::{AtomicU8, Ordering};
    static PROBE: AtomicU8 = AtomicU8::new(0);
    match PROBE.load(Ordering::Relaxed) {
        1 => true,
        2 => false,
        _ => {
            let ok = is_x86_feature_detected!("pclmulqdq") && is_x86_feature_detected!("sse4.1");
            PROBE.store(if ok { 1 } else { 2 }, Ordering::Relaxed);
            ok
        }
    }
}

/// CRC-32 folding over carry-less multiplication, reflected IEEE
/// polynomial. Port of the construction in Intel's whitepaper (the same
/// constants zlib's `crc32_simd` uses). Takes and returns the raw
/// (pre-inverted) running state, like [`crc32_update_sw`].
///
/// # Safety
///
/// The CPU must support `pclmulqdq` and `sse4.1`, and `buf.len()` must be
/// a multiple of 16 and at least 64.
#[cfg(all(target_arch = "x86_64", not(miri)))]
#[target_feature(enable = "pclmulqdq", enable = "sse4.1")]
unsafe fn crc32_fold_pclmul(state: u32, buf: &[u8]) -> u32 {
    use std::arch::x86_64::*;
    debug_assert!(buf.len() >= 64 && buf.len().is_multiple_of(16));

    // Folding constants for x^T mod P(x) at the distances used below,
    // bit-reflected: k1 = x^(4*128+64), k2 = x^(4*128), k3 = x^(128+64),
    // k4 = x^128, k5 = x^96; poly = P'(x), mu = floor(x^64 / P(x)).
    let k1k2 = _mm_set_epi64x(0x0000_0001_c6e4_1596, 0x0000_0001_5444_2bd4);
    let k3k4 = _mm_set_epi64x(0x0000_0000_ccaa_009e, 0x0000_0001_7519_97d0);
    let k5 = _mm_set_epi64x(0, 0x0000_0001_63cd_6124);
    let poly_mu = _mm_set_epi64x(0x0000_0001_f701_1641, 0x0000_0001_db71_0641);

    let mut ptr = buf.as_ptr();
    let mut len = buf.len();

    // Load the first 64 bytes and inject the incoming state into the
    // lowest dword (reflected domain: low bytes are oldest).
    let mut x1 = _mm_loadu_si128(ptr as *const __m128i);
    let mut x2 = _mm_loadu_si128(ptr.add(16) as *const __m128i);
    let mut x3 = _mm_loadu_si128(ptr.add(32) as *const __m128i);
    let mut x4 = _mm_loadu_si128(ptr.add(48) as *const __m128i);
    x1 = _mm_xor_si128(x1, _mm_cvtsi32_si128(state as i32));
    ptr = ptr.add(64);
    len -= 64;

    // Fold four 128-bit lanes in parallel across each further 64 bytes.
    while len >= 64 {
        let f1 = _mm_clmulepi64_si128(x1, k1k2, 0x00);
        let f2 = _mm_clmulepi64_si128(x2, k1k2, 0x00);
        let f3 = _mm_clmulepi64_si128(x3, k1k2, 0x00);
        let f4 = _mm_clmulepi64_si128(x4, k1k2, 0x00);
        x1 = _mm_clmulepi64_si128(x1, k1k2, 0x11);
        x2 = _mm_clmulepi64_si128(x2, k1k2, 0x11);
        x3 = _mm_clmulepi64_si128(x3, k1k2, 0x11);
        x4 = _mm_clmulepi64_si128(x4, k1k2, 0x11);
        let y1 = _mm_loadu_si128(ptr as *const __m128i);
        let y2 = _mm_loadu_si128(ptr.add(16) as *const __m128i);
        let y3 = _mm_loadu_si128(ptr.add(32) as *const __m128i);
        let y4 = _mm_loadu_si128(ptr.add(48) as *const __m128i);
        x1 = _mm_xor_si128(_mm_xor_si128(x1, f1), y1);
        x2 = _mm_xor_si128(_mm_xor_si128(x2, f2), y2);
        x3 = _mm_xor_si128(_mm_xor_si128(x3, f3), y3);
        x4 = _mm_xor_si128(_mm_xor_si128(x4, f4), y4);
        ptr = ptr.add(64);
        len -= 64;
    }

    // Fold the four lanes down to one.
    let mut f = _mm_clmulepi64_si128(x1, k3k4, 0x00);
    x1 = _mm_clmulepi64_si128(x1, k3k4, 0x11);
    x1 = _mm_xor_si128(_mm_xor_si128(x1, f), x2);
    f = _mm_clmulepi64_si128(x1, k3k4, 0x00);
    x1 = _mm_clmulepi64_si128(x1, k3k4, 0x11);
    x1 = _mm_xor_si128(_mm_xor_si128(x1, f), x3);
    f = _mm_clmulepi64_si128(x1, k3k4, 0x00);
    x1 = _mm_clmulepi64_si128(x1, k3k4, 0x11);
    x1 = _mm_xor_si128(_mm_xor_si128(x1, f), x4);

    // Fold any remaining 16-byte blocks into the single lane.
    while len >= 16 {
        let y = _mm_loadu_si128(ptr as *const __m128i);
        f = _mm_clmulepi64_si128(x1, k3k4, 0x00);
        x1 = _mm_clmulepi64_si128(x1, k3k4, 0x11);
        x1 = _mm_xor_si128(_mm_xor_si128(x1, f), y);
        ptr = ptr.add(16);
        len -= 16;
    }
    debug_assert_eq!(len, 0);

    // Reduce 128 bits -> 64 bits.
    let mask32 = _mm_set_epi32(0, -1, 0, -1);
    f = _mm_clmulepi64_si128(x1, k3k4, 0x10);
    x1 = _mm_srli_si128(x1, 8);
    x1 = _mm_xor_si128(x1, f);

    // Reduce 96 bits -> 64 bits via k5.
    let hi = _mm_srli_si128(x1, 4);
    x1 = _mm_and_si128(x1, mask32);
    x1 = _mm_clmulepi64_si128(x1, k5, 0x00);
    x1 = _mm_xor_si128(x1, hi);

    // Barrett reduction to 32 bits.
    let mut t = _mm_and_si128(x1, mask32);
    t = _mm_clmulepi64_si128(t, poly_mu, 0x10);
    t = _mm_and_si128(t, mask32);
    t = _mm_clmulepi64_si128(t, poly_mu, 0x00);
    x1 = _mm_xor_si128(x1, t);
    _mm_extract_epi32(x1, 1) as u32
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Deterministic byte stream (xorshift) so the equivalence corpus is
    /// reproducible without a random dependency.
    fn pseudo_bytes(len: usize, seed: u64) -> Vec<u8> {
        let mut s = seed | 1;
        (0..len)
            .map(|_| {
                s ^= s << 13;
                s ^= s >> 7;
                s ^= s << 17;
                (s >> 32) as u8
            })
            .collect()
    }

    #[test]
    fn known_vector_both_paths() {
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32_finish(crc32_update_sw(CRC32_INIT, b"123456789")), 0xCBF4_3926);
        // A vector long enough to take the hardware path where present.
        let buf: Vec<u8> = b"123456789".iter().copied().cycle().take(4096).collect();
        assert_eq!(
            crc32_finish(crc32_update(CRC32_INIT, &buf)),
            crc32_finish(crc32_update_sw(CRC32_INIT, &buf)),
        );
    }

    #[test]
    fn dispatch_matches_table_across_lengths_and_alignments() {
        // Sweep every length around the dispatch and folding boundaries
        // (0, 15, 16, 63, 64, 65, 127, 128, ...) and every possible
        // misalignment of the buffer start.
        let base = pseudo_bytes((4 << 10) + 16, 0x5eed);
        for len in (0..=260).chain([511, 512, 513, 1024, 4000, 4096]) {
            for align in 0..16 {
                let slice = &base[align..align + len];
                let expect = crc32_update_sw(CRC32_INIT, slice);
                let got = crc32_update(CRC32_INIT, slice);
                assert_eq!(got, expect, "len {len} align {align}");
            }
        }
    }

    #[test]
    fn dispatch_matches_table_with_nontrivial_state() {
        // The incoming state is injected into the first folded block;
        // exercise states other than CRC32_INIT.
        let buf = pseudo_bytes(1 << 12, 0xabcd);
        for state in [CRC32_INIT, 0, 1, 0xdead_beef, 0x8000_0001] {
            assert_eq!(crc32_update(state, &buf), crc32_update_sw(state, &buf));
        }
    }

    #[test]
    fn incremental_splits_match_one_shot() {
        let buf = pseudo_bytes(3000, 7);
        let whole = crc32(&buf);
        for split in [0, 1, 15, 16, 63, 64, 65, 1000, 2048, 2999, 3000] {
            let mut st = CRC32_INIT;
            st = crc32_update(st, &buf[..split]);
            st = crc32_update(st, &buf[split..]);
            assert_eq!(crc32_finish(st), whole, "split at {split}");
        }
    }

    #[cfg(all(target_arch = "x86_64", not(miri)))]
    #[test]
    fn pclmul_kernel_matches_table_directly() {
        if !hw_available() {
            eprintln!("pclmulqdq unavailable; kernel test skipped");
            return;
        }
        let buf = pseudo_bytes(8 << 10, 0x1234);
        for len in (64..=512).step_by(16).chain([1024, 4096, 8192]) {
            let slice = &buf[..len];
            let expect = crc32_update_sw(CRC32_INIT, slice);
            // SAFETY: feature probed above; len is a multiple of 16 >= 64.
            let got = unsafe { crc32_fold_pclmul(CRC32_INIT, slice) };
            assert_eq!(got, expect, "kernel len {len}");
        }
    }
}

//! Episode views over a trace.
//!
//! An *episode* groups the individual events of one synchronization
//! interaction back into a single record: a lock invocation
//! (acquire/obtain/release triple), a barrier crossing, a condition-variable
//! wait, a join. Both the classical "TYPE 2" statistics and the critical-path
//! walk consume these views rather than raw events.

use crate::event::{EventKind, Ts};
use crate::ids::{ObjId, ThreadId};
use crate::trace::{ThreadStream, Trace};
use rayon::prelude::*;

/// One lock invocation by one thread.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LockEpisode {
    /// The invoking thread.
    pub tid: ThreadId,
    /// The lock.
    pub lock: ObjId,
    /// When the thread requested the lock.
    pub acquire: Ts,
    /// When the thread obtained the lock (start of the critical section).
    pub obtain: Ts,
    /// When the thread released the lock (end of the critical section).
    pub release: Ts,
    /// Whether the invocation blocked (the paper's contended invocation).
    pub contended: bool,
}

impl LockEpisode {
    /// Time spent waiting for the lock.
    pub fn wait_time(&self) -> Ts {
        self.obtain.saturating_sub(self.acquire)
    }

    /// Time spent holding the lock (the critical-section size).
    pub fn hold_time(&self) -> Ts {
        self.release.saturating_sub(self.obtain)
    }
}

/// One reader-writer lock invocation by one thread.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RwEpisode {
    /// The invoking thread.
    pub tid: ThreadId,
    /// The rwlock.
    pub lock: ObjId,
    /// True for a write (exclusive) hold.
    pub write: bool,
    /// When the thread requested the lock.
    pub acquire: Ts,
    /// When the hold began.
    pub obtain: Ts,
    /// When the hold ended.
    pub release: Ts,
    /// Whether the invocation blocked.
    pub contended: bool,
}

impl RwEpisode {
    /// Time spent waiting for the rwlock.
    pub fn wait_time(&self) -> Ts {
        self.obtain.saturating_sub(self.acquire)
    }

    /// Time spent holding the rwlock.
    pub fn hold_time(&self) -> Ts {
        self.release.saturating_sub(self.obtain)
    }
}

/// One barrier crossing by one thread.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BarrierEpisode {
    /// The crossing thread.
    pub tid: ThreadId,
    /// The barrier.
    pub barrier: ObjId,
    /// Barrier generation.
    pub epoch: u32,
    /// Arrival time.
    pub arrive: Ts,
    /// Departure time (when the last participant arrived).
    pub depart: Ts,
}

impl BarrierEpisode {
    /// Time spent waiting at the barrier.
    pub fn wait_time(&self) -> Ts {
        self.depart.saturating_sub(self.arrive)
    }
}

/// One condition-variable wait by one thread.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CondWaitEpisode {
    /// The waiting thread.
    pub tid: ThreadId,
    /// The condition variable.
    pub cv: ObjId,
    /// When the wait began.
    pub wait_begin: Ts,
    /// When the thread was woken.
    pub wakeup: Ts,
    /// Sequence number of the signal that woke it ([`crate::SEQ_UNKNOWN`]
    /// when the producer could not tell).
    pub signal_seq: u64,
}

impl CondWaitEpisode {
    /// Time spent waiting on the condition variable.
    pub fn wait_time(&self) -> Ts {
        self.wakeup.saturating_sub(self.wait_begin)
    }
}

/// One signal or broadcast on a condition variable.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SignalRecord {
    /// The signalling thread.
    pub tid: ThreadId,
    /// The condition variable.
    pub cv: ObjId,
    /// When the signal was issued.
    pub ts: Ts,
    /// Per-condvar sequence number.
    pub signal_seq: u64,
    /// True for broadcast, false for signal.
    pub broadcast: bool,
}

/// One join of a child thread by a parent.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct JoinEpisode {
    /// The joining (parent) thread.
    pub tid: ThreadId,
    /// The joined (child) thread.
    pub child: ThreadId,
    /// When the join was issued.
    pub begin: Ts,
    /// When the join returned.
    pub end: Ts,
}

/// All lock episodes of a trace, in per-thread event order.
///
/// An episode is emitted for every completed acquire/obtain/release triple.
/// Incomplete trailing invocations (possible in truncated traces) are
/// dropped.
pub fn lock_episodes(trace: &Trace) -> Vec<LockEpisode> {
    // Episodes are per-thread state machines over per-thread streams, so
    // the threads extract independently; concatenating in thread order
    // reproduces the serial output exactly.
    concat(trace.threads.par_iter().map(lock_episodes_of).collect())
}

fn lock_episodes_of(stream: &ThreadStream) -> Vec<LockEpisode> {
    let mut out = Vec::new();
    // lock -> (acquire_ts, contended, obtain_ts)
    let mut pending: Vec<(ObjId, Ts, bool, Option<Ts>)> = Vec::new();
    for ev in &stream.events {
        match ev.kind {
            EventKind::LockAcquire { lock } => pending.push((lock, ev.ts, false, None)),
            EventKind::LockContended { lock } => {
                if let Some(p) = pending.iter_mut().rev().find(|p| p.0 == lock) {
                    p.2 = true;
                }
            }
            EventKind::LockObtain { lock } => {
                if let Some(p) = pending.iter_mut().rev().find(|p| p.0 == lock) {
                    p.3 = Some(ev.ts);
                }
            }
            EventKind::LockRelease { lock } => {
                if let Some(pos) = pending.iter().rposition(|p| p.0 == lock) {
                    let (l, acq, contended, obtain) = pending.remove(pos);
                    if let Some(obt) = obtain {
                        out.push(LockEpisode {
                            tid: stream.tid,
                            lock: l,
                            acquire: acq,
                            obtain: obt,
                            release: ev.ts,
                            contended,
                        });
                    }
                }
            }
            _ => {}
        }
    }
    out
}

/// All reader-writer lock episodes of a trace.
pub fn rw_episodes(trace: &Trace) -> Vec<RwEpisode> {
    concat(trace.threads.par_iter().map(rw_episodes_of).collect())
}

fn rw_episodes_of(stream: &ThreadStream) -> Vec<RwEpisode> {
    let mut out = Vec::new();
    // rwlock -> (acquire_ts, write, contended, obtain_ts)
    let mut pending: Vec<(ObjId, Ts, bool, bool, Option<Ts>)> = Vec::new();
    for ev in &stream.events {
        match ev.kind {
            EventKind::RwAcquire { lock, write } => {
                pending.push((lock, ev.ts, write, false, None));
            }
            EventKind::RwContended { lock, .. } => {
                if let Some(p) = pending.iter_mut().rev().find(|p| p.0 == lock) {
                    p.3 = true;
                }
            }
            EventKind::RwObtain { lock, .. } => {
                if let Some(p) = pending.iter_mut().rev().find(|p| p.0 == lock) {
                    p.4 = Some(ev.ts);
                }
            }
            EventKind::RwRelease { lock, .. } => {
                if let Some(pos) = pending.iter().rposition(|p| p.0 == lock) {
                    let (l, acquire, write, contended, obtain) = pending.remove(pos);
                    if let Some(obtain) = obtain {
                        out.push(RwEpisode {
                            tid: stream.tid,
                            lock: l,
                            write,
                            acquire,
                            obtain,
                            release: ev.ts,
                            contended,
                        });
                    }
                }
            }
            _ => {}
        }
    }
    out
}

fn concat<T>(parts: Vec<Vec<T>>) -> Vec<T> {
    let total = parts.iter().map(Vec::len).sum();
    let mut out = Vec::with_capacity(total);
    for part in parts {
        out.extend(part);
    }
    out
}

/// All barrier episodes of a trace.
pub fn barrier_episodes(trace: &Trace) -> Vec<BarrierEpisode> {
    let mut out = Vec::new();
    for stream in &trace.threads {
        let mut pending: Option<(ObjId, u32, Ts)> = None;
        for ev in &stream.events {
            match ev.kind {
                EventKind::BarrierArrive { barrier, epoch } => {
                    pending = Some((barrier, epoch, ev.ts));
                }
                EventKind::BarrierDepart { barrier, epoch } => {
                    if let Some((b, e, arrive)) = pending.take() {
                        if b == barrier && e == epoch {
                            out.push(BarrierEpisode {
                                tid: stream.tid,
                                barrier,
                                epoch,
                                arrive,
                                depart: ev.ts,
                            });
                        }
                    }
                }
                _ => {}
            }
        }
    }
    out
}

/// All condition-variable waits of a trace.
pub fn cond_wait_episodes(trace: &Trace) -> Vec<CondWaitEpisode> {
    let mut out = Vec::new();
    for stream in &trace.threads {
        let mut pending: Option<(ObjId, Ts)> = None;
        for ev in &stream.events {
            match ev.kind {
                EventKind::CondWaitBegin { cv } => pending = Some((cv, ev.ts)),
                EventKind::CondWakeup { cv, signal_seq } => {
                    if let Some((c, begin)) = pending.take() {
                        if c == cv {
                            out.push(CondWaitEpisode {
                                tid: stream.tid,
                                cv,
                                wait_begin: begin,
                                wakeup: ev.ts,
                                signal_seq,
                            });
                        }
                    }
                }
                _ => {}
            }
        }
    }
    out
}

/// All signals/broadcasts of a trace.
pub fn signal_records(trace: &Trace) -> Vec<SignalRecord> {
    let mut out = Vec::new();
    for stream in &trace.threads {
        for ev in &stream.events {
            match ev.kind {
                EventKind::CondSignal { cv, signal_seq } => out.push(SignalRecord {
                    tid: stream.tid,
                    cv,
                    ts: ev.ts,
                    signal_seq,
                    broadcast: false,
                }),
                EventKind::CondBroadcast { cv, signal_seq } => out.push(SignalRecord {
                    tid: stream.tid,
                    cv,
                    ts: ev.ts,
                    signal_seq,
                    broadcast: true,
                }),
                _ => {}
            }
        }
    }
    out
}

/// All join episodes of a trace.
pub fn join_episodes(trace: &Trace) -> Vec<JoinEpisode> {
    let mut out = Vec::new();
    for stream in &trace.threads {
        let mut pending: Option<(ThreadId, Ts)> = None;
        for ev in &stream.events {
            match ev.kind {
                EventKind::JoinBegin { child } => pending = Some((child, ev.ts)),
                EventKind::JoinEnd { child } => {
                    if let Some((c, begin)) = pending.take() {
                        if c == child {
                            out.push(JoinEpisode { tid: stream.tid, child, begin, end: ev.ts });
                        }
                    }
                }
                _ => {}
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::Event;
    use crate::ids::ObjKind;
    use crate::trace::{ThreadStream, Trace, TraceMeta};

    fn sample() -> Trace {
        let mut t = Trace::new(TraceMeta::named("episodes"));
        let l = t.register_object(ObjKind::Lock, "L");
        let l2 = t.register_object(ObjKind::Lock, "M");
        let b = t.register_object(ObjKind::Barrier, "B");
        let cv = t.register_object(ObjKind::Condvar, "CV");
        let mk = Event::new;
        let mut s0 = ThreadStream::new(ThreadId(0));
        s0.events = vec![
            mk(0, EventKind::ThreadStart),
            mk(0, EventKind::ThreadCreate { child: ThreadId(1) }),
            // nested locks: L outer, M inner
            mk(1, EventKind::LockAcquire { lock: l }),
            mk(1, EventKind::LockObtain { lock: l }),
            mk(2, EventKind::LockAcquire { lock: l2 }),
            mk(2, EventKind::LockObtain { lock: l2 }),
            mk(3, EventKind::LockRelease { lock: l2 }),
            mk(4, EventKind::LockRelease { lock: l }),
            mk(5, EventKind::BarrierArrive { barrier: b, epoch: 0 }),
            mk(7, EventKind::BarrierDepart { barrier: b, epoch: 0 }),
            mk(8, EventKind::CondSignal { cv, signal_seq: 1 }),
            mk(9, EventKind::JoinBegin { child: ThreadId(1) }),
            mk(12, EventKind::JoinEnd { child: ThreadId(1) }),
            mk(13, EventKind::ThreadExit),
        ];
        let mut s1 = ThreadStream::new(ThreadId(1));
        s1.events = vec![
            mk(0, EventKind::ThreadStart),
            mk(1, EventKind::LockAcquire { lock: l }),
            mk(1, EventKind::LockContended { lock: l }),
            mk(4, EventKind::LockObtain { lock: l }),
            mk(5, EventKind::LockRelease { lock: l }),
            mk(5, EventKind::BarrierArrive { barrier: b, epoch: 0 }),
            mk(7, EventKind::BarrierDepart { barrier: b, epoch: 0 }),
            mk(7, EventKind::CondWaitBegin { cv }),
            mk(8, EventKind::CondWakeup { cv, signal_seq: 1 }),
            mk(12, EventKind::ThreadExit),
        ];
        t.push_thread(s0);
        t.push_thread(s1);
        t.validate().unwrap();
        t
    }

    #[test]
    fn lock_episodes_extracted() {
        let t = sample();
        let eps = lock_episodes(&t);
        assert_eq!(eps.len(), 3);
        let outer = eps.iter().find(|e| e.tid == ThreadId(0) && e.lock == ObjId(0)).unwrap();
        assert_eq!(outer.obtain, 1);
        assert_eq!(outer.release, 4);
        assert_eq!(outer.hold_time(), 3);
        assert_eq!(outer.wait_time(), 0);
        assert!(!outer.contended);

        let inner = eps.iter().find(|e| e.lock == ObjId(1)).unwrap();
        assert_eq!(inner.hold_time(), 1);

        let blocked = eps.iter().find(|e| e.tid == ThreadId(1)).unwrap();
        assert!(blocked.contended);
        assert_eq!(blocked.wait_time(), 3);
        assert_eq!(blocked.hold_time(), 1);
    }

    #[test]
    fn barrier_episodes_extracted() {
        let t = sample();
        let eps = barrier_episodes(&t);
        assert_eq!(eps.len(), 2);
        let e0 = eps.iter().find(|e| e.tid == ThreadId(0)).unwrap();
        assert_eq!(e0.epoch, 0);
        assert_eq!(e0.wait_time(), 2);
    }

    #[test]
    fn cond_episodes_extracted() {
        let t = sample();
        let waits = cond_wait_episodes(&t);
        assert_eq!(waits.len(), 1);
        assert_eq!(waits[0].tid, ThreadId(1));
        assert_eq!(waits[0].wait_time(), 1);
        assert_eq!(waits[0].signal_seq, 1);

        let sigs = signal_records(&t);
        assert_eq!(sigs.len(), 1);
        assert_eq!(sigs[0].tid, ThreadId(0));
        assert!(!sigs[0].broadcast);
    }

    #[test]
    fn join_episodes_extracted() {
        let t = sample();
        let joins = join_episodes(&t);
        assert_eq!(joins.len(), 1);
        assert_eq!(joins[0].child, ThreadId(1));
        assert_eq!(joins[0].begin, 9);
        assert_eq!(joins[0].end, 12);
    }

    #[test]
    fn truncated_invocation_dropped() {
        let mut t = sample();
        // Strip the release of the inner lock; its episode must disappear
        // while the outer one survives.
        let s0 = &mut t.threads[0];
        s0.events.retain(|e| e.kind != EventKind::LockRelease { lock: ObjId(1) });
        let eps = lock_episodes(&t);
        assert_eq!(eps.iter().filter(|e| e.lock == ObjId(1)).count(), 0);
        assert_eq!(eps.iter().filter(|e| e.lock == ObjId(0)).count(), 2);
    }
}

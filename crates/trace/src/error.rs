//! Error types for trace construction, validation and (de)serialization.

use crate::ids::{ObjId, ThreadId};
use std::fmt;
use std::io;

/// Any error produced by the `critlock-trace` crate.
#[derive(Debug)]
pub enum TraceError {
    /// The per-thread event stream violates the event protocol.
    Protocol {
        /// Offending thread.
        tid: ThreadId,
        /// Index of the offending event within the thread stream.
        index: usize,
        /// Human-readable description of the violation.
        message: String,
    },
    /// Timestamps within one thread stream are not non-decreasing.
    UnsortedTimestamps {
        /// Offending thread.
        tid: ThreadId,
        /// Index of the event whose timestamp goes backwards.
        index: usize,
    },
    /// An event refers to an object that is not registered in the name
    /// table, or registered with the wrong kind.
    UnknownObject {
        /// Offending thread.
        tid: ThreadId,
        /// Offending object id.
        obj: ObjId,
    },
    /// An event refers to a thread id outside the trace.
    UnknownThread {
        /// Offending thread issuing the event.
        tid: ThreadId,
        /// The referenced (missing) thread.
        referenced: ThreadId,
    },
    /// A serialized trace is malformed.
    Decode(String),
    /// An underlying I/O failure.
    Io(io::Error),
    /// JSON (de)serialization failure.
    Json(serde_json::Error),
}

impl fmt::Display for TraceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceError::Protocol { tid, index, message } => {
                write!(f, "event protocol violation at {tid}[{index}]: {message}")
            }
            TraceError::UnsortedTimestamps { tid, index } => {
                write!(f, "timestamps not sorted at {tid}[{index}]")
            }
            TraceError::UnknownObject { tid, obj } => {
                write!(f, "{tid} references unregistered object {obj}")
            }
            TraceError::UnknownThread { tid, referenced } => {
                write!(f, "{tid} references unknown thread {referenced}")
            }
            TraceError::Decode(m) => write!(f, "malformed trace: {m}"),
            TraceError::Io(e) => write!(f, "I/O error: {e}"),
            TraceError::Json(e) => write!(f, "JSON error: {e}"),
        }
    }
}

impl std::error::Error for TraceError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            TraceError::Io(e) => Some(e),
            TraceError::Json(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for TraceError {
    fn from(e: io::Error) -> Self {
        TraceError::Io(e)
    }
}

impl From<serde_json::Error> for TraceError {
    fn from(e: serde_json::Error) -> Self {
        TraceError::Json(e)
    }
}

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, TraceError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        let e = TraceError::Protocol {
            tid: ThreadId(1),
            index: 5,
            message: "release without obtain".into(),
        };
        assert!(e.to_string().contains("T1[5]"));
        assert!(e.to_string().contains("release without obtain"));

        let e = TraceError::UnsortedTimestamps { tid: ThreadId(0), index: 2 };
        assert!(e.to_string().contains("not sorted"));

        let e = TraceError::UnknownObject { tid: ThreadId(2), obj: ObjId(9) };
        assert!(e.to_string().contains("obj9"));

        let e = TraceError::UnknownThread { tid: ThreadId(0), referenced: ThreadId(7) };
        assert!(e.to_string().contains("T7"));

        let e = TraceError::Decode("bad magic".into());
        assert!(e.to_string().contains("bad magic"));
    }

    #[test]
    fn io_conversion() {
        let ioe = io::Error::new(io::ErrorKind::UnexpectedEof, "eof");
        let e: TraceError = ioe.into();
        assert!(matches!(e, TraceError::Io(_)));
        assert!(std::error::Error::source(&e).is_some());
    }
}

//! Synchronization event records.
//!
//! This module defines the event protocol produced by both the real-thread
//! instrumentation (`critlock-instrument`) and the deterministic simulator
//! (`critlock-sim`). It mirrors the MAGIC() records of the paper's
//! Pthreads-interposition tool (Chen & Stenström, SC'12, Fig. 4):
//!
//! * a lock invocation is the sequence *acquire* → (*contended*)? →
//!   *obtain* → ... → *release*; the invocation is contended iff the
//!   `LockContended` record is present;
//! * a barrier episode is *arrive* → *depart*, tagged with the barrier
//!   epoch so episodes can be matched across threads;
//! * a condition-variable wait is *wait-begin* → *wakeup*, matched to the
//!   *signal*/*broadcast* that released it via a per-condvar sequence
//!   number;
//! * thread lifecycle edges (*create*/*start*, *exit*/*join*) close the
//!   dependence graph needed by the critical-path walk.

use crate::ids::{ObjId, ThreadId};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Timestamp in nanoseconds. Virtual time for simulated executions, a
/// monotonic real clock for instrumented executions; the analysis only
/// relies on the total order and on differences.
pub type Ts = u64;

/// A sentinel sequence number meaning "the matching signal is unknown";
/// the analyzer then falls back to timestamp-based matching.
pub const SEQ_UNKNOWN: u64 = u64::MAX;

/// One synchronization event, without its timestamp/thread context.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum EventKind {
    /// The thread requested a lock (paper: "acquire the lock").
    LockAcquire {
        /// The lock being requested.
        lock: ObjId,
    },
    /// The non-blocking attempt failed; the thread is about to block
    /// (paper: "lock contention").
    LockContended {
        /// The lock being requested.
        lock: ObjId,
    },
    /// The thread now holds the lock (paper: "obtain the lock").
    LockObtain {
        /// The lock now held.
        lock: ObjId,
    },
    /// The thread released the lock (paper: "release the lock").
    LockRelease {
        /// The lock released.
        lock: ObjId,
    },
    /// The thread arrived at a barrier (paper: "reach the barrier").
    BarrierArrive {
        /// The barrier.
        barrier: ObjId,
        /// Barrier generation; all threads of one episode share it.
        epoch: u32,
    },
    /// The thread passed the barrier (all participants arrived).
    BarrierDepart {
        /// The barrier.
        barrier: ObjId,
        /// Barrier generation; matches the corresponding arrival.
        epoch: u32,
    },
    /// The thread started waiting on a condition variable. The guarding
    /// mutex has conceptually been released at this point.
    CondWaitBegin {
        /// The condition variable.
        cv: ObjId,
    },
    /// The thread woke from a condition-variable wait (before it
    /// re-acquires the guarding mutex, which is traced separately).
    CondWakeup {
        /// The condition variable.
        cv: ObjId,
        /// Sequence number of the signal that woke this thread, or
        /// [`SEQ_UNKNOWN`].
        signal_seq: u64,
    },
    /// The thread signalled a condition variable (wakes one waiter).
    CondSignal {
        /// The condition variable.
        cv: ObjId,
        /// Per-condvar monotonically increasing sequence number.
        signal_seq: u64,
    },
    /// The thread broadcast a condition variable (wakes all waiters).
    CondBroadcast {
        /// The condition variable.
        cv: ObjId,
        /// Per-condvar monotonically increasing sequence number.
        signal_seq: u64,
    },
    /// The thread created a child thread.
    ThreadCreate {
        /// Trace id assigned to the child.
        child: ThreadId,
    },
    /// First event of every thread: it began running.
    ThreadStart,
    /// Last event of every thread: it finished.
    ThreadExit,
    /// The thread called join on a child (and may block).
    JoinBegin {
        /// The thread being joined.
        child: ThreadId,
    },
    /// The join returned; the child has exited.
    JoinEnd {
        /// The thread that was joined.
        child: ThreadId,
    },
    /// Free-form phase marker; ignored by the critical-path walk but
    /// usable to restrict analysis to a window.
    Marker {
        /// Registered marker object.
        id: ObjId,
    },
    /// The thread requested a reader-writer lock.
    RwAcquire {
        /// The rwlock being requested.
        lock: ObjId,
        /// True for a write (exclusive) request.
        write: bool,
    },
    /// The non-blocking rw attempt failed; the thread is about to block.
    RwContended {
        /// The rwlock being requested.
        lock: ObjId,
        /// True for a write (exclusive) request.
        write: bool,
    },
    /// The thread now holds the rwlock in the given mode.
    RwObtain {
        /// The rwlock now held.
        lock: ObjId,
        /// True for a write (exclusive) hold.
        write: bool,
    },
    /// The thread released its rwlock hold.
    RwRelease {
        /// The rwlock released.
        lock: ObjId,
        /// True if the released hold was exclusive.
        write: bool,
    },
}

impl EventKind {
    /// The synchronization object this event refers to, if any.
    pub fn obj(&self) -> Option<ObjId> {
        match *self {
            EventKind::LockAcquire { lock }
            | EventKind::LockContended { lock }
            | EventKind::LockObtain { lock }
            | EventKind::LockRelease { lock } => Some(lock),
            EventKind::BarrierArrive { barrier, .. } | EventKind::BarrierDepart { barrier, .. } => {
                Some(barrier)
            }
            EventKind::CondWaitBegin { cv }
            | EventKind::CondWakeup { cv, .. }
            | EventKind::CondSignal { cv, .. }
            | EventKind::CondBroadcast { cv, .. } => Some(cv),
            EventKind::Marker { id } => Some(id),
            EventKind::RwAcquire { lock, .. }
            | EventKind::RwContended { lock, .. }
            | EventKind::RwObtain { lock, .. }
            | EventKind::RwRelease { lock, .. } => Some(lock),
            EventKind::ThreadCreate { .. }
            | EventKind::ThreadStart
            | EventKind::ThreadExit
            | EventKind::JoinBegin { .. }
            | EventKind::JoinEnd { .. } => None,
        }
    }

    /// The other thread this event refers to, if any.
    pub fn peer_thread(&self) -> Option<ThreadId> {
        match *self {
            EventKind::ThreadCreate { child }
            | EventKind::JoinBegin { child }
            | EventKind::JoinEnd { child } => Some(child),
            _ => None,
        }
    }

    /// Whether this event marks the *start of a potential blocking
    /// interval* for the issuing thread (the thread may be descheduled
    /// until a matching completion event).
    pub fn begins_blocking(&self) -> bool {
        matches!(
            self,
            EventKind::LockContended { .. }
                | EventKind::RwContended { .. }
                | EventKind::BarrierArrive { .. }
                | EventKind::CondWaitBegin { .. }
                | EventKind::JoinBegin { .. }
        )
    }

    /// Whether this event marks the *end of a blocking interval* (the
    /// thread resumed running at this timestamp).
    pub fn ends_blocking(&self) -> bool {
        matches!(
            self,
            EventKind::LockObtain { .. }
                | EventKind::RwObtain { .. }
                | EventKind::BarrierDepart { .. }
                | EventKind::CondWakeup { .. }
                | EventKind::JoinEnd { .. }
                | EventKind::ThreadStart
        )
    }

    /// Short mnemonic used by the text renderers.
    pub fn mnemonic(&self) -> &'static str {
        match self {
            EventKind::LockAcquire { .. } => "acq",
            EventKind::LockContended { .. } => "cont",
            EventKind::LockObtain { .. } => "obt",
            EventKind::LockRelease { .. } => "rel",
            EventKind::BarrierArrive { .. } => "barr-arr",
            EventKind::BarrierDepart { .. } => "barr-dep",
            EventKind::CondWaitBegin { .. } => "cv-wait",
            EventKind::CondWakeup { .. } => "cv-wake",
            EventKind::CondSignal { .. } => "cv-sig",
            EventKind::CondBroadcast { .. } => "cv-bcast",
            EventKind::ThreadCreate { .. } => "create",
            EventKind::ThreadStart => "start",
            EventKind::ThreadExit => "exit",
            EventKind::JoinBegin { .. } => "join-beg",
            EventKind::JoinEnd { .. } => "join-end",
            EventKind::Marker { .. } => "marker",
            EventKind::RwAcquire { write: true, .. } => "rw-acq-w",
            EventKind::RwAcquire { write: false, .. } => "rw-acq-r",
            EventKind::RwContended { .. } => "rw-cont",
            EventKind::RwObtain { write: true, .. } => "rw-obt-w",
            EventKind::RwObtain { write: false, .. } => "rw-obt-r",
            EventKind::RwRelease { .. } => "rw-rel",
        }
    }
}

/// A timestamped synchronization event as stored in a per-thread stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Event {
    /// Timestamp in (virtual or real) nanoseconds.
    pub ts: Ts,
    /// What happened.
    pub kind: EventKind,
}

impl Event {
    /// Convenience constructor.
    pub fn new(ts: Ts, kind: EventKind) -> Self {
        Event { ts, kind }
    }
}

impl fmt::Display for Event {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "@{} {}", self.ts, self.kind.mnemonic())?;
        if let Some(o) = self.kind.obj() {
            write!(f, " {o}")?;
        }
        if let Some(t) = self.kind.peer_thread() {
            write!(f, " {t}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn obj_extraction() {
        let l = ObjId(1);
        assert_eq!(EventKind::LockAcquire { lock: l }.obj(), Some(l));
        assert_eq!(EventKind::LockRelease { lock: l }.obj(), Some(l));
        assert_eq!(EventKind::BarrierArrive { barrier: l, epoch: 0 }.obj(), Some(l));
        assert_eq!(EventKind::CondSignal { cv: l, signal_seq: 0 }.obj(), Some(l));
        assert_eq!(EventKind::ThreadStart.obj(), None);
        assert_eq!(EventKind::ThreadCreate { child: ThreadId(2) }.obj(), None);
    }

    #[test]
    fn peer_thread_extraction() {
        let c = ThreadId(4);
        assert_eq!(EventKind::ThreadCreate { child: c }.peer_thread(), Some(c));
        assert_eq!(EventKind::JoinBegin { child: c }.peer_thread(), Some(c));
        assert_eq!(EventKind::JoinEnd { child: c }.peer_thread(), Some(c));
        assert_eq!(EventKind::ThreadExit.peer_thread(), None);
        assert_eq!(EventKind::LockAcquire { lock: ObjId(0) }.peer_thread(), None);
    }

    #[test]
    fn blocking_classification() {
        let l = ObjId(0);
        assert!(EventKind::LockContended { lock: l }.begins_blocking());
        assert!(EventKind::BarrierArrive { barrier: l, epoch: 1 }.begins_blocking());
        assert!(EventKind::CondWaitBegin { cv: l }.begins_blocking());
        assert!(EventKind::JoinBegin { child: ThreadId(1) }.begins_blocking());
        assert!(!EventKind::LockAcquire { lock: l }.begins_blocking());
        assert!(!EventKind::LockObtain { lock: l }.begins_blocking());

        assert!(EventKind::LockObtain { lock: l }.ends_blocking());
        assert!(EventKind::BarrierDepart { barrier: l, epoch: 1 }.ends_blocking());
        assert!(EventKind::CondWakeup { cv: l, signal_seq: 0 }.ends_blocking());
        assert!(EventKind::JoinEnd { child: ThreadId(1) }.ends_blocking());
        assert!(EventKind::ThreadStart.ends_blocking());
        assert!(!EventKind::LockRelease { lock: l }.ends_blocking());
    }

    #[test]
    fn display_contains_mnemonic() {
        let e = Event::new(42, EventKind::LockObtain { lock: ObjId(3) });
        let s = e.to_string();
        assert!(s.contains("@42"));
        assert!(s.contains("obt"));
        assert!(s.contains("obj3"));
    }
}

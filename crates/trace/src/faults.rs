//! Deterministic, script-driven fault plans for the streaming transport.
//!
//! A [`FaultPlan`] describes *where in the byte stream* a transport fault
//! fires and *what it does* — sever the connection, tear or corrupt a
//! frame, stall, or drip bytes slow-loris style. Plans are seedless: the
//! same plan applied to the same frame stream produces the same faulty
//! byte sequence every time, which is what makes a reported failure
//! reproducible from the command line (`critlock push --fault-plan ...`).
//!
//! This module is pure data — parsing, rendering and the built-in plan
//! catalog. The wrapper that actually applies a plan to a socket lives in
//! the collector crate (`critlock_collector::faults`), next to the
//! transport it wraps.
//!
//! ## Plan syntax
//!
//! A plan is a `;`-separated list of actions, each anchored at an
//! absolute byte offset of the written stream:
//!
//! | action             | meaning                                           |
//! |--------------------|---------------------------------------------------|
//! | `cut@N`            | sever the connection once N bytes have been sent  |
//! | `trunc@N+M`        | at offset N, silently discard M bytes, then sever |
//! | `flip@N`           | XOR the byte at offset N with 0x40                |
//! | `stall@N:MS`       | at offset N, stop writing for MS milliseconds     |
//! | `loris@N:CHUNK:MS` | from offset N on, write CHUNK bytes every MS ms   |
//!
//! Example: `cut@4096;flip@9000` severs the first connection after 4 KiB
//! and, once the producer has reconnected and streamed past byte 9000
//! (cumulative), corrupts one frame.

use std::fmt;
use std::str::FromStr;

/// The bit mask `flip@N` applies to the targeted byte.
pub const FLIP_MASK: u8 = 0x40;

/// One transport fault, anchored at an absolute byte offset of the
/// written stream. Offsets are cumulative across reconnects, and every
/// action fires at most once per plan execution (except
/// [`FaultAction::SlowLoris`], which stays in effect once triggered).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultAction {
    /// Sever the connection once `at` bytes have been written.
    Cut {
        /// Byte offset at which the connection is severed.
        at: u64,
    },
    /// At offset `at`, silently discard `drop` bytes (acknowledging them
    /// to the writer as sent), then sever — the receiving end observes a
    /// torn frame.
    Truncate {
        /// Byte offset at which truncation starts.
        at: u64,
        /// Number of bytes discarded before the connection is severed.
        drop: u64,
    },
    /// XOR the byte at offset `at` with [`FLIP_MASK`] — a single-frame
    /// corruption the per-frame CRC must catch.
    BitFlip {
        /// Byte offset of the corrupted byte.
        at: u64,
    },
    /// At offset `at`, stop writing for `millis` milliseconds — an
    /// apparently-alive but silent producer, the case idle read timeouts
    /// exist for.
    Stall {
        /// Byte offset at which the stall begins.
        at: u64,
        /// Stall duration in milliseconds.
        millis: u64,
    },
    /// From offset `at` on, write at most `chunk` bytes per syscall and
    /// sleep `millis` milliseconds between chunks — a slow-loris
    /// producer.
    SlowLoris {
        /// Byte offset at which pacing starts.
        at: u64,
        /// Maximum bytes per write once pacing is active.
        chunk: u64,
        /// Sleep between chunks in milliseconds.
        millis: u64,
    },
}

impl FaultAction {
    /// The byte offset at which this action triggers.
    pub fn offset(&self) -> u64 {
        match *self {
            FaultAction::Cut { at }
            | FaultAction::Truncate { at, .. }
            | FaultAction::BitFlip { at }
            | FaultAction::Stall { at, .. }
            | FaultAction::SlowLoris { at, .. } => at,
        }
    }
}

impl fmt::Display for FaultAction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            FaultAction::Cut { at } => write!(f, "cut@{at}"),
            FaultAction::Truncate { at, drop } => write!(f, "trunc@{at}+{drop}"),
            FaultAction::BitFlip { at } => write!(f, "flip@{at}"),
            FaultAction::Stall { at, millis } => write!(f, "stall@{at}:{millis}"),
            FaultAction::SlowLoris { at, chunk, millis } => {
                write!(f, "loris@{at}:{chunk}:{millis}")
            }
        }
    }
}

/// A named, ordered list of [`FaultAction`]s.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultPlan {
    /// Human-readable plan name (a built-in name, or `"custom"` for
    /// parsed specs).
    pub name: String,
    /// The actions, sorted by trigger offset.
    pub actions: Vec<FaultAction>,
}

impl FaultPlan {
    /// A plan from explicit actions; actions are sorted by offset.
    pub fn new(name: impl Into<String>, mut actions: Vec<FaultAction>) -> Self {
        actions.sort_by_key(|a| a.offset());
        FaultPlan { name: name.into(), actions }
    }

    /// Resolve a built-in plan by name. The catalog covers one plan per
    /// fault class the collector must tolerate:
    ///
    /// * `disconnect` — two clean connection cuts;
    /// * `truncation` — a torn frame (partial write, then cut);
    /// * `bit-flip` — one corrupted byte mid-stream;
    /// * `stall` — a producer that goes silent for 900 ms;
    /// * `slow-loris` — a producer dripping 13-byte writes.
    pub fn builtin(name: &str) -> Option<FaultPlan> {
        let actions: Vec<FaultAction> = match name {
            "disconnect" => vec![FaultAction::Cut { at: 900 }, FaultAction::Cut { at: 2500 }],
            "truncation" => vec![FaultAction::Truncate { at: 1100, drop: 9 }],
            "bit-flip" => vec![FaultAction::BitFlip { at: 1200 }],
            "stall" => vec![FaultAction::Stall { at: 800, millis: 900 }],
            "slow-loris" => vec![FaultAction::SlowLoris { at: 0, chunk: 13, millis: 1 }],
            _ => return None,
        };
        Some(FaultPlan::new(name, actions))
    }

    /// The names of every built-in plan, in matrix-test order.
    pub fn builtin_names() -> &'static [&'static str] {
        &["disconnect", "truncation", "bit-flip", "stall", "slow-loris"]
    }

    /// Every built-in plan (the fault matrix).
    pub fn all_builtin() -> Vec<FaultPlan> {
        Self::builtin_names().iter().filter_map(|n| Self::builtin(n)).collect()
    }

    /// Resolve a CLI argument: a built-in name, or a parsed action spec.
    pub fn resolve(spec: &str) -> Result<FaultPlan, String> {
        if let Some(plan) = Self::builtin(spec) {
            return Ok(plan);
        }
        spec.parse()
    }
}

impl fmt::Display for FaultPlan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, a) in self.actions.iter().enumerate() {
            if i > 0 {
                f.write_str(";")?;
            }
            write!(f, "{a}")?;
        }
        Ok(())
    }
}

fn parse_u64(s: &str, what: &str) -> Result<u64, String> {
    s.parse().map_err(|_| format!("invalid {what} `{s}` in fault spec"))
}

impl FromStr for FaultPlan {
    type Err = String;

    /// Parse a `;`-separated action spec (see the module docs for the
    /// grammar). Not a built-in lookup — use [`FaultPlan::resolve`] for
    /// CLI arguments.
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let mut actions = Vec::new();
        for part in s.split(';').map(str::trim).filter(|p| !p.is_empty()) {
            let (verb, rest) = part
                .split_once('@')
                .ok_or_else(|| format!("fault action `{part}` is missing `@OFFSET`"))?;
            let action = match verb {
                "cut" => FaultAction::Cut { at: parse_u64(rest, "offset")? },
                "trunc" => {
                    let (at, drop) = rest
                        .split_once('+')
                        .ok_or_else(|| format!("trunc action `{part}` needs `@OFFSET+BYTES`"))?;
                    FaultAction::Truncate {
                        at: parse_u64(at, "offset")?,
                        drop: parse_u64(drop, "byte count")?,
                    }
                }
                "flip" => FaultAction::BitFlip { at: parse_u64(rest, "offset")? },
                "stall" => {
                    let (at, ms) = rest
                        .split_once(':')
                        .ok_or_else(|| format!("stall action `{part}` needs `@OFFSET:MILLIS`"))?;
                    FaultAction::Stall {
                        at: parse_u64(at, "offset")?,
                        millis: parse_u64(ms, "duration")?,
                    }
                }
                "loris" => {
                    let mut it = rest.splitn(3, ':');
                    let at = it.next().unwrap_or_default();
                    let (chunk, ms) = match (it.next(), it.next()) {
                        (Some(c), Some(m)) => (c, m),
                        _ => {
                            return Err(format!(
                                "loris action `{part}` needs `@OFFSET:CHUNK:MILLIS`"
                            ))
                        }
                    };
                    let chunk = parse_u64(chunk, "chunk size")?;
                    if chunk == 0 {
                        return Err("loris chunk size must be nonzero".into());
                    }
                    FaultAction::SlowLoris {
                        at: parse_u64(at, "offset")?,
                        chunk,
                        millis: parse_u64(ms, "duration")?,
                    }
                }
                other => {
                    return Err(format!(
                        "unknown fault verb `{other}` (cut|trunc|flip|stall|loris)"
                    ))
                }
            };
            actions.push(action);
        }
        if actions.is_empty() {
            return Err("empty fault plan".into());
        }
        Ok(FaultPlan::new("custom", actions))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builtin_catalog_is_complete() {
        let all = FaultPlan::all_builtin();
        assert_eq!(all.len(), FaultPlan::builtin_names().len());
        for plan in &all {
            assert!(!plan.actions.is_empty(), "{} has no actions", plan.name);
        }
        assert!(FaultPlan::builtin("nope").is_none());
    }

    #[test]
    fn spec_roundtrips_through_display() {
        let spec = "cut@900;trunc@1100+9;flip@1200;stall@800:900;loris@0:13:1";
        let plan: FaultPlan = spec.parse().unwrap();
        assert_eq!(plan.actions.len(), 5);
        let rendered = plan.to_string();
        let back: FaultPlan = rendered.parse().unwrap();
        assert_eq!(back.actions, plan.actions);
    }

    #[test]
    fn actions_are_sorted_by_offset() {
        let plan: FaultPlan = "cut@500;flip@10".parse().unwrap();
        assert_eq!(plan.actions[0], FaultAction::BitFlip { at: 10 });
        assert_eq!(plan.actions[1], FaultAction::Cut { at: 500 });
    }

    #[test]
    fn resolve_prefers_builtin_names() {
        assert_eq!(FaultPlan::resolve("stall").unwrap().name, "stall");
        assert_eq!(FaultPlan::resolve("cut@64").unwrap().name, "custom");
        assert!(FaultPlan::resolve("definitely-not-a-plan").is_err());
    }

    #[test]
    fn malformed_specs_are_rejected() {
        for bad in [
            "",
            "cut",
            "cut@",
            "cut@abc",
            "trunc@5",
            "stall@5",
            "loris@1:2",
            "loris@0:0:1",
            "zap@3",
        ] {
            assert!(bad.parse::<FaultPlan>().is_err(), "spec `{bad}` must be rejected");
        }
    }
}

//! Identifier newtypes for threads and synchronization objects.
//!
//! A trace refers to threads and synchronization objects (locks, barriers,
//! condition variables) by small dense integer identifiers. Human-readable
//! names (e.g. `"tq[0].qlock"`) are kept in the trace-level name table so the
//! per-event records stay compact.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Identifier of a thread within one trace.
///
/// Thread ids are dense: a trace with `n` threads uses ids `0..n`. Id `0` is
/// conventionally the main (root) thread.
#[derive(
    Debug, Clone, Copy, Default, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize,
)]
pub struct ThreadId(pub u32);

impl ThreadId {
    /// The main (root) thread of an execution.
    pub const MAIN: ThreadId = ThreadId(0);

    /// The id as a `usize` index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for ThreadId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "T{}", self.0)
    }
}

/// Identifier of a synchronization object (lock, barrier, condition variable
/// or marker) within one trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct ObjId(pub u32);

impl ObjId {
    /// The id as a `usize` index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for ObjId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "obj{}", self.0)
    }
}

/// The kind of a registered synchronization object.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ObjKind {
    /// A mutual-exclusion lock.
    Lock,
    /// A reader-writer lock.
    RwLock,
    /// A barrier.
    Barrier,
    /// A condition variable.
    Condvar,
    /// A free-form marker (phase boundary etc.).
    Marker,
}

impl fmt::Display for ObjKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            ObjKind::Lock => "lock",
            ObjKind::RwLock => "rwlock",
            ObjKind::Barrier => "barrier",
            ObjKind::Condvar => "condvar",
            ObjKind::Marker => "marker",
        };
        f.write_str(s)
    }
}

/// Metadata about one registered synchronization object.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ObjInfo {
    /// What kind of object this is.
    pub kind: ObjKind,
    /// Human-readable name, e.g. `"tq[0].qlock"`.
    pub name: String,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn thread_id_display_and_index() {
        assert_eq!(ThreadId(3).to_string(), "T3");
        assert_eq!(ThreadId(3).index(), 3);
        assert_eq!(ThreadId::MAIN, ThreadId(0));
    }

    #[test]
    fn obj_id_display() {
        assert_eq!(ObjId(7).to_string(), "obj7");
        assert_eq!(ObjId(7).index(), 7);
    }

    #[test]
    fn obj_kind_display() {
        assert_eq!(ObjKind::Lock.to_string(), "lock");
        assert_eq!(ObjKind::RwLock.to_string(), "rwlock");
        assert_eq!(ObjKind::Barrier.to_string(), "barrier");
        assert_eq!(ObjKind::Condvar.to_string(), "condvar");
        assert_eq!(ObjKind::Marker.to_string(), "marker");
    }

    #[test]
    fn ids_order() {
        assert!(ThreadId(1) < ThreadId(2));
        assert!(ObjId(0) < ObjId(1));
    }
}

//! Self-describing JSON trace format.
//!
//! One JSON document per line:
//!
//! ```text
//! {"meta": {...}}                      # line 1: trace metadata
//! {"objects": [...]}                   # line 2: object table
//! {"thread": 0, "name": "main", "events": [...]}  # one line per thread
//! ```
//!
//! Intended for interchange with external tooling and for eyeballing traces;
//! the binary format in [`crate::codec`] is preferred for volume.

use crate::error::{Result, TraceError};
use crate::event::Event;
use crate::ids::{ObjInfo, ThreadId};
use crate::trace::{ThreadStream, Trace, TraceMeta};
use serde::{Deserialize, Serialize};
use std::fs::File;
use std::io::{BufRead, BufReader, BufWriter, Read, Write};
use std::path::Path;

#[derive(Serialize, Deserialize)]
struct MetaLine {
    meta: TraceMeta,
}

#[derive(Serialize, Deserialize)]
struct ObjectsLine {
    objects: Vec<ObjInfo>,
}

#[derive(Serialize, Deserialize)]
struct ThreadLine {
    thread: u32,
    #[serde(skip_serializing_if = "Option::is_none")]
    name: Option<String>,
    events: Vec<Event>,
}

/// Serialize a trace as JSONL.
pub fn write_trace(trace: &Trace, out: &mut impl Write) -> Result<()> {
    serde_json::to_writer(&mut *out, &MetaLine { meta: trace.meta.clone() })?;
    out.write_all(b"\n")?;
    serde_json::to_writer(&mut *out, &ObjectsLine { objects: trace.objects.clone() })?;
    out.write_all(b"\n")?;
    for stream in &trace.threads {
        serde_json::to_writer(
            &mut *out,
            &ThreadLine {
                thread: stream.tid.0,
                name: stream.name.clone(),
                events: stream.events.clone(),
            },
        )?;
        out.write_all(b"\n")?;
    }
    Ok(())
}

/// Deserialize a trace from JSONL.
pub fn read_trace(inp: &mut impl Read) -> Result<Trace> {
    let reader = BufReader::new(inp);
    let mut lines = reader.lines();
    let meta_line =
        lines.next().ok_or_else(|| TraceError::Decode("empty JSONL trace".into()))??;
    let meta: MetaLine = serde_json::from_str(&meta_line)?;
    let objects_line =
        lines.next().ok_or_else(|| TraceError::Decode("missing objects line".into()))??;
    let objects: ObjectsLine = serde_json::from_str(&objects_line)?;

    let mut trace = Trace::new(meta.meta);
    trace.objects = objects.objects;
    for line in lines {
        let line = line?;
        if line.trim().is_empty() {
            continue;
        }
        let tl: ThreadLine = serde_json::from_str(&line)?;
        let mut stream = ThreadStream::new(ThreadId(tl.thread));
        stream.name = tl.name;
        stream.events = tl.events;
        trace.threads.push(stream);
    }
    Ok(trace)
}

/// Save a trace to a JSONL file.
pub fn save(trace: &Trace, path: impl AsRef<Path>) -> Result<()> {
    let mut w = BufWriter::new(File::create(path)?);
    write_trace(trace, &mut w)?;
    w.flush()?;
    Ok(())
}

/// Load a trace from a JSONL file.
pub fn load(path: impl AsRef<Path>) -> Result<Trace> {
    let mut r = File::open(path)?;
    read_trace(&mut r)
}

/// Load a trace from a file in either format, sniffing the magic bytes.
pub fn load_auto(path: impl AsRef<Path>) -> Result<Trace> {
    let mut f = File::open(&path)?;
    let mut magic = [0u8; 4];
    let n = f.read(&mut magic)?;
    drop(f);
    if n == 4 && &magic == b"CLTR" {
        crate::codec::load(path)
    } else {
        load(path)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::TraceBuilder;
    use std::io::Cursor;

    fn sample() -> Trace {
        let mut b = TraceBuilder::new("jsonl-sample");
        let l = b.lock("L");
        let t0 = b.thread("main", 0);
        let t1 = b.thread("w", 0);
        b.on(t0).cs(l, 3).exit_at(10);
        b.on(t1).work(1).cs_blocked(l, 3, 2).exit_at(9);
        b.build().unwrap()
    }

    #[test]
    fn jsonl_roundtrip() {
        let t = sample();
        let mut buf = Vec::new();
        write_trace(&t, &mut buf).unwrap();
        let text = String::from_utf8(buf.clone()).unwrap();
        assert_eq!(text.lines().count(), 2 + t.threads.len());
        let back = read_trace(&mut Cursor::new(buf)).unwrap();
        assert_eq!(t, back);
    }

    #[test]
    fn empty_input_rejected() {
        let buf: Vec<u8> = Vec::new();
        assert!(read_trace(&mut Cursor::new(buf)).is_err());
    }

    #[test]
    fn garbage_rejected() {
        let buf = b"not json\n".to_vec();
        assert!(read_trace(&mut Cursor::new(buf)).is_err());
    }

    #[test]
    fn auto_detects_both_formats() {
        let t = sample();
        let dir = std::env::temp_dir().join("critlock-jsonl-test");
        std::fs::create_dir_all(&dir).unwrap();

        let p1 = dir.join("t.jsonl");
        save(&t, &p1).unwrap();
        assert_eq!(load_auto(&p1).unwrap(), t);

        let p2 = dir.join("t.cltr");
        crate::codec::save(&t, &p2).unwrap();
        assert_eq!(load_auto(&p2).unwrap(), t);

        std::fs::remove_file(&p1).ok();
        std::fs::remove_file(&p2).ok();
    }
}

//! # critlock-trace
//!
//! Synchronization-event trace model for **critical lock analysis**
//! (Chen & Stenström, *Critical Lock Analysis: Diagnosing Critical Section
//! Bottlenecks in Multithreaded Applications*, SC 2012).
//!
//! This crate is the interchange layer between the producers of traces —
//! the real-thread instrumentation runtime (`critlock-instrument`) and the
//! deterministic execution simulator (`critlock-sim`) — and the consumer,
//! the analysis engine (`critlock-analysis`).
//!
//! It provides:
//!
//! * the event protocol ([`event`]) mirroring the paper's MAGIC()
//!   instrumentation points: lock acquire/contended/obtain/release, barrier
//!   arrive/depart, condvar wait/signal and thread lifecycle edges;
//! * the trace container ([`trace`]) with a per-thread stream layout,
//!   object name table and protocol validation;
//! * episode views ([`episodes`]) reconstructing whole lock invocations,
//!   barrier crossings and waits from raw events;
//! * a builder DSL ([`builder`]) for encoding executions by hand (used to
//!   reproduce the paper's Fig. 1 exactly in tests);
//! * binary ([`codec`]) and JSONL ([`jsonl`]) serialization, plus a
//!   length-prefixed, CRC-checked frame format ([`stream`]) for live
//!   transport of in-progress traces to a collector daemon, with a
//!   resumable-session handshake for reconnecting producers, and a
//!   CRC-checked checkpoint document ([`checkpoint`]) letting the
//!   collector resume analysis from a durable snapshot plus a journal
//!   tail instead of replaying full history;
//! * deterministic transport fault plans ([`faults`]) and the capped
//!   exponential reconnect policy ([`retry`]) shared by the streaming
//!   clients and the collector's fault-injection harness;
//! * a typed anomaly vocabulary ([`anomaly`]) shared by validation and
//!   repair, best-effort trace salvage ([`salvage`]) that recovers the
//!   longest protocol-consistent prefix of each thread instead of
//!   rejecting the whole trace, and resource budgets ([`budget`])
//!   enforced in decode and analysis so oversized inputs degrade
//!   deterministically instead of exhausting the host.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod anomaly;
pub mod budget;
pub mod builder;
pub mod checkpoint;
pub mod codec;
pub mod crc;
pub mod episodes;
pub mod error;
pub mod event;
pub mod faults;
pub mod ids;
pub mod jsonl;
pub mod retry;
pub mod rollup;
pub mod salvage;
pub mod stream;
pub mod trace;

pub use anomaly::Anomaly;
pub use budget::Budget;
pub use builder::TraceBuilder;
pub use checkpoint::{decode_checkpoint, encode_checkpoint, CheckpointDoc, WindowCheckpoint};
pub use codec::{EventRef, RawEventIter, RawThread, RawTraceView};
pub use episodes::{
    barrier_episodes, cond_wait_episodes, join_episodes, lock_episodes, rw_episodes,
    signal_records, BarrierEpisode, CondWaitEpisode, JoinEpisode, LockEpisode, RwEpisode,
    SignalRecord,
};
pub use error::{Result, TraceError};
pub use event::{Event, EventKind, Ts, SEQ_UNKNOWN};
pub use faults::{FaultAction, FaultPlan};
pub use ids::{ObjId, ObjInfo, ObjKind, ThreadId};
pub use retry::RetryPolicy;
pub use rollup::{LockDigest, Rollup, SessionDigest};
pub use salvage::{SalvageReport, Salvaged, ThreadSalvage};
pub use trace::{ClockDomain, ThreadStream, Trace, TraceMeta};

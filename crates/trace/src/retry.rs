//! Capped exponential backoff policy shared by the streaming clients.
//!
//! Both producer-side reconnect paths — `critlock_collector::push_with`
//! and `Session::stream_to_resumable` in `critlock-instrument` — space
//! their reconnection attempts with a [`RetryPolicy`]: the delay doubles
//! per consecutive failure, capped at `max_backoff`, and the whole
//! operation gives up after `max_attempts` consecutive failures. Any
//! successful reconnect resets the failure count.

use std::time::Duration;

/// Reconnection budget and backoff schedule.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Consecutive failed attempts tolerated before giving up. Zero
    /// disables reconnection entirely.
    pub max_attempts: u32,
    /// Delay before the first retry.
    pub initial_backoff: Duration,
    /// Upper bound on the per-attempt delay.
    pub max_backoff: Duration,
}

impl RetryPolicy {
    /// A policy with the default backoff window (25 ms doubling up to
    /// 1 s) and the given attempt budget.
    pub fn with_attempts(max_attempts: u32) -> Self {
        RetryPolicy {
            max_attempts,
            initial_backoff: Duration::from_millis(25),
            max_backoff: Duration::from_secs(1),
        }
    }

    /// No reconnection: the first transport error is final.
    pub fn none() -> Self {
        RetryPolicy::with_attempts(0)
    }

    /// The delay before retry number `attempt` (0-based): capped
    /// exponential, `initial_backoff * 2^attempt` clamped to
    /// `max_backoff`.
    pub fn backoff(&self, attempt: u32) -> Duration {
        let factor = 1u32.checked_shl(attempt).unwrap_or(u32::MAX);
        self.initial_backoff.checked_mul(factor).unwrap_or(self.max_backoff).min(self.max_backoff)
    }
}

impl Default for RetryPolicy {
    /// Five attempts over the default backoff window — roughly 1.5 s of
    /// cumulative waiting before the stream is declared lost.
    fn default() -> Self {
        RetryPolicy::with_attempts(5)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_doubles_and_caps() {
        let p = RetryPolicy {
            max_attempts: 10,
            initial_backoff: Duration::from_millis(10),
            max_backoff: Duration::from_millis(70),
        };
        assert_eq!(p.backoff(0), Duration::from_millis(10));
        assert_eq!(p.backoff(1), Duration::from_millis(20));
        assert_eq!(p.backoff(2), Duration::from_millis(40));
        assert_eq!(p.backoff(3), Duration::from_millis(70)); // capped
        assert_eq!(p.backoff(31), Duration::from_millis(70));
        assert_eq!(p.backoff(63), Duration::from_millis(70)); // shift overflow clamped
    }

    #[test]
    fn none_disables_retries() {
        assert_eq!(RetryPolicy::none().max_attempts, 0);
    }
}

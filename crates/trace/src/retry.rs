//! Capped exponential backoff policy shared by the streaming clients.
//!
//! Both producer-side reconnect paths — `critlock_collector::push_with`
//! and `Session::stream_to_resumable` in `critlock-instrument` — space
//! their reconnection attempts with a [`RetryPolicy`]: the delay doubles
//! per consecutive failure, capped at `max_backoff`, and the whole
//! operation gives up after `max_attempts` consecutive failures. Any
//! successful reconnect resets the failure count.

use std::time::Duration;

/// Reconnection budget and backoff schedule.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Consecutive failed attempts tolerated before giving up. Zero
    /// disables reconnection entirely.
    pub max_attempts: u32,
    /// Delay before the first retry.
    pub initial_backoff: Duration,
    /// Upper bound on the per-attempt delay.
    pub max_backoff: Duration,
}

impl RetryPolicy {
    /// A policy with the default backoff window (25 ms doubling up to
    /// 1 s) and the given attempt budget.
    pub fn with_attempts(max_attempts: u32) -> Self {
        RetryPolicy {
            max_attempts,
            initial_backoff: Duration::from_millis(25),
            max_backoff: Duration::from_secs(1),
        }
    }

    /// No reconnection: the first transport error is final.
    pub fn none() -> Self {
        RetryPolicy::with_attempts(0)
    }

    /// The delay before retry number `attempt` (0-based): capped
    /// exponential, `initial_backoff * 2^attempt` clamped to
    /// `max_backoff`.
    ///
    /// The arithmetic saturates for any `attempt` (including far past 63):
    /// once the exact product `initial_backoff * 2^attempt` reaches
    /// `max_backoff` the cap is returned, never a wrapped or silently
    /// clamped intermediate.
    pub fn backoff(&self, attempt: u32) -> Duration {
        let nanos = self.initial_backoff.as_nanos();
        if nanos == 0 {
            // Zero times any power of two is zero.
            return Duration::ZERO;
        }
        // `nanos << attempt` is exact iff no set bit is shifted out, i.e.
        // attempt < leading_zeros(nanos). Otherwise the true product
        // exceeds u128::MAX and therefore any representable cap.
        if attempt >= nanos.leading_zeros() {
            return self.max_backoff;
        }
        let shifted = nanos << attempt;
        let cap = self.max_backoff.as_nanos();
        if shifted >= cap {
            self.max_backoff
        } else {
            // shifted < cap <= Duration::MAX in nanoseconds, so the
            // seconds part fits in u64.
            Duration::new((shifted / 1_000_000_000) as u64, (shifted % 1_000_000_000) as u32)
        }
    }
}

impl Default for RetryPolicy {
    /// Five attempts over the default backoff window — roughly 1.5 s of
    /// cumulative waiting before the stream is declared lost.
    fn default() -> Self {
        RetryPolicy::with_attempts(5)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_doubles_and_caps() {
        let p = RetryPolicy {
            max_attempts: 10,
            initial_backoff: Duration::from_millis(10),
            max_backoff: Duration::from_millis(70),
        };
        assert_eq!(p.backoff(0), Duration::from_millis(10));
        assert_eq!(p.backoff(1), Duration::from_millis(20));
        assert_eq!(p.backoff(2), Duration::from_millis(40));
        assert_eq!(p.backoff(3), Duration::from_millis(70)); // capped
        assert_eq!(p.backoff(31), Duration::from_millis(70));
        assert_eq!(p.backoff(63), Duration::from_millis(70)); // shift overflow clamped
    }

    #[test]
    fn none_disables_retries() {
        assert_eq!(RetryPolicy::none().max_attempts, 0);
    }

    /// Regression: the old implementation clamped the exponent's *factor*
    /// to `u32::MAX`, so with a large `max_backoff` the delay silently
    /// stopped growing at `initial * (2^32 - 1)` instead of following the
    /// exact exponential. The exact product must be honored until it
    /// reaches the cap, for any attempt count.
    #[test]
    fn backoff_is_exact_past_32_attempts_under_a_large_cap() {
        let p = RetryPolicy {
            max_attempts: u32::MAX,
            initial_backoff: Duration::from_nanos(3),
            max_backoff: Duration::from_secs(u64::MAX),
        };
        // 3ns * 2^40 = 3298534883328 ns, still far below the cap.
        assert_eq!(p.backoff(40), Duration::from_nanos(3u64 << 40));
    }

    /// The cap must hold at and far beyond the 63-bit shift boundary.
    #[test]
    fn backoff_caps_for_huge_attempt_counts() {
        let p = RetryPolicy {
            max_attempts: u32::MAX,
            initial_backoff: Duration::from_millis(25),
            max_backoff: Duration::from_secs(1),
        };
        for attempt in [63, 64, 65, 127, 128, 1000, u32::MAX] {
            assert_eq!(p.backoff(attempt), Duration::from_secs(1), "attempt {attempt}");
        }
        // Monotone non-decreasing across the entire boundary region.
        let mut prev = p.backoff(0);
        for attempt in 1..=200 {
            let d = p.backoff(attempt);
            assert!(d >= prev, "backoff decreased at attempt {attempt}");
            prev = d;
        }
        // Even a maximal cap saturates rather than wrapping or panicking.
        let huge = RetryPolicy {
            max_attempts: u32::MAX,
            initial_backoff: Duration::from_millis(25),
            max_backoff: Duration::MAX,
        };
        assert_eq!(huge.backoff(u32::MAX), Duration::MAX);
    }

    #[test]
    fn zero_initial_backoff_stays_zero() {
        let p = RetryPolicy {
            max_attempts: 8,
            initial_backoff: Duration::ZERO,
            max_backoff: Duration::from_secs(1),
        };
        assert_eq!(p.backoff(0), Duration::ZERO);
        assert_eq!(p.backoff(100), Duration::ZERO);
    }
}

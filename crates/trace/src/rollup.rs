//! CLAG — the versioned, CRC-framed **cross-session rollup** format.
//!
//! A [`Rollup`] carries one [`SessionDigest`] per analyzed session: the
//! compact, *mergeable* core of a per-session critical-lock ranking
//! (integer totals only — every fleet-level percentage is derived at
//! render time, so merging never accumulates floating-point error).
//! Rollups are what collectors forward up an aggregation tree and what
//! `critlock aggregate` merges into a fleet report.
//!
//! ## Merge algebra
//!
//! [`Rollup::merge`] is a join on a map keyed by session: the union of
//! the two session sets, with duplicate keys resolved by a canonical
//! total order over digests. The order is **freshness-monotone**: it
//! compares the numeric totals first (makespan, critical-path length,
//! event and wait/hold sums — all of which only grow as a live session
//! ingests more events), with the encoded bytes as a final tiebreaker.
//! A parent that received an intermediate digest of a still-running
//! session therefore always yields to that session's later/final
//! digest. (Raw encoded-byte order would not do: varint byte order is
//! not monotone in value — `varint(200) = [C8 01]` sorts above
//! `varint(300) = [AC 02]` — so it could permanently pin a stale
//! digest.) The greater digest wins, which makes merge
//!
//! * **commutative** — `a ∪ b == b ∪ a`,
//! * **associative** — `(a ∪ b) ∪ c == a ∪ (b ∪ c)`,
//! * **idempotent** — `a ∪ a == a`,
//!
//! for *any* inputs (a join-semilattice), so hierarchical forwarding is
//! safe by construction: a child that re-forwards its whole rollup after
//! a reconnect, or two paths that deliver the same session twice, cannot
//! change the fleet totals. On disjoint session sets the merge is plain
//! union and session counts add exactly.
//!
//! ## Wire layout
//!
//! ```text
//! magic "CLAG" | version varint
//! | payload-len varint | payload bytes | CRC32(payload) u32-LE
//! ```
//!
//! The payload is the varint/length-prefixed encoding produced by
//! [`Rollup::encode_payload`]. A truncated or bit-flipped file fails the
//! CRC (or the length check) and decodes to a typed error — a parent
//! collector keeps its last good rollup when a child dies mid-forward.

use crate::codec::{read_varint, write_varint};
use crate::error::TraceError;
use crate::stream::crc32;
use std::cmp::Ordering;
use std::collections::BTreeMap;
use std::io::{Read, Write};

use serde::{Deserialize, Serialize};

/// Rollup file/stream magic.
pub const ROLLUP_MAGIC: &[u8; 4] = b"CLAG";

/// Current rollup format version. Version 2 adds the optional
/// sliding-window annotation trailer to every session digest; version 1
/// documents (no trailer) are still read, decoding to `window: None`.
pub const ROLLUP_VERSION: u64 = 2;

/// Hard cap on an encoded rollup payload (64 MiB) — a length prefix
/// beyond this is treated as corruption, not an allocation request.
pub const MAX_ROLLUP_LEN: usize = 1 << 26;

type Result<T> = std::result::Result<T, TraceError>;

/// Scale for fixed-point per-session critical-path shares: shares are
/// stored in parts-per-million, so merged means stay exact integers.
pub const PPM: u64 = 1_000_000;

/// One lock's mergeable totals within a single session.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct LockDigest {
    /// Registered lock name.
    pub name: String,
    /// Time this lock's critical sections occupy on the session's
    /// critical path.
    pub cp_time: u64,
    /// Fixed-point `cp_time / cp_length` in parts-per-million (0 when
    /// the session's critical path is empty). Precomputed per session so
    /// fleet means are sums of integers.
    pub cp_share_ppm: u64,
    /// Invocations whose critical section lies on the critical path.
    pub invocations_on_cp: u64,
    /// How many of those were contended.
    pub contended_on_cp: u64,
    /// Total invocations by all threads.
    pub total_invocations: u64,
    /// Total wait time across threads.
    pub total_wait: u64,
    /// Total hold time across threads.
    pub total_hold: u64,
}

/// One closed sliding window's critical-lock digest: the analysis of the
/// session clipped to the aligned span `[lo, hi]`, compressed the same
/// way the whole-session digest is. Windows are closed — no more events
/// can land inside them — so their digests are immutable once computed
/// and safe to carry through rollup merges.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct WindowDigest {
    /// Window ordinal: the span is `[index·width, (index+1)·width]`.
    pub index: u64,
    /// Window start timestamp (inclusive).
    pub lo: u64,
    /// Window end timestamp (inclusive).
    pub hi: u64,
    /// Critical-path length of the clipped window.
    pub cp_length: u64,
    /// Makespan of the clipped window.
    pub makespan: u64,
    /// Per-lock totals within the window, sorted by `name` ascending.
    pub locks: Vec<LockDigest>,
}

/// The mergeable core of one session's analysis: identity, headline
/// numbers and the per-lock totals, sorted by lock name.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SessionDigest {
    /// Globally unique session key (resume token, `collector/anon-N`, or
    /// a trace file path) — the dedup identity under merge.
    pub key: String,
    /// Application name from the trace metadata.
    pub app: String,
    /// Critical-path length.
    pub cp_length: u64,
    /// End-to-end completion time.
    pub makespan: u64,
    /// Whether the session's analysis was degraded (salvage or budget).
    pub degraded: bool,
    /// Per-lock totals, sorted by `name` ascending.
    pub locks: Vec<LockDigest>,
    /// Latest *closed* sliding window, when the source collector runs
    /// with windowing enabled (format v2; absent in v1 documents). The
    /// window index is monotone per session, so freshness of the
    /// annotation follows session freshness.
    #[serde(default)]
    pub window: Option<WindowDigest>,
}

impl SessionDigest {
    /// Freshness key: every component only grows as a live session
    /// ingests more events, so a later digest of the same session never
    /// compares below an earlier one.
    fn freshness_key(&self) -> (u64, u64, u64, u64) {
        let mut events = 0u64;
        let mut work = 0u64;
        for lock in &self.locks {
            events = events.saturating_add(lock.total_invocations);
            work = work.saturating_add(lock.total_wait).saturating_add(lock.total_hold);
        }
        (self.makespan, self.cp_length, events, work)
    }

    /// The canonical total order that resolves duplicate session keys:
    /// numeric freshness first — varint byte order is not monotone in
    /// value, so raw encoded bytes must never be the primary criterion —
    /// then the full encoded bytes, so the order is total and only
    /// byte-identical digests compare equal.
    fn cmp_canonical(&self, other: &SessionDigest) -> Ordering {
        self.freshness_key()
            .cmp(&other.freshness_key())
            .then_with(|| self.encoded().cmp(&other.encoded()))
    }

    /// Canonical encoded form, used on the wire and as the tiebreaker of
    /// the duplicate-key order.
    fn encoded(&self) -> Vec<u8> {
        self.encoded_v(ROLLUP_VERSION)
    }

    /// Encode at a specific format version (v1 has no window trailer).
    /// Only the current version is ever written on the wire; older
    /// versions exist for the decode-compatibility tests.
    fn encoded_v(&self, version: u64) -> Vec<u8> {
        let mut out = Vec::new();
        write_str(&mut out, &self.key);
        write_str(&mut out, &self.app);
        let _ = write_varint(&mut out, self.cp_length);
        let _ = write_varint(&mut out, self.makespan);
        out.push(self.degraded as u8);
        encode_locks(&mut out, &self.locks);
        if version >= 2 {
            match &self.window {
                Some(w) => {
                    out.push(1);
                    for v in [w.index, w.lo, w.hi, w.cp_length, w.makespan] {
                        let _ = write_varint(&mut out, v);
                    }
                    encode_locks(&mut out, &w.locks);
                }
                None => out.push(0),
            }
        }
        out
    }

    fn decode(inp: &mut impl Read, version: u64) -> Result<Self> {
        let key = read_str(inp)?;
        let app = read_str(inp)?;
        let cp_length = read_varint(inp)?;
        let makespan = read_varint(inp)?;
        let mut flag = [0u8; 1];
        inp.read_exact(&mut flag).map_err(TraceError::Io)?;
        if flag[0] > 1 {
            return Err(TraceError::Decode(format!("invalid degraded flag {}", flag[0])));
        }
        let locks = decode_locks(inp)?;
        let window = if version >= 2 {
            let mut present = [0u8; 1];
            inp.read_exact(&mut present).map_err(TraceError::Io)?;
            match present[0] {
                0 => None,
                1 => {
                    let index = read_varint(inp)?;
                    let lo = read_varint(inp)?;
                    let hi = read_varint(inp)?;
                    let w_cp_length = read_varint(inp)?;
                    let w_makespan = read_varint(inp)?;
                    let w_locks = decode_locks(inp)?;
                    if lo > hi {
                        return Err(TraceError::Decode(format!(
                            "inverted window bounds [{lo}, {hi}]"
                        )));
                    }
                    Some(WindowDigest {
                        index,
                        lo,
                        hi,
                        cp_length: w_cp_length,
                        makespan: w_makespan,
                        locks: w_locks,
                    })
                }
                other => {
                    return Err(TraceError::Decode(format!("invalid window flag {other}")));
                }
            }
        } else {
            None
        };
        Ok(SessionDigest { key, app, cp_length, makespan, degraded: flag[0] == 1, locks, window })
    }
}

fn encode_locks(out: &mut Vec<u8>, locks: &[LockDigest]) {
    let _ = write_varint(out, locks.len() as u64);
    for lock in locks {
        write_str(out, &lock.name);
        for v in [
            lock.cp_time,
            lock.cp_share_ppm,
            lock.invocations_on_cp,
            lock.contended_on_cp,
            lock.total_invocations,
            lock.total_wait,
            lock.total_hold,
        ] {
            let _ = write_varint(out, v);
        }
    }
}

fn decode_locks(inp: &mut impl Read) -> Result<Vec<LockDigest>> {
    let count = read_varint(inp)? as usize;
    if count > MAX_ROLLUP_LEN {
        return Err(TraceError::Decode(format!("implausible lock count {count}")));
    }
    let mut locks = Vec::with_capacity(count.min(4096));
    for _ in 0..count {
        let name = read_str(inp)?;
        let mut vals = [0u64; 7];
        for v in vals.iter_mut() {
            *v = read_varint(inp)?;
        }
        locks.push(LockDigest {
            name,
            cp_time: vals[0],
            cp_share_ppm: vals[1],
            invocations_on_cp: vals[2],
            contended_on_cp: vals[3],
            total_invocations: vals[4],
            total_wait: vals[5],
            total_hold: vals[6],
        });
    }
    if !locks.windows(2).all(|w| w[0].name < w[1].name) {
        return Err(TraceError::Decode("lock digests not sorted by name".into()));
    }
    Ok(locks)
}

/// A mergeable set of session digests — the CLAG document.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Rollup {
    /// Digests keyed by session key.
    pub sessions: BTreeMap<String, SessionDigest>,
}

impl Rollup {
    /// An empty rollup.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of sessions covered.
    pub fn len(&self) -> usize {
        self.sessions.len()
    }

    /// Whether the rollup covers no sessions.
    pub fn is_empty(&self) -> bool {
        self.sessions.is_empty()
    }

    /// Insert one session digest, resolving a duplicate key by the
    /// canonical freshness-monotone order (the greater digest wins — on
    /// equal digests this is a no-op, which is what makes merge
    /// idempotent).
    pub fn insert(&mut self, digest: SessionDigest) {
        match self.sessions.get(&digest.key) {
            Some(existing) if existing.cmp_canonical(&digest) != Ordering::Less => {}
            _ => {
                self.sessions.insert(digest.key.clone(), digest);
            }
        }
    }

    /// Merge another rollup into this one (set union with canonical
    /// duplicate resolution). Commutative, associative and idempotent —
    /// see the module docs.
    pub fn merge(&mut self, other: &Rollup) {
        for digest in other.sessions.values() {
            self.insert(digest.clone());
        }
    }

    /// The canonical payload bytes (without framing).
    pub fn encode_payload(&self) -> Vec<u8> {
        let mut out = Vec::new();
        let _ = write_varint(&mut out, self.sessions.len() as u64);
        for digest in self.sessions.values() {
            out.extend_from_slice(&digest.encoded());
        }
        out
    }

    /// Decode a payload produced by [`Rollup::encode_payload`] at the
    /// given format version (taken from the document frame).
    pub fn decode_payload(bytes: &[u8], version: u64) -> Result<Self> {
        let mut inp = bytes;
        let count = read_varint(&mut inp)? as usize;
        if count > MAX_ROLLUP_LEN {
            return Err(TraceError::Decode(format!("implausible session count {count}")));
        }
        let mut rollup = Rollup::new();
        for _ in 0..count {
            let digest = SessionDigest::decode(&mut inp, version)?;
            if rollup.sessions.contains_key(&digest.key) {
                return Err(TraceError::Decode(format!("duplicate session key {:?}", digest.key)));
            }
            rollup.insert(digest);
        }
        if !inp.is_empty() {
            return Err(TraceError::Decode(format!("{} trailing rollup bytes", inp.len())));
        }
        Ok(rollup)
    }

    /// Write the framed CLAG document: magic, version, length-prefixed
    /// payload, CRC32.
    pub fn write_to(&self, out: &mut impl Write) -> Result<()> {
        let payload = self.encode_payload();
        out.write_all(ROLLUP_MAGIC).map_err(TraceError::Io)?;
        write_varint(out, ROLLUP_VERSION)?;
        write_varint(out, payload.len() as u64)?;
        out.write_all(&payload).map_err(TraceError::Io)?;
        out.write_all(&crc32(&payload).to_le_bytes()).map_err(TraceError::Io)?;
        Ok(())
    }

    /// The framed CLAG document as bytes.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::new();
        self.write_to(&mut out).expect("in-memory rollup encode cannot fail");
        out
    }

    /// Read a framed CLAG document: checks magic, version, length bound
    /// and payload CRC before decoding.
    pub fn read_from(inp: &mut impl Read) -> Result<Self> {
        let mut magic = [0u8; 4];
        inp.read_exact(&mut magic).map_err(TraceError::Io)?;
        if &magic != ROLLUP_MAGIC {
            return Err(TraceError::Decode(format!("bad rollup magic {magic:02x?}")));
        }
        let version = read_varint(inp)?;
        if version == 0 || version > ROLLUP_VERSION {
            return Err(TraceError::Decode(format!("unsupported rollup version {version}")));
        }
        let len = read_varint(inp)? as usize;
        if len > MAX_ROLLUP_LEN {
            return Err(TraceError::Decode(format!("implausible rollup length {len}")));
        }
        let mut payload = vec![0u8; len];
        inp.read_exact(&mut payload).map_err(TraceError::Io)?;
        let mut crc = [0u8; 4];
        inp.read_exact(&mut crc).map_err(TraceError::Io)?;
        if u32::from_le_bytes(crc) != crc32(&payload) {
            return Err(TraceError::Decode("rollup CRC mismatch".into()));
        }
        Self::decode_payload(&payload, version)
    }

    /// Decode a framed CLAG document from a byte slice, rejecting
    /// trailing garbage.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self> {
        let mut inp = bytes;
        let rollup = Self::read_from(&mut inp)?;
        if !inp.is_empty() {
            return Err(TraceError::Decode(format!("{} trailing bytes after rollup", inp.len())));
        }
        Ok(rollup)
    }

    /// Save the framed document to a file.
    pub fn save(&self, path: impl AsRef<std::path::Path>) -> Result<()> {
        let mut file = std::fs::File::create(path).map_err(TraceError::Io)?;
        self.write_to(&mut file)?;
        file.sync_all().map_err(TraceError::Io)
    }

    /// Load a framed document from a file.
    pub fn load(path: impl AsRef<std::path::Path>) -> Result<Self> {
        let bytes = std::fs::read(path).map_err(TraceError::Io)?;
        Self::from_bytes(&bytes)
    }
}

/// Fixed-point per-session CP share: `cp_time / cp_length` in
/// parts-per-million, 0 for an empty critical path. Saturates (at
/// `u64::MAX`) on the pathological `cp_time >> cp_length` case instead
/// of overflowing.
pub fn cp_share_ppm(cp_time: u64, cp_length: u64) -> u64 {
    if cp_length == 0 {
        return 0;
    }
    ((cp_time as u128 * PPM as u128) / cp_length as u128).min(u64::MAX as u128) as u64
}

fn write_str(out: &mut Vec<u8>, s: &str) {
    let _ = write_varint(out, s.len() as u64);
    out.extend_from_slice(s.as_bytes());
}

fn read_str(inp: &mut impl Read) -> Result<String> {
    let len = read_varint(inp)? as usize;
    if len > MAX_ROLLUP_LEN {
        return Err(TraceError::Decode(format!("implausible string length {len}")));
    }
    let mut buf = vec![0u8; len];
    inp.read_exact(&mut buf).map_err(TraceError::Io)?;
    String::from_utf8(buf).map_err(|e| TraceError::Decode(format!("invalid UTF-8 string: {e}")))
}

#[cfg(test)]
mod tests {
    use super::*;

    pub(crate) fn digest(key: &str, locks: &[(&str, u64)]) -> SessionDigest {
        let cp_length = 100u64;
        let mut locks: Vec<LockDigest> = locks
            .iter()
            .map(|(name, cp_time)| LockDigest {
                name: name.to_string(),
                cp_time: *cp_time,
                cp_share_ppm: cp_share_ppm(*cp_time, cp_length),
                invocations_on_cp: *cp_time / 2,
                contended_on_cp: *cp_time / 4,
                total_invocations: *cp_time,
                total_wait: *cp_time * 3,
                total_hold: *cp_time * 5,
            })
            .collect();
        locks.sort_by(|a, b| a.name.cmp(&b.name));
        SessionDigest {
            key: key.to_string(),
            app: "test".to_string(),
            cp_length,
            makespan: 120,
            degraded: false,
            locks,
            window: None,
        }
    }

    fn rollup(keys: &[&str]) -> Rollup {
        let mut r = Rollup::new();
        for key in keys {
            r.insert(digest(key, &[("hot", 40), ("cold", 5)]));
        }
        r
    }

    #[test]
    fn frame_roundtrip() {
        let r = rollup(&["s1", "s2", "s3"]);
        let bytes = r.to_bytes();
        assert_eq!(&bytes[..4], ROLLUP_MAGIC);
        let back = Rollup::from_bytes(&bytes).unwrap();
        assert_eq!(back, r);
        // Deterministic encoding: same rollup, same bytes.
        assert_eq!(bytes, back.to_bytes());
    }

    #[test]
    fn corruption_is_detected() {
        let r = rollup(&["s1", "s2"]);
        let bytes = r.to_bytes();
        // Truncation anywhere must fail, never panic.
        for cut in 0..bytes.len() {
            assert!(Rollup::from_bytes(&bytes[..cut]).is_err(), "cut at {cut}");
        }
        // A bit flip anywhere must fail (magic, version, length or CRC).
        for at in 0..bytes.len() {
            let mut hurt = bytes.clone();
            hurt[at] ^= 0x40;
            assert!(Rollup::from_bytes(&hurt).is_err(), "flip at {at}");
        }
        // Trailing garbage is rejected.
        let mut long = bytes.clone();
        long.push(0);
        assert!(Rollup::from_bytes(&long).is_err());
    }

    #[test]
    fn merge_is_union_on_disjoint_sessions() {
        let mut a = rollup(&["s1", "s2"]);
        let b = rollup(&["s3"]);
        a.merge(&b);
        assert_eq!(a.len(), 3);
        assert!(a.sessions.contains_key("s3"));
    }

    #[test]
    fn merge_is_idempotent_commutative_associative() {
        let a = rollup(&["s1", "s2"]);
        let b = rollup(&["s2", "s3"]);
        let c = rollup(&["s4"]);

        let mut aa = a.clone();
        aa.merge(&a);
        assert_eq!(aa, a, "idempotent");

        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        assert_eq!(ab, ba, "commutative");

        let mut ab_c = ab.clone();
        ab_c.merge(&c);
        let mut bc = b.clone();
        bc.merge(&c);
        let mut a_bc = a.clone();
        a_bc.merge(&bc);
        assert_eq!(ab_c, a_bc, "associative");
    }

    #[test]
    fn duplicate_key_resolution_is_deterministic() {
        // Two *different* digests under one key: whichever merge order,
        // the canonically greater digest must win.
        let d1 = digest("dup", &[("hot", 40)]);
        let d2 = digest("dup", &[("hot", 41)]);
        let mut r1 = Rollup::new();
        r1.insert(d1.clone());
        r1.insert(d2.clone());
        let mut r2 = Rollup::new();
        r2.insert(d2);
        r2.insert(d1);
        assert_eq!(r1, r2);
    }

    #[test]
    fn duplicate_key_resolution_prefers_fresher_digest() {
        // varint(200) = [C8 01] sorts lexicographically above
        // varint(300) = [AC 02], so an encoded-byte order would keep the
        // *earlier* digest of a live session forever. The canonical
        // order must be numeric: the digest with the larger makespan — a
        // later snapshot of the same session — wins in either insert
        // order.
        let mut early = digest("dup", &[("hot", 10)]);
        early.makespan = 200;
        let mut late = digest("dup", &[("hot", 10)]);
        late.makespan = 300;
        assert!(early.encoded() > late.encoded(), "premise: varint order is inverted here");
        for pair in [[&early, &late], [&late, &early]] {
            let mut r = Rollup::new();
            for d in pair {
                r.insert((*d).clone());
            }
            assert_eq!(r.sessions["dup"].makespan, 300, "fresher digest must win");
        }
    }

    #[test]
    fn decode_rejects_unsorted_or_duplicate_entries() {
        let mut d = digest("s", &[("hot", 1), ("cold", 2)]);
        d.locks.reverse(); // break the sort invariant
        let mut payload = Vec::new();
        let _ = write_varint(&mut payload, 1);
        payload.extend_from_slice(&d.encoded());
        assert!(Rollup::decode_payload(&payload, ROLLUP_VERSION).is_err());

        let d = digest("s", &[("hot", 1)]);
        let mut payload = Vec::new();
        let _ = write_varint(&mut payload, 2);
        payload.extend_from_slice(&d.encoded());
        payload.extend_from_slice(&d.encoded());
        assert!(
            Rollup::decode_payload(&payload, ROLLUP_VERSION).is_err(),
            "duplicate keys must be rejected"
        );
    }

    fn window_digest(index: u64, width: u64) -> WindowDigest {
        let base = digest("w", &[("hot", 30)]);
        WindowDigest {
            index,
            lo: index * width,
            hi: (index + 1) * width,
            cp_length: width,
            makespan: width,
            locks: base.locks,
        }
    }

    #[test]
    fn window_annotation_roundtrips() {
        let mut r = rollup(&["s1"]);
        let mut annotated = digest("s2", &[("hot", 40)]);
        annotated.window = Some(window_digest(7, 100));
        r.insert(annotated.clone());
        let back = Rollup::from_bytes(&r.to_bytes()).unwrap();
        assert_eq!(back, r);
        assert_eq!(back.sessions["s2"].window, annotated.window);
        assert_eq!(back.sessions["s1"].window, None);
    }

    #[test]
    fn v1_documents_still_decode() {
        // A version-1 frame has no window trailer on any digest; the v2
        // reader must accept it and decode `window: None`.
        let r = rollup(&["s1", "s2"]);
        let mut v1_payload = Vec::new();
        let _ = write_varint(&mut v1_payload, r.sessions.len() as u64);
        for d in r.sessions.values() {
            v1_payload.extend_from_slice(&d.encoded_v(1));
        }
        let mut bytes = Vec::new();
        bytes.extend_from_slice(ROLLUP_MAGIC);
        let _ = write_varint(&mut bytes, 1u64);
        let _ = write_varint(&mut bytes, v1_payload.len() as u64);
        bytes.extend_from_slice(&v1_payload);
        bytes.extend_from_slice(&crc32(&v1_payload).to_le_bytes());
        let back = Rollup::from_bytes(&bytes).unwrap();
        assert_eq!(back, r);
        assert!(back.sessions.values().all(|d| d.window.is_none()));
    }

    #[test]
    fn window_corruption_is_detected() {
        let mut r = Rollup::new();
        let mut d = digest("s", &[("hot", 40)]);
        d.window = Some(window_digest(3, 50));
        r.insert(d);
        let bytes = r.to_bytes();
        for cut in 0..bytes.len() {
            assert!(Rollup::from_bytes(&bytes[..cut]).is_err(), "cut at {cut}");
        }
        for at in 0..bytes.len() {
            let mut hurt = bytes.clone();
            hurt[at] ^= 0x40;
            assert!(Rollup::from_bytes(&hurt).is_err(), "flip at {at}");
        }
    }

    #[test]
    fn cp_share_fixed_point() {
        assert_eq!(cp_share_ppm(0, 0), 0);
        assert_eq!(cp_share_ppm(5, 0), 0);
        assert_eq!(cp_share_ppm(50, 100), 500_000);
        assert_eq!(cp_share_ppm(1, 3), 333_333);
        assert_eq!(cp_share_ppm(u64::MAX, 1), u64::MAX);
    }
}

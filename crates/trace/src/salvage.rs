//! Best-effort trace repair: keep what's consistent, quarantine the rest.
//!
//! [`Trace::validate`] rejects a whole trace on the first protocol
//! violation. That is the right posture for the deterministic simulator,
//! but real instrumented runs arrive torn (a crashed producer), skewed
//! (cross-core clock drift) or referencing objects whose registration
//! frames were lost. Salvage takes the opposite posture:
//!
//! * each thread stream is truncated to its *longest protocol-consistent
//!   prefix* — the first unrecoverable protocol violation cuts the
//!   stream there, never the whole trace;
//! * backwards timestamps are clamped to the running per-thread maximum;
//! * events referencing unregistered objects (or objects of the wrong
//!   kind) and out-of-range thread ids are dropped individually;
//! * open critical sections, waits and barrier episodes at a cut are
//!   closed with synthesized events (zero-length holds for in-flight
//!   acquires, excision for abandoned contended waits), matching the
//!   conventions of the collector's assembler, and a `ThreadExit` is
//!   appended;
//! * a thread with nothing salvageable is *quarantined*: it stays in the
//!   trace as an empty stream so thread ids remain dense, and the
//!   critical-path walker treats references to it gracefully.
//!
//! The result always passes [`Trace::validate`], and salvaging an
//! already-valid trace is the identity — same trace, clean report.
//!
//! Salvage is also where a [`Budget`] is applied to in-memory traces:
//! excess threads and events are tail-truncated deterministically (in
//! `(thread, index)` order) and the report is marked degraded.

use crate::anomaly::Anomaly;
use crate::budget::Budget;
use crate::error::Result;
use crate::event::{Event, EventKind, SEQ_UNKNOWN};
use crate::ids::{ObjId, ObjInfo, ObjKind, ThreadId};
use crate::trace::{ThreadStream, Trace};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::path::Path;

/// Per-thread salvage accounting. Only threads that needed repairs
/// appear in [`SalvageReport::threads`].
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ThreadSalvage {
    /// The thread (position in the salvaged trace).
    pub tid: ThreadId,
    /// Original events kept.
    pub kept: u64,
    /// Original events dropped (truncation, dangling refs, budget).
    pub dropped: u64,
    /// Timestamps clamped to the running maximum.
    pub clamped: u64,
    /// Events synthesized to close the stream.
    pub synthesized: u64,
    /// True if nothing of a non-empty stream was salvageable.
    pub quarantined: bool,
}

/// What salvage did to a trace: aggregate counts, per-thread detail for
/// repaired threads, and the anomaly list explaining every repair.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SalvageReport {
    /// Original events kept across all threads.
    pub events_kept: u64,
    /// Original events dropped across all threads.
    pub events_dropped: u64,
    /// Events synthesized (stream closes, missing starts/exits).
    pub events_synthesized: u64,
    /// Backwards timestamps clamped.
    pub timestamps_clamped: u64,
    /// Threads quarantined as empty streams.
    pub threads_quarantined: u64,
    /// True if a resource budget (events, threads, bytes, deadline)
    /// truncated the input.
    pub degraded: bool,
    /// Fraction of input events kept (1.0 when nothing was dropped).
    pub confidence: f64,
    /// Per-thread detail, repaired threads only.
    #[serde(default, skip_serializing_if = "Vec::is_empty")]
    pub threads: Vec<ThreadSalvage>,
    /// Every repair and degradation, in discovery order.
    #[serde(default, skip_serializing_if = "Vec::is_empty")]
    pub anomalies: Vec<Anomaly>,
}

impl Default for SalvageReport {
    fn default() -> Self {
        SalvageReport {
            events_kept: 0,
            events_dropped: 0,
            events_synthesized: 0,
            timestamps_clamped: 0,
            threads_quarantined: 0,
            degraded: false,
            confidence: 1.0,
            threads: Vec::new(),
            anomalies: Vec::new(),
        }
    }
}

impl SalvageReport {
    /// True if salvage changed nothing: no drops, no repairs, no
    /// degradation. A clean report means the salvaged trace is the
    /// input trace.
    pub fn is_clean(&self) -> bool {
        self.events_dropped == 0
            && self.events_synthesized == 0
            && self.timestamps_clamped == 0
            && self.threads_quarantined == 0
            && !self.degraded
            && self.threads.is_empty()
            && self.anomalies.is_empty()
    }

    /// Fold decode-stage anomalies (corrupt sections, checksum
    /// mismatches, decode-time budget truncations) into the report,
    /// ahead of the repair anomalies.
    pub fn absorb_decode_anomalies(&mut self, mut decode: Vec<Anomaly>) {
        if decode.is_empty() {
            return;
        }
        self.degraded = self.degraded || decode.iter().any(budgetary);
        decode.append(&mut self.anomalies);
        self.anomalies = decode;
    }

    fn finalize(&mut self) {
        let considered = self.events_kept + self.events_dropped;
        self.confidence =
            if considered == 0 { 1.0 } else { self.events_kept as f64 / considered as f64 };
        self.degraded = self.degraded || self.anomalies.iter().any(budgetary);
    }
}

fn budgetary(a: &Anomaly) -> bool {
    matches!(
        a,
        Anomaly::BudgetEventsTruncated { .. }
            | Anomaly::BudgetThreadsTruncated { .. }
            | Anomaly::BudgetBytesTruncated { .. }
            | Anomaly::DeadlineExceeded { .. }
    )
}

/// A salvaged trace plus the report of what it took.
#[derive(Debug, Clone, PartialEq)]
pub struct Salvaged {
    /// The repaired trace; always passes [`Trace::validate`].
    pub trace: Trace,
    /// What was repaired, dropped and synthesized.
    pub report: SalvageReport,
}

/// Salvage a trace under a budget. See the module docs for the repair
/// rules. On a valid trace within budget this is the identity.
pub fn salvage_trace(trace: &Trace, budget: &Budget) -> Salvaged {
    let mut report = SalvageReport::default();
    let mut out = Trace::new(trace.meta.clone());
    out.objects = trace.objects.clone();

    // Thread budget: drop trailing streams whole.
    let total_threads = trace.threads.len();
    let kept_threads = budget.thread_allowance(total_threads).unwrap_or(total_threads);
    if kept_threads < total_threads {
        report.anomalies.push(Anomaly::BudgetThreadsTruncated {
            kept: kept_threads as u64,
            dropped: (total_threads - kept_threads) as u64,
        });
        for stream in &trace.threads[kept_threads..] {
            report.events_dropped += stream.events.len() as u64;
        }
    }

    // Event budget: a single allowance consumed in (thread, index)
    // order, combining the explicit event cap with the one implied by
    // the resident-byte cap.
    let total_events: u64 =
        trace.threads[..kept_threads].iter().map(|s| s.events.len() as u64).sum();
    let mut allowance = u64::MAX;
    if let Some(cap) = budget.event_allowance(total_events) {
        allowance = cap;
        report
            .anomalies
            .push(Anomaly::BudgetEventsTruncated { kept: cap, dropped: total_events - cap });
    }
    if let Some(max_bytes) = budget.max_bytes {
        let per_event = std::mem::size_of::<Event>() as u64;
        let byte_cap = max_bytes / per_event.max(1);
        if total_events > byte_cap {
            allowance = allowance.min(byte_cap);
            report.anomalies.push(Anomaly::BudgetBytesTruncated {
                limit: max_bytes,
                needed: total_events.saturating_mul(per_event),
            });
        }
    }

    let mut remaining = allowance;
    let mut deadline_hit = false;
    for (pos, stream) in trace.threads.iter().take(kept_threads).enumerate() {
        if !deadline_hit && budget.deadline_expired() {
            deadline_hit = true;
            report.anomalies.push(Anomaly::DeadlineExceeded { stage: "salvage".into() });
        }
        let take = if deadline_hit { 0 } else { stream.events.len().min(remaining as usize) };
        remaining -= take as u64;
        let (salvaged, stats) = salvage_stream(&out.objects, kept_threads, pos, stream, take);
        report.events_kept += stats.kept;
        report.events_dropped += stats.dropped;
        report.events_synthesized += stats.synthesized;
        report.timestamps_clamped += stats.clamped;
        if stats.quarantined {
            report.threads_quarantined += 1;
        }
        if stats.dropped > 0 || stats.clamped > 0 || stats.synthesized > 0 || stats.quarantined {
            report.threads.push(stats.accounting);
        }
        report.anomalies.extend(stats.anomalies);
        out.threads.push(salvaged);
    }

    report.finalize();
    debug_assert!(out.validate().is_ok(), "salvaged trace must validate");
    Salvaged { trace: out, report }
}

/// Load a trace file (binary CLTR or JSONL, sniffed by magic) in salvage
/// mode. Binary traces decode tolerantly — corrupt or truncated thread
/// sections contribute their decodable prefix — and the decoded trace is
/// then repaired under the budget. Only an unreadable preamble (or I/O
/// failure) is an error.
pub fn load(path: impl AsRef<Path>, budget: &Budget) -> Result<Salvaged> {
    load_timed(path, budget, &mut |_, _| {})
}

/// [`load`] with per-stage wall-time reporting: `observe` is called once
/// with `("decode", elapsed)` after the file is read and decoded and once
/// with `("salvage", elapsed)` after the repair pass. The result is
/// identical to [`load`] — the observer only watches the clock.
pub fn load_timed(
    path: impl AsRef<Path>,
    budget: &Budget,
    observe: &mut dyn FnMut(&'static str, std::time::Duration),
) -> Result<Salvaged> {
    let decode_started = std::time::Instant::now();
    let buf = std::fs::read(&path)?;
    if buf.len() >= 4 && &buf[..4] == b"CLTR" {
        let (trace, decode_anomalies) = crate::codec::read_trace_bytes_salvage(&buf, budget)?;
        observe("decode", decode_started.elapsed());
        let salvage_started = std::time::Instant::now();
        let mut s = salvage_trace(&trace, budget);
        s.report.absorb_decode_anomalies(decode_anomalies);
        s.report.finalize();
        observe("salvage", salvage_started.elapsed());
        Ok(s)
    } else {
        let trace = crate::jsonl::read_trace(&mut &buf[..])?;
        observe("decode", decode_started.elapsed());
        let salvage_started = std::time::Instant::now();
        let s = salvage_trace(&trace, budget);
        observe("salvage", salvage_started.elapsed());
        Ok(s)
    }
}

struct StreamStats {
    kept: u64,
    dropped: u64,
    clamped: u64,
    synthesized: u64,
    quarantined: bool,
    accounting: ThreadSalvage,
    anomalies: Vec<Anomaly>,
}

fn expected_kind(kind: &EventKind) -> Option<ObjKind> {
    match kind {
        EventKind::LockAcquire { .. }
        | EventKind::LockContended { .. }
        | EventKind::LockObtain { .. }
        | EventKind::LockRelease { .. } => Some(ObjKind::Lock),
        EventKind::BarrierArrive { .. } | EventKind::BarrierDepart { .. } => Some(ObjKind::Barrier),
        EventKind::CondWaitBegin { .. }
        | EventKind::CondWakeup { .. }
        | EventKind::CondSignal { .. }
        | EventKind::CondBroadcast { .. } => Some(ObjKind::Condvar),
        EventKind::Marker { .. } => Some(ObjKind::Marker),
        EventKind::RwAcquire { .. }
        | EventKind::RwContended { .. }
        | EventKind::RwObtain { .. }
        | EventKind::RwRelease { .. } => Some(ObjKind::RwLock),
        _ => None,
    }
}

/// Salvage one stream: `take` caps how many input events may be
/// considered (the event budget); `nthreads` bounds valid thread refs.
fn salvage_stream(
    objects: &[ObjInfo],
    nthreads: usize,
    pos: usize,
    stream: &ThreadStream,
    take: usize,
) -> (ThreadStream, StreamStats) {
    let tid = ThreadId(pos as u32);
    let mut anomalies = Vec::new();
    if stream.tid != tid {
        anomalies.push(Anomaly::CorruptSection {
            tid,
            recovered: 0,
            detail: format!("stream id {} at position {pos} remapped", stream.tid),
        });
    }

    let mut kept: Vec<Event> = Vec::with_capacity(take);
    let mut kept_orig = 0u64;
    let mut clamped = 0u64;
    let mut synthesized = 0u64;

    // Per-lock state: 0 idle, 1 acquiring, 2 contended, 3 held — the
    // same machine `Trace::validate` runs. `*_open` tracks the kept
    // indexes of the in-flight acquire/contended events so an abandoned
    // contended wait can be excised at close time.
    let mut lock_state: BTreeMap<ObjId, u8> = BTreeMap::new();
    let mut lock_open: BTreeMap<ObjId, Vec<usize>> = BTreeMap::new();
    let mut rw_state: BTreeMap<ObjId, u8> = BTreeMap::new();
    let mut rw_open: BTreeMap<ObjId, Vec<usize>> = BTreeMap::new();
    let mut rw_write: BTreeMap<ObjId, bool> = BTreeMap::new();
    let mut in_barrier: Option<(ObjId, u32)> = None;
    let mut in_wait: Option<ObjId> = None;

    let mut last_ts = 0u64;
    let mut ended_clean = false;
    let mut synthesized_start = false;

    for (i, ev) in stream.events.iter().take(take).enumerate() {
        let mut ev = *ev;

        // Dangling references: drop the single event, keep scanning.
        if let Some(obj) = ev.kind.obj() {
            let ok = matches!(objects.get(obj.index()), Some(info)
                if Some(info.kind) == expected_kind(&ev.kind));
            if !ok {
                anomalies.push(Anomaly::DanglingObjectRef { tid, index: i, obj });
                continue;
            }
        }
        if let Some(peer) = ev.kind.peer_thread() {
            if peer.index() >= nthreads {
                anomalies.push(Anomaly::DanglingThreadRef { tid, index: i, referenced: peer });
                continue;
            }
        }

        // Clock skew: clamp to the running maximum.
        if ev.ts < last_ts {
            ev.ts = last_ts;
            clamped += 1;
        }
        last_ts = ev.ts;

        // Structural protocol: ThreadStart exactly first, ThreadExit
        // only as the true last event over a quiesced thread.
        if kept.is_empty() && ev.kind != EventKind::ThreadStart {
            kept.push(Event::new(ev.ts, EventKind::ThreadStart));
            synthesized += 1;
            synthesized_start = true;
            anomalies.push(Anomaly::SynthesizedStart { tid });
        } else if !kept.is_empty() && ev.kind == EventKind::ThreadStart {
            anomalies.push(Anomaly::ProtocolTruncation {
                tid,
                index: i,
                reason: "duplicate ThreadStart".into(),
            });
            break;
        }
        if ev.kind == EventKind::ThreadExit {
            let quiesced = lock_state.values().all(|&s| s == 0)
                && rw_state.values().all(|&s| s == 0)
                && in_barrier.is_none()
                && in_wait.is_none();
            if i + 1 == stream.events.len() && i + 1 == take && quiesced {
                kept.push(ev);
                kept_orig += 1;
                ended_clean = true;
                break;
            }
            let reason = if quiesced {
                "ThreadExit before end of stream"
            } else {
                "ThreadExit with open sections"
            };
            anomalies.push(Anomaly::ProtocolTruncation { tid, index: i, reason: reason.into() });
            break;
        }

        // Synchronization protocol: first violation cuts the stream.
        let violation: Option<String> = match ev.kind {
            EventKind::LockAcquire { lock } => {
                let st = lock_state.entry(lock).or_insert(0);
                if *st != 0 {
                    Some(format!("acquire of {lock} while in state {st}"))
                } else {
                    *st = 1;
                    lock_open.entry(lock).or_default().push(kept.len());
                    None
                }
            }
            EventKind::LockContended { lock } => {
                let st = lock_state.entry(lock).or_insert(0);
                if *st != 1 {
                    Some(format!("contended on {lock} without acquire"))
                } else {
                    *st = 2;
                    lock_open.entry(lock).or_default().push(kept.len());
                    None
                }
            }
            EventKind::LockObtain { lock } => {
                let st = lock_state.entry(lock).or_insert(0);
                if *st != 1 && *st != 2 {
                    Some(format!("obtain of {lock} without acquire"))
                } else {
                    *st = 3;
                    None
                }
            }
            EventKind::LockRelease { lock } => {
                let st = lock_state.entry(lock).or_insert(0);
                if *st != 3 {
                    Some(format!("release of {lock} not held"))
                } else {
                    *st = 0;
                    lock_open.remove(&lock);
                    None
                }
            }
            EventKind::RwAcquire { lock, write } => {
                let st = rw_state.entry(lock).or_insert(0);
                if *st != 0 {
                    Some(format!("rw-acquire of {lock} while in state {st}"))
                } else {
                    *st = 1;
                    rw_write.insert(lock, write);
                    rw_open.entry(lock).or_default().push(kept.len());
                    None
                }
            }
            EventKind::RwContended { lock, .. } => {
                let st = rw_state.entry(lock).or_insert(0);
                if *st != 1 {
                    Some(format!("rw-contended on {lock} without acquire"))
                } else {
                    *st = 2;
                    rw_open.entry(lock).or_default().push(kept.len());
                    None
                }
            }
            EventKind::RwObtain { lock, .. } => {
                let st = rw_state.entry(lock).or_insert(0);
                if *st != 1 && *st != 2 {
                    Some(format!("rw-obtain of {lock} without acquire"))
                } else {
                    *st = 3;
                    None
                }
            }
            EventKind::RwRelease { lock, .. } => {
                let st = rw_state.entry(lock).or_insert(0);
                if *st != 3 {
                    Some(format!("rw-release of {lock} not held"))
                } else {
                    *st = 0;
                    rw_open.remove(&lock);
                    None
                }
            }
            EventKind::BarrierArrive { barrier, epoch } => match in_barrier {
                Some((b, _)) => Some(format!("arrive at {barrier} while inside {b}")),
                None => {
                    in_barrier = Some((barrier, epoch));
                    None
                }
            },
            EventKind::BarrierDepart { barrier, epoch } => match in_barrier {
                Some((b, e)) if b == barrier && e == epoch => {
                    in_barrier = None;
                    None
                }
                ref other => Some(format!("depart {barrier}@{epoch} but waiting on {other:?}")),
            },
            EventKind::CondWaitBegin { cv } => match in_wait {
                Some(c) => Some(format!("wait on {cv} while waiting on {c}")),
                None => {
                    in_wait = Some(cv);
                    None
                }
            },
            EventKind::CondWakeup { cv, .. } => match in_wait {
                Some(c) if c == cv => {
                    in_wait = None;
                    None
                }
                ref other => Some(format!("wakeup on {cv} but waiting on {other:?}")),
            },
            _ => None,
        };
        if let Some(reason) = violation {
            anomalies.push(Anomaly::ProtocolTruncation { tid, index: i, reason });
            break;
        }

        kept.push(ev);
        kept_orig += 1;
    }

    // Close an unfinished stream: excise abandoned contended waits,
    // zero-close in-flight acquires, release held locks, resolve open
    // waits/barriers, then append the missing ThreadExit.
    if !kept.is_empty() && !ended_clean {
        let mut excise: Vec<usize> = Vec::new();
        for (&lock, st) in &lock_state {
            match st {
                1 => {
                    kept.push(Event::new(last_ts, EventKind::LockObtain { lock }));
                    kept.push(Event::new(last_ts, EventKind::LockRelease { lock }));
                    synthesized += 2;
                }
                2 => excise.extend(lock_open.get(&lock).into_iter().flatten().copied()),
                3 => {
                    kept.push(Event::new(last_ts, EventKind::LockRelease { lock }));
                    synthesized += 1;
                }
                _ => {}
            }
        }
        for (&lock, st) in &rw_state {
            let write = rw_write.get(&lock).copied().unwrap_or(false);
            match st {
                1 => {
                    kept.push(Event::new(last_ts, EventKind::RwObtain { lock, write }));
                    kept.push(Event::new(last_ts, EventKind::RwRelease { lock, write }));
                    synthesized += 2;
                }
                2 => excise.extend(rw_open.get(&lock).into_iter().flatten().copied()),
                3 => {
                    kept.push(Event::new(last_ts, EventKind::RwRelease { lock, write }));
                    synthesized += 1;
                }
                _ => {}
            }
        }
        if let Some(cv) = in_wait {
            kept.push(Event::new(last_ts, EventKind::CondWakeup { cv, signal_seq: SEQ_UNKNOWN }));
            synthesized += 1;
        }
        if let Some((barrier, epoch)) = in_barrier {
            kept.push(Event::new(last_ts, EventKind::BarrierDepart { barrier, epoch }));
            synthesized += 1;
        }
        if !excise.is_empty() {
            excise.sort_unstable();
            let mut next = 0usize;
            let mut idx = 0usize;
            kept.retain(|_| {
                let drop = next < excise.len() && excise[next] == idx;
                if drop {
                    next += 1;
                }
                idx += 1;
                !drop
            });
            kept_orig -= excise.len() as u64;
        }
        kept.push(Event::new(last_ts, EventKind::ThreadExit));
        synthesized += 1;
        anomalies.push(Anomaly::SynthesizedExit { tid });
    }

    // Quarantine: a non-empty input stream with no salvageable events,
    // or one reduced to only synthesized scaffolding.
    let quarantined = !stream.events.is_empty() && kept_orig == 0;
    if quarantined {
        kept.clear();
        synthesized = 0;
        if synthesized_start {
            anomalies.retain(|a| {
                !matches!(a, Anomaly::SynthesizedStart { .. } | Anomaly::SynthesizedExit { .. })
            });
        }
        anomalies.push(Anomaly::QuarantinedThread {
            tid,
            reason: format!("no salvageable events out of {}", stream.events.len()),
        });
    }

    let dropped = stream.events.len() as u64 - kept_orig;
    let stats = StreamStats {
        kept: kept_orig,
        dropped,
        clamped,
        synthesized,
        quarantined,
        accounting: ThreadSalvage {
            tid,
            kept: kept_orig,
            dropped,
            clamped,
            synthesized,
            quarantined,
        },
        anomalies,
    };
    let mut out = ThreadStream::new(tid);
    out.name = stream.name.clone();
    out.events = kept;
    (out, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::TraceBuilder;

    fn valid_trace() -> Trace {
        let mut b = TraceBuilder::new("salvage-sample");
        let l = b.lock("L");
        let bar = b.barrier("B");
        let cv = b.condvar("CV");
        let t0 = b.thread("main", 0);
        let t1 = b.thread("w", 0);
        b.on(t1).work(2).cs_blocked(l, 5, 2).barrier(bar, 0, 12).cond_wait(cv, 16, 1).exit_at(20);
        b.on(t0).cs(l, 5).barrier(bar, 0, 12).work(2).cond_signal(cv, 1).exit_at(21);
        b.build().unwrap()
    }

    #[test]
    fn valid_trace_is_identity() {
        let t = valid_trace();
        let s = salvage_trace(&t, &Budget::unlimited());
        assert_eq!(s.trace, t);
        assert!(s.report.is_clean(), "{:?}", s.report);
        assert_eq!(s.report.confidence, 1.0);
        assert!(!s.report.degraded);
    }

    #[test]
    fn backwards_timestamp_clamped() {
        let mut t = valid_trace();
        let i = t.threads[0].events.len() - 2;
        t.threads[0].events[i].ts = 1; // jumps backwards
        assert!(t.validate().is_err());
        let s = salvage_trace(&t, &Budget::unlimited());
        s.trace.validate().unwrap();
        assert_eq!(s.report.timestamps_clamped, 1);
        assert_eq!(s.report.events_dropped, 0);
        assert!(!s.report.is_clean());
    }

    #[test]
    fn missing_exit_synthesized() {
        let mut t = valid_trace();
        t.threads[0].events.pop();
        assert!(t.validate().is_err());
        let s = salvage_trace(&t, &Budget::unlimited());
        s.trace.validate().unwrap();
        assert!(s.report.events_synthesized >= 1);
        assert!(s.report.anomalies.iter().any(|a| matches!(a, Anomaly::SynthesizedExit { .. })));
    }

    #[test]
    fn held_lock_at_cut_released() {
        let mut t = valid_trace();
        // Cut thread 0 right after its LockObtain: the lock is held.
        let obtain = t.threads[0]
            .events
            .iter()
            .position(|e| matches!(e.kind, EventKind::LockObtain { .. }))
            .unwrap();
        t.threads[0].events.truncate(obtain + 1);
        let s = salvage_trace(&t, &Budget::unlimited());
        s.trace.validate().unwrap();
        let kinds: Vec<_> = s.trace.threads[0].events.iter().map(|e| e.kind).collect();
        assert!(kinds.iter().any(|k| matches!(k, EventKind::LockRelease { .. })));
        assert!(matches!(kinds.last(), Some(EventKind::ThreadExit)));
    }

    #[test]
    fn abandoned_contended_wait_excised() {
        let mut t = valid_trace();
        // Cut thread 1 right after LockContended: acquire+contended with
        // no obtain must be excised, not left dangling.
        let cont = t.threads[1]
            .events
            .iter()
            .position(|e| matches!(e.kind, EventKind::LockContended { .. }))
            .unwrap();
        t.threads[1].events.truncate(cont + 1);
        let s = salvage_trace(&t, &Budget::unlimited());
        s.trace.validate().unwrap();
        let kinds: Vec<_> = s.trace.threads[1].events.iter().map(|e| e.kind).collect();
        assert!(!kinds
            .iter()
            .any(|k| matches!(k, EventKind::LockAcquire { .. } | EventKind::LockContended { .. })));
    }

    #[test]
    fn protocol_violation_cuts_prefix_not_trace() {
        let mut t = valid_trace();
        // A release without a hold mid-stream on thread 0.
        let l = t.object_by_name("L").unwrap();
        t.threads[0].events.insert(1, Event::new(0, EventKind::LockRelease { lock: l }));
        assert!(t.validate().is_err());
        let s = salvage_trace(&t, &Budget::unlimited());
        s.trace.validate().unwrap();
        // Thread 0 is cut at index 1; thread 1 survives whole.
        assert_eq!(s.trace.threads[1].events, t.threads[1].events);
        assert!(s
            .report
            .anomalies
            .iter()
            .any(|a| matches!(a, Anomaly::ProtocolTruncation { tid: ThreadId(0), .. })));
    }

    #[test]
    fn dangling_refs_dropped_individually() {
        let mut t = valid_trace();
        let n = t.threads[0].events.len();
        t.threads[0].events.insert(n - 1, Event::new(21, EventKind::Marker { id: ObjId(99) }));
        t.threads[0]
            .events
            .insert(n - 1, Event::new(21, EventKind::ThreadCreate { child: ThreadId(40) }));
        assert!(t.validate().is_err());
        let s = salvage_trace(&t, &Budget::unlimited());
        s.trace.validate().unwrap();
        assert_eq!(s.report.events_dropped, 2);
        // Everything after the dropped events is retained.
        assert!(matches!(
            s.trace.threads[0].events.last().map(|e| e.kind),
            Some(EventKind::ThreadExit)
        ));
        assert_eq!(s.trace.threads[0].events.len(), t.threads[0].events.len() - 2);
    }

    #[test]
    fn hopeless_thread_quarantined_others_survive() {
        let mut t = valid_trace();
        // Thread 0's stream becomes garbage from the first event.
        let l = t.object_by_name("L").unwrap();
        t.threads[0].events = vec![Event::new(0, EventKind::LockRelease { lock: l })];
        let s = salvage_trace(&t, &Budget::unlimited());
        s.trace.validate().unwrap();
        assert!(s.trace.threads[0].events.is_empty());
        assert_eq!(s.report.threads_quarantined, 1);
        assert!(!s.trace.threads[1].events.is_empty());
    }

    #[test]
    fn event_budget_tail_truncates_deterministically() {
        let t = valid_trace();
        let budget = Budget::unlimited().with_max_events(5);
        let s = salvage_trace(&t, &budget);
        s.trace.validate().unwrap();
        assert!(s.report.degraded);
        assert!(s
            .report
            .anomalies
            .iter()
            .any(|a| matches!(a, Anomaly::BudgetEventsTruncated { kept: 5, .. })));
        // Thread 0 keeps a (closed) 5-event prefix; thread 1 is emptied.
        assert_eq!(s.trace.threads[1].events.len(), 0);
        let again = salvage_trace(&t, &budget);
        assert_eq!(again.trace, s.trace);
        assert_eq!(again.report, s.report);
    }

    #[test]
    fn thread_budget_drops_trailing_streams() {
        let t = valid_trace();
        let s = salvage_trace(&t, &Budget::unlimited().with_max_threads(1));
        s.trace.validate().unwrap();
        assert_eq!(s.trace.num_threads(), 1);
        assert!(s.report.degraded);
    }

    #[test]
    fn expired_deadline_degrades_instead_of_aborting() {
        let t = valid_trace();
        let budget = Budget {
            deadline: Some(std::time::Instant::now() - std::time::Duration::from_millis(1)),
            ..Default::default()
        };
        let s = salvage_trace(&t, &budget);
        s.trace.validate().unwrap();
        assert!(s.report.degraded);
        assert!(s.report.anomalies.iter().any(|a| matches!(a, Anomaly::DeadlineExceeded { .. })));
        assert_eq!(s.trace.num_threads(), t.num_threads());
    }

    #[test]
    fn report_serde_roundtrip() {
        let mut t = valid_trace();
        t.threads[0].events.pop();
        let s = salvage_trace(&t, &Budget::unlimited().with_max_events(4));
        let json = serde_json::to_string(&s.report).unwrap();
        let back: SalvageReport = serde_json::from_str(&json).unwrap();
        assert_eq!(back, s.report);
        // Empty per-thread/anomaly lists are skipped at serialization and
        // must still deserialize (as empty) from the compact form.
        let clean = SalvageReport::default();
        let json = serde_json::to_string(&clean).unwrap();
        assert!(!json.contains("\"threads\"") && !json.contains("\"anomalies\""), "{json}");
        let back: SalvageReport = serde_json::from_str(&json).unwrap();
        assert_eq!(back, clean);
    }
}

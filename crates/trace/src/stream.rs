//! Length-prefixed streaming frame format for live trace transport.
//!
//! Where [`codec`](crate::codec) serializes a *complete* trace, this module
//! frames the same event encoding for incremental transport over a socket:
//! a producer emits registration and event frames as the workload runs, and
//! a collector assembles them into a [`Trace`] on the other end.
//!
//! Layout (integers are the codec's LEB128 varints):
//!
//! ```text
//! header:  magic "CLSM" | protocol version varint
//!          | token-len varint | token bytes | start-seq varint
//!          | CRC32(version..start-seq) u32-LE          (version ≥ 2)
//! frame:   payload-len varint | payload bytes | CRC32(payload) u32-LE
//! payload: frame-type u8 | type-specific body
//! ```
//!
//! The version-2 header carries the resumable-session handshake: `token`
//! names the logical session across reconnects (empty for one-shot
//! streams such as files or plain pushes), and `start-seq` is the
//! sequence number of the first frame this connection will carry. Frame
//! sequence numbers are implicit — frame *i* of a session has sequence
//! number `start-seq + i` — so resuming costs no per-frame overhead. A
//! collector answering a non-empty token replies with an [`ack`]
//! (`CLSA` magic | seq varint | CRC32) naming the highest frame sequence
//! it has durably received; the producer replays only the gap.
//!
//! [`ack`]: write_ack
//!
//! Frame types:
//!
//! | type | name    | body                                                |
//! |------|---------|-----------------------------------------------------|
//! | 0    | Start   | JSON `TraceMeta`                                    |
//! | 1    | Param   | key len+bytes, value len+bytes                      |
//! | 2    | Objects | first id varint, count, then (kind u8, name)        |
//! | 3    | Thread  | tid varint, has-name u8 (+ name len+bytes)          |
//! | 4    | Events  | tid varint, count, events (delta-ts, frame-local)   |
//! | 5    | End     | empty — graceful end of session                     |
//!
//! Every frame is self-contained: event timestamps are delta-encoded
//! against the *previous event in the same frame* (the first event carries
//! its absolute timestamp), so a frame can be decoded without sender-side
//! history and a dropped frame never corrupts its successors.

use crate::codec::{
    kind_from_u8, kind_to_u8, raw_tid, raw_varint, read_bytes, read_event, read_string, read_tid,
    read_varint, write_bytes, write_event, write_varint, RawEventIter,
};
use crate::error::{Result, TraceError};
use crate::event::Event;
use crate::ids::{ObjInfo, ThreadId};
use crate::trace::{ThreadStream, Trace, TraceMeta};
use std::io::{ErrorKind, Read, Write};

/// Stream header magic.
pub const STREAM_MAGIC: &[u8; 4] = b"CLSM";
/// Current stream protocol version (2: resumable-session handshake).
pub const STREAM_VERSION: u64 = 2;
/// Oldest protocol version still accepted by [`StreamReader`]. Version 1
/// headers carry no handshake fields; they decode to the default
/// [`Handshake`] (anonymous, sequence 0).
pub const MIN_STREAM_VERSION: u64 = 1;
/// Collector acknowledgement magic (see [`write_ack`]).
pub const ACK_MAGIC: &[u8; 4] = b"CLSA";

/// Upper bound on a single frame's payload (defense against corrupt
/// length prefixes).
pub const MAX_FRAME_LEN: usize = 1 << 26;
/// Upper bound on a handshake session token.
pub const MAX_TOKEN_LEN: usize = 128;

/// The per-connection handshake carried by the stream header.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Handshake {
    /// Session resume token; empty for one-shot (non-resumable) streams.
    pub token: Vec<u8>,
    /// Sequence number of the first frame this connection carries.
    pub start_seq: u64,
}

impl Handshake {
    /// Whether the producer asked for a resumable session.
    pub fn resumable(&self) -> bool {
        !self.token.is_empty()
    }
}

/// One unit of the streaming protocol.
#[derive(Debug, Clone, PartialEq)]
pub enum Frame {
    /// Session start: the trace metadata (app name, clock domain, any
    /// params known up front).
    Start {
        /// Metadata of the trace being streamed.
        meta: TraceMeta,
    },
    /// A `key = value` trace parameter discovered mid-run.
    Param {
        /// Parameter name.
        key: String,
        /// Parameter value.
        value: String,
    },
    /// Registration of a contiguous run of synchronization objects.
    Objects {
        /// Object id of `objects[0]`; ids are dense, so `objects[i]` has
        /// id `first_id + i`.
        first_id: u32,
        /// The registered objects, in id order.
        objects: Vec<ObjInfo>,
    },
    /// Registration of a thread (its stream may receive events from the
    /// next frame on).
    Thread {
        /// The thread's trace id.
        tid: ThreadId,
        /// Optional human-readable name.
        name: Option<String>,
    },
    /// A batch of events for one thread, in timestamp order.
    Events {
        /// The thread the events belong to.
        tid: ThreadId,
        /// The events, non-decreasing timestamps.
        events: Vec<Event>,
    },
    /// Graceful end of the session; no frames follow.
    End,
}

// ----------------------------------------------------------- raw frames

/// A validated frame payload kept as wire bytes.
///
/// The collector's hot receive path moves frames from socket to journal
/// to assembler without re-encoding them and without materializing an
/// owned [`Frame`] per hop: [`StreamReader::next_frame_raw`] CRC-checks
/// and grammar-validates the payload once at receive time, and the
/// resulting `RawFrame` can be journaled verbatim
/// ([`StreamWriter::write_raw_frame`] — byte-identical to re-encoding,
/// since [`encode_payload`] is canonical) and folded into a trace through
/// the borrowed event iterator ([`RawFrame::events`]) instead of a
/// `Vec<Event>`. [`RawFrame::decode`] recovers the owned frame for the
/// compatibility path.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RawFrame {
    payload: Vec<u8>,
}

impl RawFrame {
    /// Wrap `payload` after validating its grammar: exactly what
    /// [`decode_payload`] would accept, rejected with the same errors.
    pub fn new(payload: Vec<u8>) -> Result<Self> {
        validate_payload(&payload)?;
        Ok(RawFrame { payload })
    }

    /// Canonically encode an owned frame (registration paths, tests).
    pub fn encode(frame: &Frame) -> Result<Self> {
        Ok(RawFrame { payload: encode_payload(frame)? })
    }

    /// The frame-type byte (`0` Start … `5` End).
    pub fn frame_type(&self) -> u8 {
        // validate_payload rejects empty payloads, so the byte exists.
        self.payload[0]
    }

    /// Whether this is the graceful `End` frame.
    pub fn is_end(&self) -> bool {
        self.frame_type() == 5
    }

    /// The validated wire payload.
    pub fn payload(&self) -> &[u8] {
        &self.payload
    }

    /// Decode to an owned [`Frame`] (the compatibility path). Cannot fail
    /// beyond the validation already done at construction.
    pub fn decode(&self) -> Result<Frame> {
        decode_payload(&self.payload)
    }

    /// For an `Events` frame: the target thread and a borrowed iterator
    /// over the payload's events, decoded lazily without an intermediate
    /// `Vec<Event>`. `None` for every other frame type.
    pub fn events(&self) -> Option<(ThreadId, RawEventIter<'_>)> {
        if self.frame_type() != 4 {
            return None;
        }
        let mut rem = &self.payload[1..];
        // Validated at construction: these reads cannot fail.
        let tid = raw_tid(&mut rem).ok()?;
        let count = raw_varint(&mut rem).ok()?;
        Some((tid, RawEventIter::new(rem, count)))
    }
}

/// Check that `payload` is a well-formed frame payload without building
/// the owned [`Frame`]. The hot `Events` type is scanned in place through
/// [`RawEventIter`]; the rare registration types are validated by a full
/// decode, which keeps error parity with [`decode_payload`] exact.
fn validate_payload(payload: &[u8]) -> Result<()> {
    match payload.first() {
        Some(4) => {
            let mut rem = &payload[1..];
            raw_tid(&mut rem)?;
            let count = raw_varint(&mut rem)?;
            if count > MAX_FRAME_LEN as u64 {
                return Err(TraceError::Decode(format!("unreasonable event count {count}")));
            }
            let mut iter = RawEventIter::new(rem, count);
            for ev in iter.by_ref() {
                ev?;
            }
            if !iter.remaining_bytes().is_empty() {
                return Err(TraceError::Decode("trailing bytes in frame payload".into()));
            }
            Ok(())
        }
        Some(_) => decode_payload(payload).map(|_| ()),
        None => Err(TraceError::Decode("empty frame payload".into())),
    }
}

// ------------------------------------------------------------------ CRC32

// The implementation lives in [`crate::crc`] (with a hardware-folded fast
// path); re-exported here because the stream formats are its historical
// home and every caller imports it from this path.
pub use crate::crc::{crc32, crc32_finish, crc32_update, CRC32_INIT};

// --------------------------------------------------------------- encoding

fn encode_payload(frame: &Frame) -> Result<Vec<u8>> {
    let mut out = Vec::new();
    match frame {
        Frame::Start { meta } => {
            out.push(0);
            write_bytes(&mut out, &serde_json::to_vec(meta)?)?;
        }
        Frame::Param { key, value } => {
            out.push(1);
            write_bytes(&mut out, key.as_bytes())?;
            write_bytes(&mut out, value.as_bytes())?;
        }
        Frame::Objects { first_id, objects } => {
            out.push(2);
            write_varint(&mut out, *first_id as u64)?;
            write_varint(&mut out, objects.len() as u64)?;
            for obj in objects {
                out.push(kind_to_u8(obj.kind));
                write_bytes(&mut out, obj.name.as_bytes())?;
            }
        }
        Frame::Thread { tid, name } => {
            out.push(3);
            write_varint(&mut out, tid.0 as u64)?;
            match name {
                Some(n) => {
                    out.push(1);
                    write_bytes(&mut out, n.as_bytes())?;
                }
                None => out.push(0),
            }
        }
        Frame::Events { tid, events } => {
            out.push(4);
            write_varint(&mut out, tid.0 as u64)?;
            write_varint(&mut out, events.len() as u64)?;
            let mut prev = 0u64;
            for ev in events {
                if ev.ts < prev {
                    return Err(TraceError::Decode(format!(
                        "events frame not sorted: {} after {prev}",
                        ev.ts
                    )));
                }
                write_event(&mut out, prev, ev)?;
                prev = ev.ts;
            }
        }
        Frame::End => out.push(5),
    }
    Ok(out)
}

fn decode_payload(payload: &[u8]) -> Result<Frame> {
    // Decode through a plain slice cursor: `Read for &[u8]` advances the
    // slice in place, so the sub-byte reads inline to pointer bumps with
    // no position bookkeeping.
    let mut inp: &[u8] = payload;
    let mut ty = [0u8; 1];
    inp.read_exact(&mut ty)?;
    let frame = match ty[0] {
        0 => {
            let meta: TraceMeta = serde_json::from_slice(&read_bytes(&mut inp)?)?;
            Frame::Start { meta }
        }
        1 => Frame::Param { key: read_string(&mut inp)?, value: read_string(&mut inp)? },
        2 => {
            let first_id = read_varint(&mut inp)?;
            let first_id = u32::try_from(first_id)
                .map_err(|_| TraceError::Decode("object id overflow".into()))?;
            let count = read_varint(&mut inp)? as usize;
            if count > MAX_FRAME_LEN {
                return Err(TraceError::Decode(format!("unreasonable object count {count}")));
            }
            let mut objects = Vec::with_capacity(count.min(1 << 16));
            for _ in 0..count {
                let mut k = [0u8; 1];
                inp.read_exact(&mut k)?;
                objects.push(ObjInfo { kind: kind_from_u8(k[0])?, name: read_string(&mut inp)? });
            }
            Frame::Objects { first_id, objects }
        }
        3 => {
            let tid = read_tid(&mut inp)?;
            let mut has_name = [0u8; 1];
            inp.read_exact(&mut has_name)?;
            let name = match has_name[0] {
                0 => None,
                1 => Some(read_string(&mut inp)?),
                other => return Err(TraceError::Decode(format!("bad name flag {other}"))),
            };
            Frame::Thread { tid, name }
        }
        4 => {
            let tid = read_tid(&mut inp)?;
            let count = read_varint(&mut inp)? as usize;
            if count > MAX_FRAME_LEN {
                return Err(TraceError::Decode(format!("unreasonable event count {count}")));
            }
            let mut events = Vec::with_capacity(count.min(1 << 16));
            let mut prev = 0u64;
            for _ in 0..count {
                let ev = read_event(&mut inp, prev)?;
                prev = ev.ts;
                events.push(ev);
            }
            Frame::Events { tid, events }
        }
        5 => Frame::End,
        other => return Err(TraceError::Decode(format!("bad frame type {other}"))),
    };
    if !inp.is_empty() {
        return Err(TraceError::Decode("trailing bytes in frame payload".into()));
    }
    Ok(frame)
}

// -------------------------------------------------------------- writer

/// Writes the stream header and frames to an underlying writer.
pub struct StreamWriter<W: Write> {
    out: W,
}

impl<W: Write> StreamWriter<W> {
    /// Write an anonymous (non-resumable) `CLSM` header and wrap `out`
    /// for frame writing.
    pub fn new(out: W) -> Result<Self> {
        Self::with_handshake(out, &Handshake::default())
    }

    /// Write a `CLSM` header carrying the given handshake and wrap `out`
    /// for frame writing.
    pub fn with_handshake(mut out: W, handshake: &Handshake) -> Result<Self> {
        if handshake.token.len() > MAX_TOKEN_LEN {
            return Err(TraceError::Decode(format!(
                "session token length {} exceeds limit {MAX_TOKEN_LEN}",
                handshake.token.len()
            )));
        }
        out.write_all(STREAM_MAGIC)?;
        // The handshake fields are CRC-protected as a unit so a corrupted
        // header is rejected instead of desynchronizing the frame stream.
        let mut fields = Vec::new();
        write_varint(&mut fields, STREAM_VERSION)?;
        write_bytes(&mut fields, &handshake.token)?;
        write_varint(&mut fields, handshake.start_seq)?;
        out.write_all(&fields)?;
        out.write_all(&crc32(&fields).to_le_bytes())?;
        Ok(StreamWriter { out })
    }

    /// Wrap `out` for frame writing *without* emitting a header — for
    /// appending to a stream whose header was already written (e.g.
    /// reopening a journal file after recovery).
    pub fn append(out: W) -> Self {
        StreamWriter { out }
    }

    /// Append one frame (length prefix, payload, CRC).
    pub fn write_frame(&mut self, frame: &Frame) -> Result<()> {
        let payload = encode_payload(frame)?;
        self.write_payload(&payload)
    }

    /// Append an already-encoded frame verbatim (length prefix, the
    /// payload bytes as received, CRC). Because [`encode_payload`] is
    /// canonical, journaling a received [`RawFrame`] this way produces
    /// bytes identical to decoding and re-encoding it.
    pub fn write_raw_frame(&mut self, raw: &RawFrame) -> Result<()> {
        self.write_payload(raw.payload())
    }

    fn write_payload(&mut self, payload: &[u8]) -> Result<()> {
        write_varint(&mut self.out, payload.len() as u64)?;
        self.out.write_all(payload)?;
        self.out.write_all(&crc32(payload).to_le_bytes())?;
        Ok(())
    }

    /// Flush the underlying writer.
    pub fn flush(&mut self) -> Result<()> {
        self.out.flush()?;
        Ok(())
    }

    /// Unwrap the underlying writer.
    pub fn into_inner(self) -> W {
        self.out
    }

    /// Borrow the underlying writer (e.g. to fsync a journal file).
    pub fn inner_mut(&mut self) -> &mut W {
        &mut self.out
    }
}

// -------------------------------------------------------------- reader

/// Reads and validates frames from an underlying reader.
pub struct StreamReader<R: Read> {
    inp: R,
    handshake: Handshake,
    /// Scratch for frame payloads, reused across [`Self::next_frame`]
    /// calls so steady-state reading allocates only for decoded frame
    /// contents, not for every wire payload.
    payload: Vec<u8>,
    /// Cumulative payload bytes consumed (framing overhead excluded).
    consumed: u64,
}

impl<R: Read> StreamReader<R> {
    /// Read and validate the `CLSM` header; rejects unknown protocol
    /// versions and corrupted handshakes. Version-1 headers (no
    /// handshake fields) are still accepted and decode to the default
    /// handshake.
    pub fn new(mut inp: R) -> Result<Self> {
        let mut magic = [0u8; 4];
        inp.read_exact(&mut magic)?;
        if &magic != STREAM_MAGIC {
            return Err(TraceError::Decode("bad magic (not a CLSM stream)".into()));
        }
        // Re-encode the fields as read to verify the header CRC without
        // buffering the raw wire bytes.
        let mut fields = Vec::new();
        let version = read_varint(&mut inp)?;
        write_varint(&mut fields, version)?;
        if version == 1 {
            return Ok(StreamReader {
                inp,
                handshake: Handshake::default(),
                payload: Vec::new(),
                consumed: 0,
            });
        }
        if !(MIN_STREAM_VERSION..=STREAM_VERSION).contains(&version) {
            return Err(TraceError::Decode(format!(
                "unsupported stream version {version} (expected {MIN_STREAM_VERSION}..={STREAM_VERSION})"
            )));
        }
        let token = read_bytes(&mut inp)?;
        if token.len() > MAX_TOKEN_LEN {
            return Err(TraceError::Decode(format!(
                "session token length {} exceeds limit {MAX_TOKEN_LEN}",
                token.len()
            )));
        }
        write_bytes(&mut fields, &token)?;
        let start_seq = read_varint(&mut inp)?;
        write_varint(&mut fields, start_seq)?;
        let mut crc_bytes = [0u8; 4];
        inp.read_exact(&mut crc_bytes)?;
        let expected = u32::from_le_bytes(crc_bytes);
        let actual = crc32(&fields);
        if expected != actual {
            return Err(TraceError::Decode(format!(
                "header CRC mismatch (stored {expected:#010x}, computed {actual:#010x})"
            )));
        }
        Ok(StreamReader {
            inp,
            handshake: Handshake { token, start_seq },
            payload: Vec::new(),
            consumed: 0,
        })
    }

    /// The handshake carried by the stream header.
    pub fn handshake(&self) -> &Handshake {
        &self.handshake
    }

    /// Read the next frame. Returns `Ok(None)` on a clean end-of-stream at
    /// a frame boundary; a mid-frame EOF, length overflow or CRC mismatch
    /// is an error.
    pub fn next_frame(&mut self) -> Result<Option<Frame>> {
        match self.read_payload()? {
            false => Ok(None),
            true => decode_payload(&self.payload).map(Some),
        }
    }

    /// Read the next frame as validated wire bytes, skipping the owned
    /// decode — the collector's hot path. Grammar is checked exactly as
    /// [`Self::next_frame`] would, so the two are interchangeable per
    /// frame; this one just hands back the payload for verbatim journaling
    /// and lazy event iteration (see [`RawFrame`]).
    pub fn next_frame_raw(&mut self) -> Result<Option<RawFrame>> {
        match self.read_payload()? {
            false => Ok(None),
            true => {
                validate_payload(&self.payload)?;
                Ok(Some(RawFrame { payload: std::mem::take(&mut self.payload) }))
            }
        }
    }

    /// Read one CRC-checked payload into the scratch buffer. Returns
    /// `false` on a clean end-of-stream at a frame boundary.
    fn read_payload(&mut self) -> Result<bool> {
        let len = {
            // Distinguish "no more frames" from "torn frame": EOF on the
            // first byte of the length prefix is a clean end.
            let mut first = [0u8; 1];
            loop {
                match self.inp.read(&mut first) {
                    Ok(0) => return Ok(false),
                    Ok(_) => break,
                    Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                    Err(e) => return Err(e.into()),
                }
            }
            if first[0] & 0x80 == 0 {
                first[0] as u64
            } else {
                let rest = read_varint(&mut self.inp)?;
                (first[0] & 0x7f) as u64 | (rest << 7)
            }
        };
        let len = usize::try_from(len).unwrap_or(usize::MAX);
        if len > MAX_FRAME_LEN {
            return Err(TraceError::Decode(format!("frame length {len} exceeds limit")));
        }
        self.payload.clear();
        self.payload.resize(len, 0);
        self.inp.read_exact(&mut self.payload)?;
        self.consumed += len as u64;
        let mut crc_bytes = [0u8; 4];
        self.inp.read_exact(&mut crc_bytes)?;
        let expected = u32::from_le_bytes(crc_bytes);
        let actual = crc32(&self.payload);
        if expected != actual {
            return Err(TraceError::Decode(format!(
                "frame CRC mismatch (stored {expected:#010x}, computed {actual:#010x})"
            )));
        }
        Ok(true)
    }

    /// Total frame payload bytes consumed so far. Framing overhead
    /// (length prefixes, CRC trailers) is excluded, so this is a stable
    /// lower bound on wire bytes — the collector's per-session byte
    /// quota is enforced against it.
    pub fn payload_bytes(&self) -> u64 {
        self.consumed
    }

    /// Unwrap the underlying reader.
    pub fn into_inner(self) -> R {
        self.inp
    }
}

// ------------------------------------------------------------ acks

/// Write a collector acknowledgement: `CLSA` magic, the highest frame
/// sequence durably received (as a varint), and a CRC32 of the varint
/// bytes. Sent by a collector in reply to a resumable handshake and
/// again when a connection ends, so the producer knows exactly which
/// frames to replay after a reconnect.
pub fn write_ack(out: &mut impl Write, seq: u64) -> Result<()> {
    out.write_all(ACK_MAGIC)?;
    let mut fields = Vec::new();
    write_varint(&mut fields, seq)?;
    out.write_all(&fields)?;
    out.write_all(&crc32(&fields).to_le_bytes())?;
    out.flush()?;
    Ok(())
}

/// Read and validate a collector acknowledgement (see [`write_ack`]).
pub fn read_ack(inp: &mut impl Read) -> Result<u64> {
    let mut magic = [0u8; 4];
    inp.read_exact(&mut magic)?;
    if &magic != ACK_MAGIC {
        return Err(TraceError::Decode("bad ack magic (not a CLSA reply)".into()));
    }
    let seq = read_varint(inp)?;
    let mut fields = Vec::new();
    write_varint(&mut fields, seq)?;
    let mut crc_bytes = [0u8; 4];
    inp.read_exact(&mut crc_bytes)?;
    let expected = u32::from_le_bytes(crc_bytes);
    let actual = crc32(&fields);
    if expected != actual {
        return Err(TraceError::Decode(format!(
            "ack CRC mismatch (stored {expected:#010x}, computed {actual:#010x})"
        )));
    }
    Ok(seq)
}

// ---------------------------------------------------- trace <-> stream

/// Number of events per `Events` frame used by [`write_trace`].
pub const EVENTS_PER_FRAME: usize = 256;

/// The frame sequence [`write_trace`] emits for a complete trace: Start,
/// Params, Objects, Threads, chunked Events (per thread, in timestamp
/// order), End. Exposed so callers can pace or filter frames (e.g.
/// `critlock push --pace`).
pub fn trace_frames(trace: &Trace) -> Vec<Frame> {
    let mut frames = Vec::new();
    let mut meta = trace.meta.clone();
    let params = std::mem::take(&mut meta.params);
    frames.push(Frame::Start { meta });
    for (key, value) in &params {
        frames.push(Frame::Param { key: key.clone(), value: value.clone() });
    }
    if !trace.objects.is_empty() {
        frames.push(Frame::Objects { first_id: 0, objects: trace.objects.clone() });
    }
    for stream in &trace.threads {
        frames.push(Frame::Thread { tid: stream.tid, name: stream.name.clone() });
    }
    for stream in &trace.threads {
        for chunk in stream.events.chunks(EVENTS_PER_FRAME) {
            frames.push(Frame::Events { tid: stream.tid, events: chunk.to_vec() });
        }
    }
    frames.push(Frame::End);
    frames
}

/// Stream a complete trace as frames: Start, Params, Objects, Threads,
/// chunked Events (round-robin in timestamp order per thread), End.
pub fn write_trace(trace: &Trace, out: &mut impl Write) -> Result<()> {
    let mut w = StreamWriter::new(out)?;
    for frame in trace_frames(trace) {
        w.write_frame(&frame)?;
    }
    w.flush()
}

/// Strictly assemble a complete frame stream back into a [`Trace`].
///
/// Requires a `Start` frame first and an `End` frame last; unknown thread
/// ids and non-dense object registrations are errors. (The collector crate
/// layers disconnect-tolerant assembly on top of [`StreamReader`]; this
/// function is the strict inverse of [`write_trace`].)
pub fn read_trace(inp: &mut impl Read) -> Result<Trace> {
    let mut r = StreamReader::new(inp)?;
    let mut trace: Option<Trace> = None;
    let mut ended = false;
    while let Some(frame) = r.next_frame()? {
        if ended {
            return Err(TraceError::Decode("frame after End".into()));
        }
        match frame {
            Frame::Start { meta } => {
                if trace.is_some() {
                    return Err(TraceError::Decode("duplicate Start frame".into()));
                }
                trace = Some(Trace::new(meta));
            }
            frame => {
                let trace = trace
                    .as_mut()
                    .ok_or_else(|| TraceError::Decode("frame before Start".into()))?;
                ended = apply_frame(trace, frame)?;
            }
        }
    }
    if !ended {
        return Err(TraceError::Decode("stream ended without End frame".into()));
    }
    trace.ok_or_else(|| TraceError::Decode("empty stream".into()))
}

/// Fold one (non-`Start`) frame into a trace under strict protocol rules.
/// Returns `true` when the frame was `End`.
pub fn apply_frame(trace: &mut Trace, frame: Frame) -> Result<bool> {
    match frame {
        Frame::Start { .. } => {
            return Err(TraceError::Decode("duplicate Start frame".into()));
        }
        Frame::Param { key, value } => {
            trace.meta.params.insert(key, value);
        }
        Frame::Objects { first_id, objects } => {
            if first_id as usize != trace.objects.len() {
                return Err(TraceError::Decode(format!(
                    "non-dense object registration: first id {first_id}, have {}",
                    trace.objects.len()
                )));
            }
            trace.objects.extend(objects);
        }
        Frame::Thread { tid, name } => {
            if trace.threads.iter().any(|s| s.tid == tid) {
                return Err(TraceError::Decode(format!("duplicate thread {}", tid.0)));
            }
            let mut stream = ThreadStream::new(tid);
            stream.name = name;
            trace.threads.push(stream);
        }
        Frame::Events { tid, events } => {
            let stream = trace.threads.iter_mut().find(|s| s.tid == tid).ok_or_else(|| {
                TraceError::Decode(format!("events for unregistered thread {}", tid.0))
            })?;
            if let (Some(last), Some(first)) = (stream.events.last(), events.first()) {
                if first.ts < last.ts {
                    return Err(TraceError::Decode(format!(
                        "events frame for thread {} goes backwards ({} < {})",
                        tid.0, first.ts, last.ts
                    )));
                }
            }
            stream.events.extend(events);
        }
        Frame::End => {
            // Live producers announce threads in completion order, not id
            // order; restore the dense layout on finalization.
            trace.threads.sort_by_key(|s| s.tid.0);
            return Ok(true);
        }
    }
    Ok(false)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::TraceBuilder;
    use std::io::Cursor;

    fn sample() -> Trace {
        let mut b = TraceBuilder::new("stream-sample");
        b.param("threads", 2);
        let l = b.lock("L");
        let t0 = b.thread("main", 0);
        let t1 = b.thread("w1", 1);
        b.on(t1).work(2).cs(l, 5).exit_at(10);
        b.on(t0).create(t1).work(4).cs_blocked(l, 7, 3).join(t1, 12).exit_at(13);
        b.build().unwrap()
    }

    fn stream_roundtrip(trace: &Trace) -> Trace {
        let mut buf = Vec::new();
        write_trace(trace, &mut buf).unwrap();
        read_trace(&mut Cursor::new(buf)).unwrap()
    }

    #[test]
    fn roundtrip_exact() {
        let t = sample();
        let back = stream_roundtrip(&t);
        assert_eq!(t, back);
        back.validate().unwrap();
    }

    #[test]
    fn empty_trace_roundtrips() {
        let t = Trace::default();
        assert_eq!(stream_roundtrip(&t), t);
    }

    #[test]
    fn crc_corruption_detected() {
        let t = sample();
        let mut buf = Vec::new();
        write_trace(&t, &mut buf).unwrap();
        // Flip one bit somewhere inside the frame section (past the
        // 5-byte header).
        let mid = buf.len() / 2;
        buf[mid] ^= 0x40;
        let err = read_trace(&mut Cursor::new(buf)).unwrap_err();
        let msg = err.to_string();
        assert!(
            msg.contains("CRC") || msg.contains("length") || msg.contains("frame"),
            "unexpected error: {msg}"
        );
    }

    #[test]
    fn version_mismatch_rejected() {
        let t = sample();
        let mut buf = Vec::new();
        write_trace(&t, &mut buf).unwrap();
        buf[4] = 99; // version varint right after the 4-byte magic
        let err = read_trace(&mut Cursor::new(buf)).unwrap_err();
        assert!(err.to_string().contains("version"), "unexpected error: {err}");
    }

    #[test]
    fn bad_magic_rejected() {
        let err = read_trace(&mut Cursor::new(b"NOPE\x01".to_vec())).unwrap_err();
        assert!(err.to_string().contains("magic"), "unexpected error: {err}");
    }

    #[test]
    fn truncation_is_an_error_not_a_panic() {
        let t = sample();
        let mut full = Vec::new();
        write_trace(&t, &mut full).unwrap();
        for cut in [5, full.len() / 3, full.len() / 2, full.len() - 1] {
            let buf = full[..cut].to_vec();
            assert!(read_trace(&mut Cursor::new(buf)).is_err(), "cut at {cut} must fail");
        }
    }

    #[test]
    fn missing_end_frame_is_detected() {
        let t = sample();
        let mut buf = Vec::new();
        {
            let mut w = StreamWriter::new(&mut buf).unwrap();
            w.write_frame(&Frame::Start { meta: t.meta.clone() }).unwrap();
            // no End
        }
        let err = read_trace(&mut Cursor::new(buf)).unwrap_err();
        assert!(err.to_string().contains("End"), "unexpected error: {err}");
    }

    #[test]
    fn frames_before_start_rejected() {
        let mut buf = Vec::new();
        {
            let mut w = StreamWriter::new(&mut buf).unwrap();
            w.write_frame(&Frame::End).unwrap();
        }
        assert!(read_trace(&mut Cursor::new(buf)).is_err());
    }

    #[test]
    fn raw_frame_path_matches_owned_and_rejournals_verbatim() {
        let t = sample();
        let mut buf = Vec::new();
        write_trace(&t, &mut buf).unwrap();

        let mut owned = StreamReader::new(Cursor::new(buf.clone())).unwrap();
        let mut raw = StreamReader::new(Cursor::new(buf.clone())).unwrap();
        // Re-journal every raw frame verbatim; the output must be
        // byte-identical to the original stream.
        let mut rebuilt = Vec::new();
        let mut w = StreamWriter::new(&mut rebuilt).unwrap();
        loop {
            let (of, rf) = (owned.next_frame().unwrap(), raw.next_frame_raw().unwrap());
            match (of, rf) {
                (None, None) => break,
                (Some(of), Some(rf)) => {
                    assert_eq!(rf.decode().unwrap(), of);
                    assert_eq!(rf.is_end(), matches!(of, Frame::End));
                    assert_eq!(RawFrame::encode(&of).unwrap(), rf);
                    if let Frame::Events { tid, events } = &of {
                        let (rtid, iter) = rf.events().expect("type-4 payload");
                        assert_eq!(rtid, *tid);
                        let borrowed: Vec<Event> = iter.map(|ev| ev.unwrap().event()).collect();
                        assert_eq!(&borrowed, events);
                    } else {
                        assert!(rf.events().is_none());
                    }
                    w.write_raw_frame(&rf).unwrap();
                }
                (of, rf) => panic!("stream length mismatch: {of:?} vs {rf:?}"),
            }
        }
        w.flush().unwrap();
        assert_eq!(rebuilt, buf);
        assert_eq!(raw.payload_bytes(), owned.payload_bytes());
    }

    #[test]
    fn raw_frame_validation_matches_decode_payload() {
        // Trailing garbage after a well-formed Events body.
        let frame = Frame::Events {
            tid: ThreadId(0),
            events: vec![Event::new(3, crate::event::EventKind::ThreadStart)],
        };
        let mut payload = RawFrame::encode(&frame).unwrap().payload.clone();
        payload.push(0x77);
        let err = RawFrame::new(payload).unwrap_err();
        assert!(err.to_string().contains("trailing"), "unexpected error: {err}");
        // Truncated mid-event.
        let payload = RawFrame::encode(&frame).unwrap().payload;
        let cut = payload[..payload.len() - 1].to_vec();
        assert!(RawFrame::new(cut).is_err());
        // Empty payload and bad frame type.
        assert!(RawFrame::new(Vec::new()).is_err());
        assert!(RawFrame::new(vec![9]).is_err());
        // A corrupted frame read through the raw path is severed exactly
        // like the owned path: both readers fail on the same byte flip.
        let t = sample();
        let mut buf = Vec::new();
        write_trace(&t, &mut buf).unwrap();
        let mid = buf.len() / 2;
        buf[mid] ^= 0x40;
        let drain_owned = |buf: Vec<u8>| -> Result<()> {
            let mut r = StreamReader::new(Cursor::new(buf))?;
            while r.next_frame()?.is_some() {}
            Ok(())
        };
        let drain_raw = |buf: Vec<u8>| -> Result<()> {
            let mut r = StreamReader::new(Cursor::new(buf))?;
            while r.next_frame_raw()?.is_some() {}
            Ok(())
        };
        assert_eq!(
            drain_owned(buf.clone()).unwrap_err().to_string(),
            drain_raw(buf).unwrap_err().to_string()
        );
    }

    #[test]
    fn crc32_known_vector() {
        // Standard IEEE test vector.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        // Incremental computation over any split matches the one-shot.
        let mut st = CRC32_INIT;
        st = crc32_update(st, b"1234");
        st = crc32_update(st, b"");
        st = crc32_update(st, b"56789");
        assert_eq!(crc32_finish(st), 0xCBF4_3926);
    }

    #[test]
    fn resumable_handshake_roundtrips() {
        let hs = Handshake { token: b"push-42".to_vec(), start_seq: 17 };
        let mut buf = Vec::new();
        {
            let mut w = StreamWriter::with_handshake(&mut buf, &hs).unwrap();
            w.write_frame(&Frame::End).unwrap();
        }
        let mut r = StreamReader::new(Cursor::new(buf)).unwrap();
        assert_eq!(r.handshake(), &hs);
        assert!(r.handshake().resumable());
        assert_eq!(r.next_frame().unwrap(), Some(Frame::End));
        assert_eq!(r.next_frame().unwrap(), None);
    }

    #[test]
    fn v1_header_is_still_accepted() {
        let mut buf = Vec::new();
        buf.extend_from_slice(STREAM_MAGIC);
        buf.push(1); // version 1: no handshake fields, no header CRC
        {
            let mut w = StreamWriter::append(&mut buf);
            w.write_frame(&Frame::End).unwrap();
        }
        let mut r = StreamReader::new(Cursor::new(buf)).unwrap();
        assert_eq!(r.handshake(), &Handshake::default());
        assert_eq!(r.next_frame().unwrap(), Some(Frame::End));
    }

    #[test]
    fn corrupted_handshake_is_rejected() {
        let hs = Handshake { token: b"session".to_vec(), start_seq: 9 };
        let mut buf = Vec::new();
        StreamWriter::with_handshake(&mut buf, &hs).unwrap();
        for pos in 4..buf.len() {
            let mut bad = buf.clone();
            bad[pos] ^= 0x20;
            assert!(
                StreamReader::new(Cursor::new(bad)).is_err(),
                "header corruption at byte {pos} must be rejected"
            );
        }
    }

    #[test]
    fn oversized_token_is_rejected() {
        let hs = Handshake { token: vec![7u8; MAX_TOKEN_LEN + 1], start_seq: 0 };
        assert!(StreamWriter::with_handshake(Vec::new(), &hs).is_err());
    }

    #[test]
    fn ack_roundtrips_and_detects_corruption() {
        for seq in [0u64, 1, 127, 128, u64::MAX] {
            let mut buf = Vec::new();
            write_ack(&mut buf, seq).unwrap();
            assert_eq!(read_ack(&mut Cursor::new(&buf[..])).unwrap(), seq);
            for pos in 0..buf.len() {
                let mut bad = buf.clone();
                bad[pos] ^= 0x04;
                assert!(
                    read_ack(&mut Cursor::new(&bad[..])).is_err(),
                    "ack corruption at byte {pos} (seq {seq}) must be rejected"
                );
            }
        }
    }
}

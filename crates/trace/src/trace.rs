//! The trace container: per-thread event streams plus object name table.

use crate::error::{Result, TraceError};
use crate::event::{Event, EventKind, Ts};
use crate::ids::{ObjId, ObjInfo, ObjKind, ThreadId};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Which clock produced the timestamps in a trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub enum ClockDomain {
    /// Deterministic virtual nanoseconds from the simulator.
    #[default]
    VirtualNs,
    /// Monotonic real nanoseconds from the instrumentation runtime.
    RealNs,
}

/// Trace-level metadata.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize, Default)]
pub struct TraceMeta {
    /// Name of the traced application/workload.
    pub app: String,
    /// Which clock produced the timestamps.
    pub clock: ClockDomain,
    /// Free-form workload parameters (thread count, input size, seed, ...).
    pub params: BTreeMap<String, String>,
}

impl TraceMeta {
    /// Metadata for an application with no recorded parameters.
    pub fn named(app: impl Into<String>) -> Self {
        TraceMeta { app: app.into(), ..Default::default() }
    }

    /// Add one parameter, builder-style.
    pub fn with_param(mut self, key: impl Into<String>, value: impl ToString) -> Self {
        self.params.insert(key.into(), value.to_string());
        self
    }
}

/// The event stream of one thread, sorted by timestamp.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ThreadStream {
    /// The thread's trace id.
    pub tid: ThreadId,
    /// Optional human-readable thread name.
    pub name: Option<String>,
    /// Events in timestamp order.
    pub events: Vec<Event>,
}

impl ThreadStream {
    /// An empty stream for `tid`.
    pub fn new(tid: ThreadId) -> Self {
        ThreadStream { tid, name: None, events: Vec::new() }
    }

    /// Timestamp of the thread's first event, if any.
    pub fn start_ts(&self) -> Option<Ts> {
        self.events.first().map(|e| e.ts)
    }

    /// Timestamp of the thread's last event, if any.
    pub fn end_ts(&self) -> Option<Ts> {
        self.events.last().map(|e| e.ts)
    }
}

/// A complete execution trace: metadata, object name table and one event
/// stream per thread (indexed by [`ThreadId`]).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
pub struct Trace {
    /// Trace-level metadata.
    pub meta: TraceMeta,
    /// Registered synchronization objects; `ObjId(i)` indexes entry `i`.
    pub objects: Vec<ObjInfo>,
    /// Per-thread event streams; `ThreadId(i)` indexes entry `i`.
    pub threads: Vec<ThreadStream>,
}

impl Trace {
    /// An empty trace with the given metadata.
    pub fn new(meta: TraceMeta) -> Self {
        Trace { meta, objects: Vec::new(), threads: Vec::new() }
    }

    /// Number of threads in the trace.
    pub fn num_threads(&self) -> usize {
        self.threads.len()
    }

    /// Register a synchronization object, returning its id.
    pub fn register_object(&mut self, kind: ObjKind, name: impl Into<String>) -> ObjId {
        let id = ObjId(self.objects.len() as u32);
        self.objects.push(ObjInfo { kind, name: name.into() });
        id
    }

    /// Metadata for a registered object.
    pub fn object(&self, id: ObjId) -> Option<&ObjInfo> {
        self.objects.get(id.index())
    }

    /// The name of an object, or a fallback rendering for unknown ids.
    pub fn object_name(&self, id: ObjId) -> String {
        match self.object(id) {
            Some(info) => info.name.clone(),
            None => id.to_string(),
        }
    }

    /// Find a registered object by name.
    pub fn object_by_name(&self, name: &str) -> Option<ObjId> {
        self.objects.iter().position(|o| o.name == name).map(|i| ObjId(i as u32))
    }

    /// Ids of all objects of a given kind.
    pub fn objects_of_kind(&self, kind: ObjKind) -> Vec<ObjId> {
        self.objects
            .iter()
            .enumerate()
            .filter(|(_, o)| o.kind == kind)
            .map(|(i, _)| ObjId(i as u32))
            .collect()
    }

    /// The stream of one thread.
    pub fn thread(&self, tid: ThreadId) -> Option<&ThreadStream> {
        self.threads.get(tid.index())
    }

    /// Append a thread stream. The stream's id must equal the next dense
    /// thread id; this keeps `ThreadId` usable as an index.
    pub fn push_thread(&mut self, stream: ThreadStream) {
        debug_assert_eq!(stream.tid.index(), self.threads.len());
        self.threads.push(stream);
    }

    /// Earliest timestamp in the trace.
    pub fn start_ts(&self) -> Ts {
        self.threads.iter().filter_map(ThreadStream::start_ts).min().unwrap_or(0)
    }

    /// Latest timestamp in the trace.
    pub fn end_ts(&self) -> Ts {
        self.threads.iter().filter_map(ThreadStream::end_ts).max().unwrap_or(0)
    }

    /// End-to-end completion time (the quantity the critical path explains).
    pub fn makespan(&self) -> Ts {
        self.end_ts().saturating_sub(self.start_ts())
    }

    /// The thread that finished last (starting point of the backward
    /// critical-path walk). Ties break toward the higher thread id so the
    /// walk is deterministic.
    pub fn last_finisher(&self) -> Option<ThreadId> {
        self.threads
            .iter()
            .filter_map(|t| t.end_ts().map(|ts| (ts, t.tid)))
            .max()
            .map(|(_, tid)| tid)
    }

    /// All events of all threads merged in `(ts, tid, index)` order.
    pub fn global_events(&self) -> Vec<(ThreadId, Event)> {
        let mut all: Vec<(ThreadId, Event)> =
            self.threads.iter().flat_map(|t| t.events.iter().map(move |e| (t.tid, *e))).collect();
        all.sort_by_key(|(tid, e)| (e.ts, *tid));
        all
    }

    /// Total number of events across all threads.
    pub fn num_events(&self) -> usize {
        self.threads.iter().map(|t| t.events.len()).sum()
    }

    /// Check the per-thread event protocol and object references.
    ///
    /// Rules enforced:
    /// * thread stream ids are dense and match their position;
    /// * timestamps per thread are non-decreasing;
    /// * non-empty streams start with `ThreadStart` and end with `ThreadExit`;
    /// * lock protocol per (thread, lock): acquire → (contended)? → obtain →
    ///   release, non-reentrant, with arbitrary nesting across distinct locks;
    /// * barrier arrive/depart pairs match on barrier and epoch;
    /// * condvar wait-begin/wakeup pairs match on condvar;
    /// * object ids are registered with the kind the event expects;
    /// * referenced thread ids exist.
    pub fn validate(&self) -> Result<()> {
        for (pos, stream) in self.threads.iter().enumerate() {
            let tid = stream.tid;
            if tid.index() != pos {
                return Err(TraceError::Protocol {
                    tid,
                    index: 0,
                    message: format!("stream at position {pos} has id {tid}"),
                });
            }
            self.validate_stream(stream)?;
        }
        Ok(())
    }

    fn expect_kind(&self, tid: ThreadId, obj: ObjId, kind: ObjKind) -> Result<()> {
        match self.object(obj) {
            Some(info) if info.kind == kind => Ok(()),
            _ => Err(TraceError::UnknownObject { tid, obj }),
        }
    }

    fn expect_thread(&self, tid: ThreadId, referenced: ThreadId) -> Result<()> {
        if referenced.index() < self.threads.len() {
            Ok(())
        } else {
            Err(TraceError::UnknownThread { tid, referenced })
        }
    }

    fn validate_stream(&self, stream: &ThreadStream) -> Result<()> {
        let tid = stream.tid;
        let proto = |index: usize, message: String| TraceError::Protocol { tid, index, message };

        // Per-lock state machine: 0 = idle, 1 = acquiring, 2 = contended, 3 = held.
        let mut lock_state: BTreeMap<ObjId, u8> = BTreeMap::new();
        // Per-rwlock state machine: same states; a thread holds at most one
        // mode at a time (non-reentrant, like pthread_rwlock_t).
        let mut rw_state: BTreeMap<ObjId, u8> = BTreeMap::new();
        // Barrier currently being waited on, with epoch.
        let mut in_barrier: Option<(ObjId, u32)> = None;
        // Condvar currently being waited on.
        let mut in_wait: Option<ObjId> = None;

        let mut last_ts = 0;
        for (i, ev) in stream.events.iter().enumerate() {
            if ev.ts < last_ts {
                return Err(TraceError::UnsortedTimestamps { tid, index: i });
            }
            last_ts = ev.ts;

            if i == 0 && ev.kind != EventKind::ThreadStart {
                return Err(proto(i, "first event must be ThreadStart".into()));
            }
            if i > 0 && ev.kind == EventKind::ThreadStart {
                return Err(proto(i, "duplicate ThreadStart".into()));
            }
            let is_last = i + 1 == stream.events.len();
            if is_last && ev.kind != EventKind::ThreadExit {
                return Err(proto(i, "last event must be ThreadExit".into()));
            }
            if !is_last && ev.kind == EventKind::ThreadExit {
                return Err(proto(i, "ThreadExit before end of stream".into()));
            }

            match ev.kind {
                EventKind::LockAcquire { lock } => {
                    self.expect_kind(tid, lock, ObjKind::Lock)?;
                    let st = lock_state.entry(lock).or_insert(0);
                    if *st != 0 {
                        return Err(proto(i, format!("acquire of {lock} while in state {st}")));
                    }
                    *st = 1;
                }
                EventKind::LockContended { lock } => {
                    self.expect_kind(tid, lock, ObjKind::Lock)?;
                    let st = lock_state.entry(lock).or_insert(0);
                    if *st != 1 {
                        return Err(proto(i, format!("contended on {lock} without acquire")));
                    }
                    *st = 2;
                }
                EventKind::LockObtain { lock } => {
                    self.expect_kind(tid, lock, ObjKind::Lock)?;
                    let st = lock_state.entry(lock).or_insert(0);
                    if *st != 1 && *st != 2 {
                        return Err(proto(i, format!("obtain of {lock} without acquire")));
                    }
                    *st = 3;
                }
                EventKind::LockRelease { lock } => {
                    self.expect_kind(tid, lock, ObjKind::Lock)?;
                    let st = lock_state.entry(lock).or_insert(0);
                    if *st != 3 {
                        return Err(proto(i, format!("release of {lock} not held")));
                    }
                    *st = 0;
                }
                EventKind::BarrierArrive { barrier, epoch } => {
                    self.expect_kind(tid, barrier, ObjKind::Barrier)?;
                    if let Some((b, _)) = in_barrier {
                        return Err(proto(i, format!("arrive at {barrier} while inside {b}")));
                    }
                    in_barrier = Some((barrier, epoch));
                }
                EventKind::BarrierDepart { barrier, epoch } => {
                    self.expect_kind(tid, barrier, ObjKind::Barrier)?;
                    match in_barrier.take() {
                        Some((b, e)) if b == barrier && e == epoch => {}
                        other => {
                            return Err(proto(
                                i,
                                format!("depart {barrier}@{epoch} but waiting on {other:?}"),
                            ))
                        }
                    }
                }
                EventKind::CondWaitBegin { cv } => {
                    self.expect_kind(tid, cv, ObjKind::Condvar)?;
                    if let Some(c) = in_wait {
                        return Err(proto(i, format!("wait on {cv} while waiting on {c}")));
                    }
                    in_wait = Some(cv);
                }
                EventKind::CondWakeup { cv, .. } => {
                    self.expect_kind(tid, cv, ObjKind::Condvar)?;
                    match in_wait.take() {
                        Some(c) if c == cv => {}
                        other => {
                            return Err(proto(
                                i,
                                format!("wakeup on {cv} but waiting on {other:?}"),
                            ))
                        }
                    }
                }
                EventKind::CondSignal { cv, .. } | EventKind::CondBroadcast { cv, .. } => {
                    self.expect_kind(tid, cv, ObjKind::Condvar)?;
                }
                EventKind::ThreadCreate { child } => {
                    self.expect_thread(tid, child)?;
                }
                EventKind::JoinBegin { child } | EventKind::JoinEnd { child } => {
                    self.expect_thread(tid, child)?;
                }
                EventKind::Marker { id } => {
                    self.expect_kind(tid, id, ObjKind::Marker)?;
                }
                EventKind::RwAcquire { lock, .. } => {
                    self.expect_kind(tid, lock, ObjKind::RwLock)?;
                    let st = rw_state.entry(lock).or_insert(0);
                    if *st != 0 {
                        return Err(proto(i, format!("rw-acquire of {lock} while in state {st}")));
                    }
                    *st = 1;
                }
                EventKind::RwContended { lock, .. } => {
                    self.expect_kind(tid, lock, ObjKind::RwLock)?;
                    let st = rw_state.entry(lock).or_insert(0);
                    if *st != 1 {
                        return Err(proto(i, format!("rw-contended on {lock} without acquire")));
                    }
                    *st = 2;
                }
                EventKind::RwObtain { lock, .. } => {
                    self.expect_kind(tid, lock, ObjKind::RwLock)?;
                    let st = rw_state.entry(lock).or_insert(0);
                    if *st != 1 && *st != 2 {
                        return Err(proto(i, format!("rw-obtain of {lock} without acquire")));
                    }
                    *st = 3;
                }
                EventKind::RwRelease { lock, .. } => {
                    self.expect_kind(tid, lock, ObjKind::RwLock)?;
                    let st = rw_state.entry(lock).or_insert(0);
                    if *st != 3 {
                        return Err(proto(i, format!("rw-release of {lock} not held")));
                    }
                    *st = 0;
                }
                EventKind::ThreadStart | EventKind::ThreadExit => {}
            }
        }

        // At thread exit everything must be quiesced.
        if let Some((lock, st)) = rw_state.iter().find(|(_, st)| **st != 0) {
            return Err(proto(
                stream.events.len().saturating_sub(1),
                format!("thread exits with rwlock {lock} in state {st}"),
            ));
        }
        if let Some((lock, st)) = lock_state.iter().find(|(_, st)| **st != 0) {
            return Err(proto(
                stream.events.len().saturating_sub(1),
                format!("thread exits with {lock} in state {st}"),
            ));
        }
        if let Some((b, _)) = in_barrier {
            return Err(proto(
                stream.events.len().saturating_sub(1),
                format!("thread exits inside barrier {b}"),
            ));
        }
        if let Some(cv) = in_wait {
            return Err(proto(
                stream.events.len().saturating_sub(1),
                format!("thread exits inside condvar wait {cv}"),
            ));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_thread_trace() -> Trace {
        let mut t = Trace::new(TraceMeta::named("test"));
        let l = t.register_object(ObjKind::Lock, "L");
        let mk = |ts, kind| Event::new(ts, kind);
        let mut s0 = ThreadStream::new(ThreadId(0));
        s0.events = vec![
            mk(0, EventKind::ThreadStart),
            mk(1, EventKind::LockAcquire { lock: l }),
            mk(1, EventKind::LockObtain { lock: l }),
            mk(5, EventKind::LockRelease { lock: l }),
            mk(10, EventKind::ThreadExit),
        ];
        let mut s1 = ThreadStream::new(ThreadId(1));
        s1.events = vec![
            mk(0, EventKind::ThreadStart),
            mk(2, EventKind::LockAcquire { lock: l }),
            mk(2, EventKind::LockContended { lock: l }),
            mk(5, EventKind::LockObtain { lock: l }),
            mk(8, EventKind::LockRelease { lock: l }),
            mk(12, EventKind::ThreadExit),
        ];
        t.push_thread(s0);
        t.push_thread(s1);
        t
    }

    #[test]
    fn valid_trace_passes() {
        let t = two_thread_trace();
        t.validate().expect("trace should validate");
        assert_eq!(t.num_threads(), 2);
        assert_eq!(t.num_events(), 11);
        assert_eq!(t.start_ts(), 0);
        assert_eq!(t.end_ts(), 12);
        assert_eq!(t.makespan(), 12);
        assert_eq!(t.last_finisher(), Some(ThreadId(1)));
    }

    #[test]
    fn object_lookup() {
        let t = two_thread_trace();
        let l = t.object_by_name("L").unwrap();
        assert_eq!(t.object_name(l), "L");
        assert_eq!(t.object(l).unwrap().kind, ObjKind::Lock);
        assert_eq!(t.objects_of_kind(ObjKind::Lock), vec![l]);
        assert!(t.objects_of_kind(ObjKind::Barrier).is_empty());
        assert_eq!(t.object_name(ObjId(99)), "obj99");
        assert!(t.object_by_name("nope").is_none());
    }

    #[test]
    fn global_events_sorted() {
        let t = two_thread_trace();
        let g = t.global_events();
        assert_eq!(g.len(), 11);
        for w in g.windows(2) {
            assert!(w[0].1.ts <= w[1].1.ts);
        }
    }

    #[test]
    fn unsorted_timestamps_rejected() {
        let mut t = two_thread_trace();
        t.threads[0].events[3].ts = 0;
        assert!(matches!(t.validate(), Err(TraceError::UnsortedTimestamps { .. })));
    }

    #[test]
    fn release_without_hold_rejected() {
        let mut t = two_thread_trace();
        // Remove the obtain; release then happens from the "acquiring" state.
        t.threads[0].events.remove(2);
        assert!(matches!(t.validate(), Err(TraceError::Protocol { .. })));
    }

    #[test]
    fn missing_thread_start_rejected() {
        let mut t = two_thread_trace();
        t.threads[0].events.remove(0);
        assert!(matches!(t.validate(), Err(TraceError::Protocol { .. })));
    }

    #[test]
    fn missing_exit_rejected() {
        let mut t = two_thread_trace();
        t.threads[0].events.pop();
        assert!(matches!(t.validate(), Err(TraceError::Protocol { .. })));
    }

    #[test]
    fn unknown_object_rejected() {
        let mut t = two_thread_trace();
        t.threads[0].events[1] = Event::new(1, EventKind::LockAcquire { lock: ObjId(42) });
        assert!(matches!(t.validate(), Err(TraceError::UnknownObject { .. })));
    }

    #[test]
    fn wrong_object_kind_rejected() {
        let mut t = two_thread_trace();
        let b = t.register_object(ObjKind::Barrier, "B");
        t.threads[0].events[1] = Event::new(1, EventKind::LockAcquire { lock: b });
        assert!(matches!(t.validate(), Err(TraceError::UnknownObject { .. })));
    }

    #[test]
    fn unknown_thread_reference_rejected() {
        let mut t = two_thread_trace();
        t.threads[0].events[1] = Event::new(1, EventKind::ThreadCreate { child: ThreadId(9) });
        // Fix the lock protocol: drop the now-orphaned obtain/release.
        t.threads[0].events.remove(3);
        t.threads[0].events.remove(2);
        assert!(matches!(t.validate(), Err(TraceError::UnknownThread { .. })));
    }

    #[test]
    fn exit_while_holding_lock_rejected() {
        let mut t = two_thread_trace();
        // Drop the release so the lock is still held at exit.
        t.threads[0].events.remove(3);
        assert!(matches!(t.validate(), Err(TraceError::Protocol { .. })));
    }

    #[test]
    fn reentrant_lock_rejected() {
        let mut t = two_thread_trace();
        let l = t.object_by_name("L").unwrap();
        t.threads[0].events.insert(3, Event::new(3, EventKind::LockAcquire { lock: l }));
        assert!(matches!(t.validate(), Err(TraceError::Protocol { .. })));
    }

    #[test]
    fn meta_builder() {
        let m = TraceMeta::named("app").with_param("threads", 4).with_param("seed", 7);
        assert_eq!(m.app, "app");
        assert_eq!(m.params.get("threads").unwrap(), "4");
        assert_eq!(m.params.get("seed").unwrap(), "7");
    }

    #[test]
    fn empty_trace_defaults() {
        let t = Trace::default();
        assert_eq!(t.makespan(), 0);
        assert_eq!(t.last_finisher(), None);
        assert!(t.global_events().is_empty());
        t.validate().unwrap();
    }
}

//! Property tests for the CLAG rollup merge algebra: [`Rollup::merge`]
//! must be a join-semilattice — commutative, associative, idempotent —
//! for *arbitrary* inputs (including rollups that disagree about the
//! same session key), and plain union on disjoint session sets. These
//! are the invariants hierarchical forwarding relies on: children
//! re-push their whole rollup after reconnects, and two delivery paths
//! may carry the same session, so any order- or multiplicity-dependence
//! would skew fleet totals.

use critlock_trace::rollup::{LockDigest, Rollup, SessionDigest};
use proptest::prelude::*;

/// Deterministically expand compact integer seeds into a digest. Lock
/// seeds are deduplicated and name-sorted, as the format requires.
fn digest(
    key_id: u8,
    app_id: u8,
    shape: (u64, u64, bool),
    lock_seeds: &[(u8, u64, u64)],
) -> SessionDigest {
    let (cp_length, makespan, degraded) = shape;
    let mut locks: Vec<LockDigest> = Vec::new();
    for &(lock_id, cp_time, wait) in lock_seeds {
        let name = format!("lock-{lock_id:03}");
        if locks.iter().any(|l| l.name == name) {
            continue;
        }
        locks.push(LockDigest {
            name,
            cp_time,
            cp_share_ppm: critlock_trace::rollup::cp_share_ppm(cp_time, cp_length),
            invocations_on_cp: cp_time % 7,
            contended_on_cp: cp_time % 3,
            total_invocations: cp_time % 7 + wait % 5,
            total_wait: wait,
            total_hold: cp_time.saturating_add(wait / 2),
        });
    }
    locks.sort_by(|a, b| a.name.cmp(&b.name));
    SessionDigest {
        key: format!("session-{key_id}"),
        app: format!("app-{app_id}"),
        cp_length,
        makespan,
        degraded,
        locks,
        window: None,
    }
}

type DigestSeed = (u8, u8, (u64, u64, bool), Vec<(u8, u64, u64)>);

fn rollup_from(seeds: &[DigestSeed]) -> Rollup {
    let mut rollup = Rollup::new();
    for (key_id, app_id, shape, lock_seeds) in seeds {
        rollup.insert(digest(*key_id, *app_id, *shape, lock_seeds));
    }
    rollup
}

fn merged(a: &Rollup, b: &Rollup) -> Rollup {
    let mut out = a.clone();
    out.merge(b);
    out
}

/// A strategy producing seed lists whose session keys overlap freely
/// across rollups (key space of 8), with occasional *conflicting*
/// digests for one key (same key id, different contents).
fn seeds() -> impl Strategy<Value = Vec<DigestSeed>> {
    prop::collection::vec(
        (
            0u8..8,
            0u8..3,
            (0u64..10_000, 0u64..20_000, any::<bool>()),
            prop::collection::vec((0u8..6, 0u64..5_000, 0u64..1_000), 0..5),
        ),
        0..6,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// `a ∪ b == b ∪ a`, byte for byte — even when both sides carry
    /// different digests under the same session key.
    #[test]
    fn merge_is_commutative(sa in seeds(), sb in seeds()) {
        let (a, b) = (rollup_from(&sa), rollup_from(&sb));
        let ab = merged(&a, &b);
        let ba = merged(&b, &a);
        prop_assert_eq!(&ab, &ba);
        prop_assert_eq!(ab.to_bytes(), ba.to_bytes());
    }

    /// `(a ∪ b) ∪ c == a ∪ (b ∪ c)`.
    #[test]
    fn merge_is_associative(sa in seeds(), sb in seeds(), sc in seeds()) {
        let (a, b, c) = (rollup_from(&sa), rollup_from(&sb), rollup_from(&sc));
        let left = merged(&merged(&a, &b), &c);
        let right = merged(&a, &merged(&b, &c));
        prop_assert_eq!(&left, &right);
        prop_assert_eq!(left.to_bytes(), right.to_bytes());
    }

    /// `a ∪ a == a`, and re-merging an already-merged rollup changes
    /// nothing — the exact shape of a child re-forwarding after a
    /// reconnect.
    #[test]
    fn merge_is_idempotent(sa in seeds(), sb in seeds()) {
        let (a, b) = (rollup_from(&sa), rollup_from(&sb));
        prop_assert_eq!(merged(&a, &a), a.clone());
        let ab = merged(&a, &b);
        prop_assert_eq!(merged(&ab, &a), ab.clone());
        prop_assert_eq!(merged(&ab, &b), ab.clone());
        prop_assert_eq!(merged(&ab, &ab), ab);
    }

    /// On disjoint session keys the merge is plain union: every digest
    /// survives unchanged and the counts add exactly.
    #[test]
    fn merge_is_union_on_disjoint_sessions(sa in seeds(), sb in seeds()) {
        // Force disjointness by offsetting b's key space past a's.
        let sb: Vec<DigestSeed> =
            sb.into_iter().map(|(k, a_, s, l)| (k + 8, a_, s, l)).collect();
        let (a, b) = (rollup_from(&sa), rollup_from(&sb));
        let ab = merged(&a, &b);
        prop_assert_eq!(ab.len(), a.len() + b.len());
        for rollup in [&a, &b] {
            for (key, digest) in &rollup.sessions {
                prop_assert_eq!(ab.sessions.get(key), Some(digest));
            }
        }
    }

    /// Encode → decode survives any merge result (the wire format can
    /// carry whatever the algebra produces).
    #[test]
    fn merged_rollups_roundtrip(sa in seeds(), sb in seeds()) {
        let ab = merged(&rollup_from(&sa), &rollup_from(&sb));
        let bytes = ab.to_bytes();
        let back = Rollup::from_bytes(&bytes).expect("roundtrip");
        prop_assert_eq!(back, ab);
    }
}

//! Corruption-matrix property tests for trace salvage: a valid trace is
//! encoded to CLTR bytes, mutated with the same primitives the transport
//! fault plans use (cut, truncation splice, bit flip), and then
//!
//! * the salvage path must never panic — it either recovers a trace that
//!   passes validation or returns a typed error;
//! * the strict path must never silently succeed on mutated bytes — the
//!   v3 whole-file checksum turns every mutation into a typed error;
//! * on *unmutated* bytes, salvage must be the identity with a clean
//!   (empty) salvage report.

use critlock_trace::codec::{read_trace_bytes, read_trace_bytes_salvage};
use critlock_trace::faults::FLIP_MASK;
use critlock_trace::salvage::salvage_trace;
use critlock_trace::{Budget, Trace, TraceBuilder};
use proptest::prelude::*;

/// A protocol-valid trace: 1–3 threads doing work and whole critical
/// sections on two locks, sized by per-thread op counts.
fn valid_trace_strategy() -> impl Strategy<Value = Trace> {
    prop::collection::vec(prop::collection::vec((1u64..8, 0u8..3), 0..24), 1..4).prop_map(
        |threads| {
            let mut b = TraceBuilder::new("salvage-props");
            let l1 = b.lock("L1");
            let l2 = b.lock("L2");
            let tids: Vec<_> = (0..threads.len()).map(|i| b.thread(format!("t{i}"), 0)).collect();
            for (tid, ops) in tids.iter().zip(&threads) {
                let mut c = b.on(*tid);
                for &(amount, kind) in ops {
                    match kind {
                        0 => {
                            c.work(amount);
                        }
                        1 => {
                            c.cs(l1, amount);
                        }
                        _ => {
                            c.cs(l2, amount);
                        }
                    }
                }
                c.exit();
            }
            b.build().expect("builder output is always valid")
        },
    )
}

/// The byte-level mutations of the fault matrix: sever (cut), splice
/// (truncation) and single-byte corruption (bit flip), each anchored by
/// a position reduced modulo the encoding's length.
fn mutate(bytes: &[u8], kind: u8, pos: usize, drop: usize) -> Vec<u8> {
    let mut out = bytes.to_vec();
    match kind {
        0 => {
            let at = pos % (out.len() + 1);
            out.truncate(at);
        }
        1 => {
            let at = pos % (out.len() + 1);
            let end = (at + 1 + drop).min(out.len());
            out.drain(at..end.max(at));
        }
        _ => {
            let at = pos % out.len();
            out[at] ^= FLIP_MASK;
        }
    }
    out
}

fn encode(trace: &Trace) -> Vec<u8> {
    let mut buf = Vec::new();
    critlock_trace::codec::write_trace(trace, &mut buf).expect("encoding cannot fail");
    buf
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn salvage_never_panics_and_strict_never_lies(
        trace in valid_trace_strategy(),
        kind in 0u8..3,
        pos in 0usize..1_000_000,
        drop in 1usize..64,
    ) {
        let clean = encode(&trace);
        let mutated = mutate(&clean, kind, pos, drop);

        // Strict decode of mutated bytes: a typed error, never a silent
        // success. (A cut or splice can degenerate to the identity; only
        // genuinely different bytes must be rejected.)
        if mutated != clean {
            prop_assert!(
                read_trace_bytes(&mutated).is_err(),
                "strict decode accepted mutated bytes (kind {kind}, pos {pos})"
            );
        }

        // Salvage decode: never panics; on success the repaired trace
        // must pass full validation and the report must admit damage.
        let budget = Budget::unlimited();
        if let Ok((partial, decode_anomalies)) = read_trace_bytes_salvage(&mutated, &budget) {
            let mut salvaged = salvage_trace(&partial, &budget);
            salvaged.report.absorb_decode_anomalies(decode_anomalies);
            salvaged.trace.validate().expect("salvaged trace must validate");
            if mutated != clean {
                prop_assert!(
                    !salvaged.report.is_clean() || salvaged.trace == trace,
                    "damaged bytes salvaged without a reported anomaly"
                );
            }
        }
    }

    #[test]
    fn salvage_of_clean_bytes_is_identity(trace in valid_trace_strategy()) {
        let clean = encode(&trace);
        let (decoded, anomalies) = read_trace_bytes_salvage(&clean, &Budget::unlimited()).unwrap();
        prop_assert!(anomalies.is_empty(), "clean decode reported {anomalies:?}");
        let salvaged = salvage_trace(&decoded, &Budget::unlimited());
        prop_assert!(salvaged.report.is_clean(), "clean report: {:?}", salvaged.report);
        prop_assert_eq!(salvaged.trace, trace);
    }
}

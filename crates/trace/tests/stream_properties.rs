//! Property tests for the CLSM streaming frame codec: round-trips over
//! arbitrary event sequences, corruption detection via the per-frame CRC,
//! version-mismatch rejection, and truncation safety.

use critlock_trace::stream::{read_trace, write_trace, StreamReader};
use critlock_trace::{Event, EventKind, ObjId, ObjKind, ThreadId, ThreadStream, Trace, TraceMeta};
use proptest::prelude::*;
use std::io::Cursor;

/// One thread's events: arbitrary kinds over three registered objects,
/// with non-decreasing timestamps (the only invariant the codec needs).
fn events_strategy() -> impl Strategy<Value = Vec<Event>> {
    prop::collection::vec((0u64..50, 0u8..10, 0u32..3, 0u32..4), 0..40).prop_map(|tuples| {
        let mut ts = 0u64;
        tuples
            .into_iter()
            .map(|(delta, sel, obj, aux)| {
                ts += delta;
                let obj = ObjId(obj);
                let kind = match sel {
                    0 => EventKind::ThreadStart,
                    1 => EventKind::ThreadExit,
                    2 => EventKind::LockAcquire { lock: obj },
                    3 => EventKind::LockContended { lock: obj },
                    4 => EventKind::LockObtain { lock: obj },
                    5 => EventKind::LockRelease { lock: obj },
                    6 => EventKind::BarrierArrive { barrier: obj, epoch: aux },
                    7 => EventKind::CondSignal { cv: obj, signal_seq: aux as u64 },
                    8 => EventKind::Marker { id: obj },
                    _ => EventKind::JoinBegin { child: ThreadId(aux) },
                };
                Event::new(ts, kind)
            })
            .collect()
    })
}

/// A trace with 1–3 dense threads and a small object table. The lock
/// protocol need not hold — the codec must round-trip any well-ordered
/// event soup.
fn trace_strategy() -> impl Strategy<Value = Trace> {
    prop::collection::vec(events_strategy(), 1..4).prop_map(|streams| {
        let mut meta = TraceMeta::named("stream-props");
        meta.params.insert("threads".into(), streams.len().to_string());
        let mut trace = Trace::new(meta);
        trace.register_object(ObjKind::Lock, "L");
        trace.register_object(ObjKind::Barrier, "B");
        trace.register_object(ObjKind::Condvar, "CV");
        for (i, events) in streams.into_iter().enumerate() {
            let mut stream = ThreadStream::new(ThreadId(i as u32));
            stream.name = Some(format!("t{i}"));
            stream.events = events;
            trace.push_thread(stream);
        }
        trace
    })
}

fn encode(trace: &Trace) -> Vec<u8> {
    let mut buf = Vec::new();
    write_trace(trace, &mut buf).expect("encoding cannot fail");
    buf
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn stream_roundtrip_is_exact(trace in trace_strategy()) {
        let buf = encode(&trace);
        let back = read_trace(&mut Cursor::new(&buf[..])).unwrap();
        prop_assert_eq!(back, trace);
    }

    #[test]
    fn any_single_byte_corruption_is_detected(
        trace in trace_strategy(),
        pos in 0usize..100_000,
        delta in 1u16..256,
    ) {
        let mut buf = encode(&trace);
        let pos = pos % buf.len();
        buf[pos] = buf[pos].wrapping_add(delta as u8);
        // Wherever the corruption lands — magic, version, length prefix,
        // payload or CRC — decoding must fail, never return a wrong trace.
        prop_assert!(read_trace(&mut Cursor::new(&buf[..])).is_err());
    }

    #[test]
    fn truncation_is_an_error_never_a_panic(
        trace in trace_strategy(),
        cut in 0usize..100_000,
    ) {
        let buf = encode(&trace);
        let cut = cut % buf.len(); // strictly shorter than the full stream
        prop_assert!(read_trace(&mut Cursor::new(&buf[..cut])).is_err());
    }

    #[test]
    fn future_protocol_versions_are_rejected(
        trace in trace_strategy(),
        version in 3u8..128,
    ) {
        let mut buf = encode(&trace);
        // Offset 4: the version varint right after the 4-byte magic
        // (values < 128 occupy a single byte). Versions 1 and 2 are the
        // accepted range; anything newer must be rejected.
        buf[4] = version;
        prop_assert!(StreamReader::new(Cursor::new(&buf[..])).is_err());
    }
}

//! Property tests for the borrowed zero-copy decode path: for every
//! supported format version the [`RawTraceView`] must agree bit-for-bit
//! with the independent streaming decoder, and on the salvage corruption
//! corpus (cut, splice, bit flip — the same primitives the transport
//! fault plans use) the raw view must never panic and must reject every
//! buffer the strict streaming decoder rejects.

use critlock_trace::codec::{
    read_trace, read_trace_bytes, read_trace_bytes_salvage, write_trace_with_version, RawTraceView,
};
use critlock_trace::faults::FLIP_MASK;
use critlock_trace::salvage::salvage_trace;
use critlock_trace::{Budget, Trace, TraceBuilder};
use proptest::prelude::*;

/// Supported on-disk format versions (kept in sync with the codec's
/// `MIN_VERSION..=VERSION`; `write_trace_with_version` rejects anything
/// outside that range, so drift fails loudly here).
const VERSIONS: std::ops::RangeInclusive<u64> = 1..=3;

/// A protocol-valid trace: 1–3 threads doing work and whole critical
/// sections on two locks, sized by per-thread op counts.
fn valid_trace_strategy() -> impl Strategy<Value = Trace> {
    prop::collection::vec(prop::collection::vec((1u64..8, 0u8..3), 0..24), 1..4).prop_map(
        |threads| {
            let mut b = TraceBuilder::new("zero-copy-props");
            let l1 = b.lock("L1");
            let l2 = b.lock("L2");
            let tids: Vec<_> = (0..threads.len()).map(|i| b.thread(format!("t{i}"), 0)).collect();
            for (tid, ops) in tids.iter().zip(&threads) {
                let mut c = b.on(*tid);
                for &(amount, kind) in ops {
                    match kind {
                        0 => {
                            c.work(amount);
                        }
                        1 => {
                            c.cs(l1, amount);
                        }
                        _ => {
                            c.cs(l2, amount);
                        }
                    }
                }
                c.exit();
            }
            b.build().expect("builder output is always valid")
        },
    )
}

/// The byte-level mutations of the fault matrix: sever (cut), splice
/// (truncation) and single-byte corruption (bit flip).
fn mutate(bytes: &[u8], kind: u8, pos: usize, drop: usize) -> Vec<u8> {
    let mut out = bytes.to_vec();
    match kind {
        0 => {
            let at = pos % (out.len() + 1);
            out.truncate(at);
        }
        1 => {
            let at = pos % (out.len() + 1);
            let end = (at + 1 + drop).min(out.len());
            out.drain(at..end.max(at));
        }
        _ => {
            let at = pos % out.len();
            out[at] ^= FLIP_MASK;
        }
    }
    out
}

fn encode(trace: &Trace, version: u64) -> Vec<u8> {
    let mut buf = Vec::new();
    write_trace_with_version(trace, version, &mut buf).expect("encoding cannot fail");
    buf
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Across every format version: the borrowed view parses, validates
    /// the exact declared event count, materializes a trace bit-identical
    /// to both the streaming decoder's output and the original, and its
    /// per-event raw byte windows tile each section exactly.
    #[test]
    fn borrowed_view_matches_owned_decoder_across_versions(trace in valid_trace_strategy()) {
        let total: u64 = trace.threads.iter().map(|t| t.events.len() as u64).sum();
        for version in VERSIONS {
            let bytes = encode(&trace, version);

            let view = RawTraceView::parse(&bytes).expect("clean bytes must parse");
            prop_assert_eq!(view.version(), version);
            prop_assert_eq!(view.declared_events(), total);
            prop_assert_eq!(view.validate().expect("clean sections must validate"), total);

            let owned = read_trace(&mut &bytes[..]).expect("streaming decode must succeed");
            let borrowed = view.to_trace().expect("borrowed materialization must succeed");
            prop_assert_eq!(&borrowed, &owned, "borrowed vs streaming diverged (v{})", version);
            prop_assert_eq!(&borrowed, &trace, "round-trip not identity (v{})", version);
            prop_assert_eq!(
                read_trace_bytes(&bytes).expect("read_trace_bytes must succeed"),
                owned
            );

            // The borrowed iterator yields the same events as the owned
            // stream, and the raw windows re-tile the section verbatim —
            // the invariant the collector's journal re-framing relies on.
            for (raw_thread, stream) in view.threads().iter().zip(&owned.threads) {
                prop_assert_eq!(raw_thread.tid, stream.tid);
                prop_assert_eq!(raw_thread.name, stream.name.as_deref());
                let mut rebuilt = Vec::new();
                let mut n = 0usize;
                for (ev, expect) in raw_thread.events().zip(&stream.events) {
                    let ev = ev.expect("clean section record must decode");
                    prop_assert_eq!(&ev.event(), expect);
                    rebuilt.extend_from_slice(ev.raw);
                    n += 1;
                }
                prop_assert_eq!(n, stream.events.len());
                prop_assert_eq!(rebuilt.as_slice(), raw_thread.section());
            }
        }
    }

    /// On mutated bytes the raw view must never panic, must reject
    /// whenever the strict streaming decoder rejects, and salvage fed by
    /// the raw prefix decoder must keep its never-panic guarantee.
    #[test]
    fn raw_view_never_panics_and_rejects_with_strict(
        trace in valid_trace_strategy(),
        version in 1u64..4,
        kind in 0u8..3,
        pos in 0usize..1_000_000,
        drop in 1usize..64,
    ) {
        let clean = encode(&trace, version);
        let mutated = mutate(&clean, kind, pos, drop);

        let strict = read_trace(&mut &mutated[..]);
        let borrowed = RawTraceView::parse(&mutated).and_then(|view| {
            view.validate()?;
            view.to_trace()
        });
        if strict.is_err() {
            prop_assert!(
                borrowed.is_err(),
                "strict decoder rejected mutated bytes (v{version}, kind {kind}, pos {pos}) \
                 but the borrowed view accepted them"
            );
        }
        if let (Ok(s), Ok(b)) = (&strict, &borrowed) {
            prop_assert_eq!(s, b, "both paths accepted but disagreed");
        }

        // Salvage consumes sections through the same raw prefix decoder;
        // it must never panic either, and its output must still validate.
        let budget = Budget::unlimited();
        if let Ok((partial, _)) = read_trace_bytes_salvage(&mutated, &budget) {
            let salvaged = salvage_trace(&partial, &budget);
            salvaged.trace.validate().expect("salvaged trace must validate");
        }
    }
}

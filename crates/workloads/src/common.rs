//! Shared infrastructure for the workload models.

use critlock_sim::{Action, MachineConfig, Program, StepCtx};
use critlock_trace::ThreadId;

/// Configuration shared by every workload.
#[derive(Debug, Clone)]
pub struct WorkloadCfg {
    /// Number of worker threads (the paper sweeps 4/8/16/24).
    pub threads: usize,
    /// The simulated machine.
    pub machine: MachineConfig,
    /// Workload seed (task structure, per-task work draws). Independent
    /// of the machine seed.
    pub seed: u64,
    /// Input-size multiplier: 1.0 matches the defaults documented per
    /// workload; tests use smaller scales for speed.
    pub scale: f64,
}

impl Default for WorkloadCfg {
    fn default() -> Self {
        WorkloadCfg { threads: 24, machine: MachineConfig::power7_like(), seed: 42, scale: 1.0 }
    }
}

impl WorkloadCfg {
    /// A config with the given worker count on a matching machine
    /// (contexts == threads, like the paper's ≤24-thread runs on the
    /// 24-context POWER7).
    pub fn with_threads(threads: usize) -> Self {
        WorkloadCfg {
            threads,
            machine: MachineConfig::default().with_contexts(threads.max(1)),
            ..Default::default()
        }
    }

    /// Builder-style seed override.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Builder-style scale override.
    pub fn with_scale(mut self, scale: f64) -> Self {
        self.scale = scale;
        self
    }

    /// Scale an integer quantity by the configured factor (min 1).
    pub fn scaled(&self, n: usize) -> usize {
        ((n as f64) * self.scale).round().max(1.0) as usize
    }
}

/// A root program that spawns a set of workers, joins them in order and
/// exits — the fork-join main() every benchmark in the paper uses.
pub struct ForkJoinMain {
    to_spawn: Vec<(String, Box<dyn Program>)>,
    spawned: Vec<ThreadId>,
    join_idx: usize,
    phase: MainPhase,
}

enum MainPhase {
    Spawning,
    Joining,
    Done,
}

impl ForkJoinMain {
    /// Create the main program from named worker programs.
    pub fn new(workers: Vec<(String, Box<dyn Program>)>) -> Self {
        ForkJoinMain {
            to_spawn: workers,
            spawned: Vec::new(),
            join_idx: 0,
            phase: MainPhase::Spawning,
        }
    }
}

impl Program for ForkJoinMain {
    fn step(&mut self, ctx: &mut StepCtx<'_>) -> Action {
        // Record the tid of the worker spawned by the previous step.
        if let Some(t) = ctx.last_spawned {
            if self.spawned.last() != Some(&t) {
                self.spawned.push(t);
            }
        }
        match self.phase {
            MainPhase::Spawning => {
                if let Some((name, program)) = pop_front(&mut self.to_spawn) {
                    return Action::Spawn { name, program };
                }
                self.phase = MainPhase::Joining;
                self.step(ctx)
            }
            MainPhase::Joining => {
                if self.join_idx < self.spawned.len() {
                    let t = self.spawned[self.join_idx];
                    self.join_idx += 1;
                    return Action::Join(t);
                }
                self.phase = MainPhase::Done;
                Action::Exit
            }
            MainPhase::Done => Action::Exit,
        }
    }
}

fn pop_front<T>(v: &mut Vec<T>) -> Option<T> {
    if v.is_empty() {
        None
    } else {
        Some(v.remove(0))
    }
}

/// Deterministic 64-bit mix (splitmix64 finalizer); used by workloads to
/// derive per-task values from (seed, id) without carrying RNG state.
pub fn mix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// A deterministic draw in `[lo, hi)` from (seed, id).
pub fn draw_range(seed: u64, id: u64, lo: u64, hi: u64) -> u64 {
    debug_assert!(hi > lo);
    lo + mix64(seed ^ mix64(id)) % (hi - lo)
}

/// A deterministic probability draw from (seed, id): returns true with
/// probability `p`.
pub fn draw_prob(seed: u64, id: u64, p: f64) -> bool {
    let v = mix64(seed ^ mix64(id ^ 0xABCD_EF01)) as f64 / u64::MAX as f64;
    v < p
}

#[cfg(test)]
mod tests {
    use super::*;
    use critlock_sim::{Op, ScriptProgram, Simulator};

    #[test]
    fn fork_join_main_spawns_and_joins_all() {
        let mut sim = Simulator::new("fjm", MachineConfig::ideal());
        let workers: Vec<(String, Box<dyn Program>)> = (0..3)
            .map(|i| {
                (
                    format!("w{i}"),
                    Box::new(ScriptProgram::new(vec![Op::Compute(10 * (i + 1))]))
                        as Box<dyn Program>,
                )
            })
            .collect();
        sim.spawn("main", ForkJoinMain::new(workers));
        let trace = sim.run().unwrap();
        assert_eq!(trace.num_threads(), 4);
        assert_eq!(trace.makespan(), 30);
        assert_eq!(critlock_trace::join_episodes(&trace).len(), 3);
    }

    #[test]
    fn cfg_helpers() {
        let cfg = WorkloadCfg::with_threads(8).with_seed(7).with_scale(0.5);
        assert_eq!(cfg.threads, 8);
        assert_eq!(cfg.machine.contexts, 8);
        assert_eq!(cfg.seed, 7);
        assert_eq!(cfg.scaled(100), 50);
        assert_eq!(cfg.scaled(1), 1);
        let tiny = WorkloadCfg::with_threads(2).with_scale(0.0001);
        assert_eq!(tiny.scaled(10), 1); // clamped to 1
    }

    #[test]
    fn deterministic_draws() {
        assert_eq!(mix64(1), mix64(1));
        assert_ne!(mix64(1), mix64(2));
        for id in 0..100 {
            let v = draw_range(9, id, 10, 20);
            assert!((10..20).contains(&v));
        }
        // Probability draw is roughly calibrated.
        let hits = (0..10_000).filter(|&id| draw_prob(3, id, 0.3)).count();
        assert!((2500..3500).contains(&hits), "hits {hits}");
    }
}

//! The paper's Fig. 1 illustrative execution, encoded exactly.
//!
//! Four threads, four locks. The figure's stated properties, all of which
//! the tests pin down:
//!
//! * the critical path is 33 time units long;
//! * six hot critical sections lie on it; L1, L2 and L3 are critical
//!   locks, L4 is a normal lock;
//! * CS2 (guarded by L2) appears 4 times on the critical path, each 3
//!   units: 4·3/33 = 36.36% of the path, with contention probability
//!   3/4 = 75%;
//! * CS1 (guarded by L1) appears once, 1 unit: 1/33 = 3.03%, contention
//!   probability 0;
//! * CS3 (guarded by L3), invoked by T4, is uncontended yet *on* the
//!   path — idleness-based methods would miss it entirely;
//! * CS4 (guarded by L4), invoked by T3, blocks T4 for the longest wait
//!   of the whole run, yet lies *off* the path: optimizing it cannot help.
//!
//! The concrete timeline (start at 0, all threads exit at 33):
//!
//! ```text
//! T1: [CS1 0-1] [CS2 1-4] ........ work to 20, CS4 20-26, idle-free tail
//! T2: wait L2 .. [CS2 4-7]  work ...
//! T3: wait L2 ..... [CS2 7-10] work 10-20 [CS4 contended ...]
//! T4: wait L2 ........ [CS2 10-13] [CS3 13-18] work 18-33  <- finishes last
//! ```
//!
//! T4's tail runs to 33 and the backward walk threads through CS3, the
//! CS2 hand-off chain and finally T1's CS1.

use critlock_trace::{Trace, TraceBuilder};

/// Build the Fig. 1 trace.
pub fn fig1_trace() -> Trace {
    let mut b = TraceBuilder::new("fig1");
    b.param("source", "paper-fig1");
    let l1 = b.lock("L1");
    let l2 = b.lock("L2");
    let l3 = b.lock("L3");
    let l4 = b.lock("L4");
    let t1 = b.thread("T1", 0);
    let t2 = b.thread("T2", 0);
    let t3 = b.thread("T3", 0);
    let t4 = b.thread("T4", 0);

    // T1: CS1 [0,1] uncontended, then CS2 [1,4] uncontended (first holder),
    // then plain work, then CS4 [20,26] (T1 holds L4 while T3 waits...
    // no — the figure has T3 holding CS4 blocking T4; here T1 takes CS4
    // first so T3's CS4 invocation is the contended one that then blocks
    // nobody on the path).
    b.on(t1).cs(l1, 1).cs(l2, 3).work(16).cs(l4, 6).exit_at(33);

    // T2: blocks on L2 immediately at 0; gets it at 4 (released by T1),
    // holds 3; then local work to 33.
    b.on(t2).cs_blocked(l2, 4, 3).work(10).exit_at(33);

    // T3: blocks on L2 at 0, gets it at 7 (released by T2), holds 3;
    // works briefly; then contends on L4 at 12 behind T1, waiting 14
    // units (the longest single wait in the run) until 26, holds 6.
    b.on(t3).cs_blocked(l2, 7, 3).work(2).cs_blocked(l4, 26, 6).exit_at(33);

    // T4: blocks on L2 at 0, gets it at 10 (released by T3), holds 3;
    // then CS3 [13,18] uncontended; then works to 33 and finishes last.
    b.on(t4).cs_blocked(l2, 10, 3).cs(l3, 5).work(15).exit();

    b.build().expect("fig1 trace must validate")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig1_builds_and_validates() {
        let t = fig1_trace();
        assert_eq!(t.num_threads(), 4);
        assert_eq!(t.makespan(), 33);
        assert_eq!(t.objects.len(), 4);
    }

    #[test]
    fn all_four_locks_used() {
        let t = fig1_trace();
        let eps = critlock_trace::lock_episodes(&t);
        for name in ["L1", "L2", "L3", "L4"] {
            let id = t.object_by_name(name).unwrap();
            assert!(eps.iter().any(|e| e.lock == id), "{name} unused");
        }
        // L2 is invoked four times, three of them contended.
        let l2 = t.object_by_name("L2").unwrap();
        let l2_eps: Vec<_> = eps.iter().filter(|e| e.lock == l2).collect();
        assert_eq!(l2_eps.len(), 4);
        assert_eq!(l2_eps.iter().filter(|e| e.contended).count(), 3);
    }

    #[test]
    fn l4_has_longest_wait() {
        let t = fig1_trace();
        let eps = critlock_trace::lock_episodes(&t);
        let l4 = t.object_by_name("L4").unwrap();
        let max_wait_lock = eps.iter().max_by_key(|e| e.wait_time()).unwrap().lock;
        assert_eq!(max_wait_lock, l4);
    }
}

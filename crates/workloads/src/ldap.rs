//! An OpenLDAP-like directory server workload.
//!
//! The paper's real-world sanity check (§V.C): OpenLDAP 2.4.21 serving
//! 10k SLAMD-generated search requests with 16 worker threads shows *no*
//! significant critical section bottleneck — a decade of tuning left the
//! locks fine-grained and rarely contended, and the tool correctly
//! reports negligible numbers.
//!
//! The model: a load-generator thread (the SLAMD stand-in) publishes
//! search operations into a connection queue guarded by `conn_mutex` with
//! a `conn_cv` condition variable; worker threads dequeue and execute
//! each search against an entry cache striped over many
//! `entry_cache[i]` **reader-writer locks** (as the real slapd entry
//! cache is): lookups take the shared side, cache refreshes the
//! exclusive side, each held only for a hash-lookup instant.

use crate::common::{draw_range, ForkJoinMain, WorkloadCfg};
use critlock_sim::{Action, Program, Result, Simulator, StepCtx};
use critlock_trace::{ObjId, Trace};
use std::cell::RefCell;
use std::collections::VecDeque;
use std::rc::Rc;

/// Model parameters.
#[derive(Debug, Clone)]
pub struct LdapParams {
    /// Search requests issued by the load generator (paper: 10k).
    pub requests: usize,
    /// Worker threads are set by `WorkloadCfg::threads` (paper: 16).
    /// Virtual-ns the generator spends producing one request.
    pub produce_work: u64,
    /// Requests enqueued per generator critical section (SLAMD submits
    /// asynchronous bursts; batching also keeps `conn_mutex` cool, as a
    /// tuned server does).
    pub produce_batch: usize,
    /// Base per-search processing work (filter evaluation, result
    /// assembly).
    pub search_work: u64,
    /// Additional per-search spread.
    pub search_spread: u64,
    /// Entry-cache lookups per search.
    pub cache_lookups: usize,
    /// Probability that a lookup misses and upgrades to a write (cache
    /// refresh under the exclusive side of the rwlock).
    pub cache_miss_prob: f64,
    /// Hold time of one entry-cache lock.
    pub cache_hold: u64,
    /// Hold time of the connection-queue mutex.
    pub conn_hold: u64,
    /// Number of entry-cache stripe locks.
    pub cache_locks: usize,
}

impl Default for LdapParams {
    fn default() -> Self {
        LdapParams {
            requests: 2000,
            produce_work: 3,
            produce_batch: 16,
            search_work: 800,
            search_spread: 200,
            cache_lookups: 3,
            cache_miss_prob: 0.08,
            cache_hold: 2,
            conn_hold: 1,
            cache_locks: 64,
        }
    }
}

struct Shared {
    queue: VecDeque<u64>,
    produced: usize,
    served: u64,
    generator_done: bool,
}

struct Locks {
    conn_mutex: ObjId,
    conn_cv: ObjId,
    cache: Vec<ObjId>,
}

/// The SLAMD-like load generator.
struct Generator {
    params: Rc<LdapParams>,
    locks: Rc<Locks>,
    shared: Rc<RefCell<Shared>>,
    queued: VecDeque<Action>,
    phase: GenPhase,
}

enum GenPhase {
    Produce,
    EnqueueLocked,
    Finish,
    Done,
}

impl Program for Generator {
    fn step(&mut self, _ctx: &mut StepCtx<'_>) -> Action {
        loop {
            if let Some(a) = self.queued.pop_front() {
                return a;
            }
            match self.phase {
                GenPhase::Produce => {
                    if self.shared.borrow().produced >= self.params.requests {
                        self.phase = GenPhase::Finish;
                        continue;
                    }
                    let batch = self.params.produce_batch.max(1);
                    self.queued.push_back(Action::Compute(self.params.produce_work * batch as u64));
                    self.queued.push_back(Action::Lock(self.locks.conn_mutex));
                    self.phase = GenPhase::EnqueueLocked;
                }
                GenPhase::EnqueueLocked => {
                    {
                        let mut sh = self.shared.borrow_mut();
                        let batch = self
                            .params
                            .produce_batch
                            .max(1)
                            .min(self.params.requests - sh.produced);
                        for _ in 0..batch {
                            let id = sh.produced as u64;
                            sh.queue.push_back(id);
                            sh.produced += 1;
                        }
                    }
                    self.queued.push_back(Action::Compute(self.params.conn_hold));
                    self.queued.push_back(Action::Unlock(self.locks.conn_mutex));
                    self.queued.push_back(Action::CondBroadcast(self.locks.conn_cv));
                    self.phase = GenPhase::Produce;
                }
                GenPhase::Finish => {
                    // Signal shutdown: mark done and wake everyone.
                    self.shared.borrow_mut().generator_done = true;
                    self.queued.push_back(Action::Lock(self.locks.conn_mutex));
                    self.queued.push_back(Action::Compute(self.params.conn_hold));
                    self.queued.push_back(Action::Unlock(self.locks.conn_mutex));
                    self.queued.push_back(Action::CondBroadcast(self.locks.conn_cv));
                    self.phase = GenPhase::Done;
                }
                GenPhase::Done => return Action::Exit,
            }
        }
    }
}

/// A server worker thread.
struct Worker {
    seed: u64,
    params: Rc<LdapParams>,
    locks: Rc<Locks>,
    shared: Rc<RefCell<Shared>>,
    queued: VecDeque<Action>,
    phase: WPhase,
}

enum WPhase {
    DequeueLocked,
    Search { req: u64, lookups_left: usize, chunk: u64 },
    CacheLocked { req: u64, lookups_left: usize, chunk: u64, lock: ObjId },
    Done,
}

impl Program for Worker {
    fn step(&mut self, _ctx: &mut StepCtx<'_>) -> Action {
        loop {
            if let Some(a) = self.queued.pop_front() {
                return a;
            }
            match self.phase {
                WPhase::DequeueLocked => {
                    // Holding conn_mutex: take a request or wait on the cv.
                    let (req, done) = {
                        let mut sh = self.shared.borrow_mut();
                        (sh.queue.pop_front(), sh.generator_done)
                    };
                    match req {
                        Some(req) => {
                            self.queued.push_back(Action::Compute(self.params.conn_hold));
                            self.queued.push_back(Action::Unlock(self.locks.conn_mutex));
                            let total = self.params.search_work
                                + draw_range(self.seed, req ^ 0x1DA9, 0, self.params.search_spread);
                            let chunk = total / (self.params.cache_lookups as u64 + 1);
                            self.phase = WPhase::Search {
                                req,
                                lookups_left: self.params.cache_lookups,
                                chunk,
                            };
                        }
                        None if done => {
                            self.queued.push_back(Action::Unlock(self.locks.conn_mutex));
                            self.phase = WPhase::Done;
                        }
                        None => {
                            // Wait for work (releases and re-acquires the
                            // mutex around the block, Pthreads-style).
                            self.queued.push_back(Action::CondWait {
                                cv: self.locks.conn_cv,
                                mutex: self.locks.conn_mutex,
                            });
                            // Re-woken while holding the mutex: loop.
                        }
                    }
                }
                WPhase::Search { req, lookups_left, chunk } => {
                    self.queued.push_back(Action::Compute(chunk));
                    if lookups_left > 0 {
                        let key = req ^ (lookups_left as u64) << 24;
                        let idx =
                            draw_range(self.seed, key ^ 0xCAC4E, 0, self.locks.cache.len() as u64)
                                as usize;
                        let lock = self.locks.cache[idx];
                        // Cache hit: shared lookup. Miss: exclusive refresh.
                        if crate::common::draw_prob(
                            self.seed,
                            key ^ 0x3155,
                            self.params.cache_miss_prob,
                        ) {
                            self.queued.push_back(Action::RwWrite(lock));
                        } else {
                            self.queued.push_back(Action::RwRead(lock));
                        }
                        self.phase = WPhase::CacheLocked {
                            req,
                            lookups_left: lookups_left - 1,
                            chunk,
                            lock,
                        };
                    } else {
                        self.shared.borrow_mut().served += 1;
                        self.queued.push_back(Action::Lock(self.locks.conn_mutex));
                        self.phase = WPhase::DequeueLocked;
                    }
                }
                WPhase::CacheLocked { req, lookups_left, chunk, lock } => {
                    self.queued.push_back(Action::Compute(self.params.cache_hold));
                    self.queued.push_back(Action::RwUnlock(lock));
                    self.phase = WPhase::Search { req, lookups_left, chunk };
                }
                WPhase::Done => return Action::Exit,
            }
        }
    }
}

/// Run the LDAP-like server model. `cfg.threads` is the worker count
/// (paper: 16); the load generator runs as an extra thread.
pub fn run(cfg: &WorkloadCfg) -> Result<Trace> {
    run_with(cfg, LdapParams { requests: cfg.scaled(2000), ..Default::default() })
}

/// Run with explicit parameters.
pub fn run_with(cfg: &WorkloadCfg, params: LdapParams) -> Result<Trace> {
    // The paper binds SLAMD to a dedicated core "on the same machine";
    // give the generator (and the idle main thread) their own contexts so
    // the 16 workers are never descheduled while holding a lock.
    let mut machine = cfg.machine.clone();
    if machine.contexts > 0 {
        machine.contexts = machine.contexts.max(cfg.threads + 2);
    }
    let mut sim = Simulator::new("openldap-like", machine);
    let locks = Rc::new(Locks {
        conn_mutex: sim.add_lock("conn_mutex"),
        conn_cv: sim.add_condvar("conn_cv"),
        cache: (0..params.cache_locks)
            .map(|i| sim.add_rwlock(format!("entry_cache[{i}]")))
            .collect(),
    });
    let shared = Rc::new(RefCell::new(Shared {
        queue: VecDeque::new(),
        produced: 0,
        served: 0,
        generator_done: false,
    }));
    let params = Rc::new(params);

    let mut programs: Vec<(String, Box<dyn Program>)> = vec![(
        "slamd-generator".to_string(),
        Box::new(Generator {
            params: Rc::clone(&params),
            locks: Rc::clone(&locks),
            shared: Rc::clone(&shared),
            queued: VecDeque::new(),
            phase: GenPhase::Produce,
        }) as Box<dyn Program>,
    )];
    for i in 0..cfg.threads {
        let mut w = Worker {
            seed: cfg.seed,
            params: Rc::clone(&params),
            locks: Rc::clone(&locks),
            shared: Rc::clone(&shared),
            queued: VecDeque::new(),
            phase: WPhase::DequeueLocked,
        };
        w.queued.push_back(Action::Lock(locks.conn_mutex));
        programs.push((format!("worker-{i}"), Box::new(w)));
    }
    sim.spawn("main", ForkJoinMain::new(programs));

    let mut trace = sim.run()?;
    let sh = shared.borrow();
    trace.meta.params.insert("requests".into(), params.requests.to_string());
    trace.meta.params.insert("served".into(), sh.served.to_string());
    Ok(trace)
}

#[cfg(test)]
mod tests {
    use super::*;
    use critlock_analysis::analyze;

    fn small(threads: usize) -> WorkloadCfg {
        WorkloadCfg::with_threads(threads).with_scale(0.25)
    }

    #[test]
    fn all_requests_served() {
        let t = run(&small(8)).unwrap();
        assert_eq!(t.meta.params.get("served"), t.meta.params.get("requests"));
    }

    #[test]
    fn no_significant_lock_bottleneck() {
        // The paper's OpenLDAP conclusion: every lock is a small fraction
        // of the critical path.
        let rep = analyze(&run(&small(16)).unwrap());
        if let Some(top) = rep.top_critical_lock() {
            assert!(
                top.cp_time_frac < 0.08,
                "{} at {:.1}% is too hot for the tuned server",
                top.name,
                top.cp_time_frac * 100.0
            );
        }
    }

    #[test]
    fn entry_cache_uses_rwlocks() {
        let t = run(&small(8)).unwrap();
        let eps = critlock_trace::rw_episodes(&t);
        assert!(!eps.is_empty(), "cache lookups must appear as rw episodes");
        let writes = eps.iter().filter(|e| e.write).count();
        let reads = eps.iter().filter(|e| !e.write).count();
        assert!(reads > writes * 3, "reads {reads} must dominate writes {writes}");
        // Shared lookups on the same stripe may overlap in time.
        assert!(critlock_analysis::validate::check_trace(&t).is_empty());
    }

    #[test]
    fn condvar_waits_recorded() {
        let t = run(&small(4)).unwrap();
        assert!(!critlock_trace::cond_wait_episodes(&t).is_empty());
    }

    #[test]
    fn walk_completes() {
        let rep = analyze(&run(&small(4)).unwrap());
        assert!(rep.cp_complete, "walk should complete");
    }

    #[test]
    fn deterministic() {
        assert_eq!(run(&small(4)).unwrap(), run(&small(4)).unwrap());
    }

    #[test]
    #[ignore]
    fn calibrate_ldap() {
        let t = run(&WorkloadCfg::with_threads(16)).unwrap();
        let rep = analyze(&t);
        print!("16t: makespan {}", t.makespan());
        for l in rep.locks.iter().take(3) {
            print!(
                "  {} cp {:.2}% wait {:.2}%",
                l.name,
                l.cp_time_frac * 100.0,
                l.avg_wait_frac * 100.0
            );
        }
        println!();
    }
}

#[cfg(test)]
mod debug_tests {
    #[test]
    #[ignore]
    fn debug_ldap_conn() {
        use crate::common::WorkloadCfg;
        use critlock_analysis::analyze;
        let t = crate::ldap::run(&WorkloadCfg::with_threads(16)).unwrap();
        let rep = analyze(&t);
        let c = rep.lock_by_name("conn_mutex").unwrap();
        println!("conn: cp_time {} frac {:.3} invo_cp {} total_invo {} total_hold {} total_wait {} makespan {}",
            c.cp_time, c.cp_time_frac, c.invocations_on_cp, c.total_invocations, c.total_hold, c.total_wait, rep.makespan);
    }
}

//! # critlock-workloads
//!
//! Synchronization-skeleton models of the multithreaded applications the
//! paper evaluates (§V, Table 1), built on the deterministic simulator,
//! plus real-thread variants of the micro-benchmark on the
//! instrumentation runtime.
//!
//! Each model reproduces its application's *lock topology* — which locks
//! exist, what they protect, how often and how long they are held, and
//! where the load imbalance comes from — because those properties
//! determine every statistic critical lock analysis reports. Absolute
//! times are virtual; the shapes (which lock dominates the critical path,
//! where rankings cross over as threads scale, how much an optimization
//! helps) are the reproduction targets recorded in `EXPERIMENTS.md`.
//!
//! | module | paper workload | headline bottleneck |
//! |---|---|---|
//! | [`micro`] | Fig. 5 micro-benchmark | L2 (critical) vs L1 (wait-heavy) |
//! | [`radiosity`] | SPLASH-2 Radiosity | `tq[0].qlock` beyond 8 threads |
//! | [`tsp`] | Pthreads TSP | global `Qlock` (~68% of the path) |
//! | [`uts`] | Unbalanced Tree Search | `stackLock[i]`: on-path, no waits |
//! | [`water`] | SPLASH-2 Water-nsquared | minor locks, barrier-dominated |
//! | [`volrend`] | SPLASH-2 Volrend | tile queue lock, moderate |
//! | [`raytrace`] | SPLASH-2 Raytrace | global `mem` arena lock |
//! | [`ldap`] | OpenLDAP 2.4.21 + SLAMD | none (fine-grained locking) |
//! | [`fig1`] | the paper's Fig. 1 | hand-encoded illustrative trace |

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod common;
pub mod fig1;
pub mod ldap;
pub mod micro;
pub mod queue;
pub mod radiosity;
pub mod raytrace;
pub mod suite;
pub mod tsp;
pub mod uts;
pub mod volrend;
pub mod water;

pub use common::WorkloadCfg;
pub use fig1::fig1_trace;

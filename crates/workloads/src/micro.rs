//! The paper's micro-benchmark (Fig. 5): two consecutive critical
//! sections per thread, the first guarded by L1 and the second (25%
//! larger) by L2.
//!
//! All threads run `lock(L1); loop(2e9); unlock(L1); lock(L2); loop(2.5e9);
//! unlock(L2)`. In the simulated variant the loop iteration counts map
//! directly to virtual time (ratio 2 : 2.5 preserved); the real-thread
//! variant runs actual counter loops under instrumented mutexes.
//!
//! Expected shape (Fig. 6, 4 threads): under critical lock analysis L2
//! accounts for ~83% of the critical path versus ~17% for L1, while the
//! classical wait-time metric ranks L1 first — and the measured speedups
//! after equal-effort optimization confirm L2 is the better target.

use crate::common::WorkloadCfg;
use critlock_sim::{Op, Result, ScriptProgram, Simulator};
use critlock_trace::Trace;

/// Virtual-time cost of CS1 at scale 1.0 (stands in for 2e9 iterations).
pub const CS1_COST: u64 = 2_000;
/// Virtual-time cost of CS2 at scale 1.0 (stands in for 2.5e9 iterations).
pub const CS2_COST: u64 = 2_500;

/// Run the simulated micro-benchmark with the default CS costs.
pub fn run(cfg: &WorkloadCfg) -> Result<Trace> {
    run_custom(cfg, scale_cost(CS1_COST, cfg), scale_cost(CS2_COST, cfg))
}

/// Run with explicit per-CS costs (used by the optimization validation:
/// the paper cuts 1e9 iterations — here `CS?_COST * scale - 1000 * scale`
/// — from one loop at a time).
pub fn run_custom(cfg: &WorkloadCfg, cs1: u64, cs2: u64) -> Result<Trace> {
    let mut sim = Simulator::new("micro", cfg.machine.clone());
    let l1 = sim.add_lock("L1");
    let l2 = sim.add_lock("L2");
    for i in 0..cfg.threads {
        sim.spawn(
            format!("T{i}"),
            ScriptProgram::new(vec![Op::Critical(l1, cs1), Op::Critical(l2, cs2)]),
        );
    }
    let mut trace = sim.run()?;
    trace.meta.params.insert("cs1".into(), cs1.to_string());
    trace.meta.params.insert("cs2".into(), cs2.to_string());
    Ok(trace)
}

/// The "optimize L1" variant: CS1 shortened by the standard effort unit
/// (1000 virtual ns at scale 1, the 1e9-iteration cut of the paper).
pub fn run_l1_optimized(cfg: &WorkloadCfg) -> Result<Trace> {
    let cut = scale_cost(1_000, cfg);
    run_custom(cfg, scale_cost(CS1_COST, cfg) - cut, scale_cost(CS2_COST, cfg))
}

/// The "optimize L2" variant: CS2 shortened by the same effort.
pub fn run_l2_optimized(cfg: &WorkloadCfg) -> Result<Trace> {
    let cut = scale_cost(1_000, cfg);
    run_custom(cfg, scale_cost(CS1_COST, cfg), scale_cost(CS2_COST, cfg) - cut)
}

fn scale_cost(c: u64, cfg: &WorkloadCfg) -> u64 {
    ((c as f64) * cfg.scale).round().max(1.0) as u64
}

/// Real-thread variant: actual counter loops under instrumented mutexes.
/// `iters_*` are loop iteration counts (use ~1e6-1e7 for sub-second runs;
/// the paper's 2e9/2.5e9 take minutes).
pub fn run_real(threads: usize, iters_cs1: u64, iters_cs2: u64) -> critlock_trace::Result<Trace> {
    use critlock_instrument::{spawn, Session};
    use std::sync::Arc;

    let session = Session::new("micro-real");
    session.param("threads", threads);
    session.param("iters_cs1", iters_cs1);
    session.param("iters_cs2", iters_cs2);
    // Counters in different cache lines (the paper pads to avoid false
    // sharing); separate allocations achieve the same.
    let l1 = Arc::new(session.mutex("L1", 0u64));
    let l2 = Arc::new(session.mutex("L2", 0u64));

    let handles: Vec<_> = (0..threads)
        .map(|i| {
            let (l1, l2) = (Arc::clone(&l1), Arc::clone(&l2));
            spawn(&session, format!("T{i}"), move || {
                {
                    let mut a = l1.lock();
                    for _ in 0..iters_cs1 {
                        *a = std::hint::black_box(*a + 1);
                    }
                }
                {
                    let mut b = l2.lock();
                    for _ in 0..iters_cs2 {
                        *b = std::hint::black_box(*b + 1);
                    }
                }
            })
        })
        .collect();
    for h in handles {
        h.join().expect("micro worker panicked");
    }
    session.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use critlock_analysis::analyze;

    fn cfg4() -> WorkloadCfg {
        WorkloadCfg::with_threads(4)
    }

    #[test]
    fn sim_micro_matches_fig6_shape() {
        let trace = run(&cfg4()).unwrap();
        // Serialized: a + 4b.
        assert_eq!(trace.makespan(), 2_000 + 4 * 2_500);
        let rep = analyze(&trace);
        let l1 = rep.lock_by_name("L1").unwrap();
        let l2 = rep.lock_by_name("L2").unwrap();
        // Fig. 6: CP Time 16.67% vs 83.33%.
        assert!((l1.cp_time_frac - 1.0 / 6.0).abs() < 1e-9);
        assert!((l2.cp_time_frac - 5.0 / 6.0).abs() < 1e-9);
        // The methods disagree: wait time ranks L1 first.
        assert!(l1.avg_wait_frac > l2.avg_wait_frac);
        assert_eq!(rep.rank_by_cp_time("L2"), Some(1));
        assert_eq!(rep.rank_by_wait_time("L1"), Some(1));
    }

    #[test]
    fn optimizing_l2_beats_optimizing_l1() {
        let base = run(&cfg4()).unwrap().makespan() as f64;
        let opt1 = run_l1_optimized(&cfg4()).unwrap().makespan() as f64;
        let opt2 = run_l2_optimized(&cfg4()).unwrap().makespan() as f64;
        let s1 = base / opt1;
        let s2 = base / opt2;
        // Fig. 6 measured 1.26 vs 1.37; the idealized machine gives
        // 1.09 vs 1.26 — same winner.
        assert!(s2 > s1, "L2 optimization must win: {s1:.3} vs {s2:.3}");
        assert!(s1 > 1.0);
    }

    #[test]
    fn scale_shrinks_run() {
        let cfg = cfg4().with_scale(0.1);
        let t = run(&cfg).unwrap();
        assert_eq!(t.makespan(), 200 + 4 * 250);
    }

    #[test]
    fn thread_sweep_keeps_l2_dominant() {
        for threads in [2, 4, 8, 16] {
            let rep = analyze(&run(&WorkloadCfg::with_threads(threads)).unwrap());
            assert_eq!(rep.rank_by_cp_time("L2"), Some(1), "L2 must top CP at {threads} threads");
        }
    }

    #[test]
    fn real_micro_runs_and_analyzes() {
        // Large enough that the serialized critical sections dwarf spawn
        // and scheduling noise on any host.
        let trace = run_real(4, 400_000, 500_000).unwrap();
        let rep = analyze(&trace);
        assert!(rep.cp_complete);
        let l2 = rep.lock_by_name("L2").unwrap();
        assert_eq!(l2.total_invocations, 4);
        // On a real multicore the shape holds loosely: L2's CP share must
        // exceed L1's (it is 25% bigger and serialized last). On a 1-CPU
        // host the threads time-share and the parallel shape degenerates,
        // so only check it when real parallelism exists.
        let cores = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
        if cores >= 4 {
            let l1 = rep.lock_by_name("L1").unwrap();
            assert!(l2.cp_time >= l1.cp_time, "L2 {} vs L1 {}", l2.cp_time, l1.cp_time);
        }
    }
}

//! Real-thread concurrent queue substrates.
//!
//! The optimization the paper applies to Radiosity and TSP (§V.D.3,
//! §V.E) is the *two-lock concurrent queue* of Michael & Scott [15]:
//! separate head and tail locks let one enqueuer and one dequeuer proceed
//! in parallel. This module provides working, instrumented
//! implementations of both the baseline single-lock queue and the
//! two-lock queue, running on real threads via `critlock-instrument` —
//! so the optimization can be demonstrated end-to-end outside the
//! simulator too (see `examples/queue_contention.rs`).

use critlock_instrument::{Mutex, Session};
use std::collections::VecDeque;

/// Baseline: one mutex guards the whole queue — every enqueue and
/// dequeue serializes (Radiosity's original `tq[i].qlock` design).
pub struct SingleLockQueue<T> {
    inner: Mutex<VecDeque<T>>,
}

impl<T> SingleLockQueue<T> {
    /// Create a queue whose lock is registered with `session` under
    /// `name`.
    pub fn new(session: &Session, name: impl Into<String>) -> Self {
        SingleLockQueue { inner: session.mutex(name, VecDeque::new()) }
    }

    /// Append at the tail.
    pub fn enqueue(&self, value: T) {
        self.inner.lock().push_back(value);
    }

    /// Remove from the head.
    pub fn dequeue(&self) -> Option<T> {
        self.inner.lock().pop_front()
    }

    /// Current length (takes the lock).
    pub fn len(&self) -> usize {
        self.inner.lock().len()
    }

    /// Whether the queue is empty (takes the lock).
    pub fn is_empty(&self) -> bool {
        self.inner.lock().is_empty()
    }
}

/// The Michael–Scott two-lock queue: a linked list with a dummy head
/// node; `head_lock` serializes dequeuers, `tail_lock` serializes
/// enqueuers, and the dummy node keeps them from ever touching the same
/// node when the queue is non-empty.
pub struct TwoLockQueue<T> {
    head_lock: Mutex<*mut Node<T>>,
    tail_lock: Mutex<*mut Node<T>>,
}

struct Node<T> {
    value: Option<T>,
    next: std::sync::atomic::AtomicPtr<Node<T>>,
}

impl<T> Node<T> {
    fn boxed(value: Option<T>) -> *mut Node<T> {
        Box::into_raw(Box::new(Node {
            value,
            next: std::sync::atomic::AtomicPtr::new(std::ptr::null_mut()),
        }))
    }
}

// SAFETY: the raw node pointers are only dereferenced while holding the
// corresponding lock; ownership of nodes transfers from enqueuer to
// dequeuer through the `next` pointers with Release/Acquire ordering,
// exactly as in Michael & Scott's algorithm.
unsafe impl<T: Send> Send for TwoLockQueue<T> {}
unsafe impl<T: Send> Sync for TwoLockQueue<T> {}

impl<T> TwoLockQueue<T> {
    /// Create a queue whose two locks are registered with `session` as
    /// `{name}.q_head_lock` and `{name}.q_tail_lock`.
    pub fn new(session: &Session, name: &str) -> Self {
        let dummy = Node::boxed(None);
        TwoLockQueue {
            head_lock: session.mutex(format!("{name}.q_head_lock"), dummy),
            tail_lock: session.mutex(format!("{name}.q_tail_lock"), dummy),
        }
    }

    /// Append at the tail (holds only the tail lock).
    pub fn enqueue(&self, value: T) {
        let node = Node::boxed(Some(value));
        let tail_guard = self.tail_lock.lock();
        // SAFETY: *tail_guard is the current tail node; we own the tail
        // lock, so nobody else can update its `next`.
        unsafe {
            (**tail_guard).next.store(node, std::sync::atomic::Ordering::Release);
        }
        // Move the tail pointer. The guard is mutable via interior access.
        let mut tail_guard = tail_guard;
        *tail_guard = node;
    }

    /// Remove from the head (holds only the head lock).
    pub fn dequeue(&self) -> Option<T> {
        let mut head_guard = self.head_lock.lock();
        // SAFETY: *head_guard is the dummy node; its `next` is the first
        // real node, published with Release by the enqueuer.
        let first = unsafe { (**head_guard).next.load(std::sync::atomic::Ordering::Acquire) };
        if first.is_null() {
            return None;
        }
        // SAFETY: `first` was fully initialized before being published;
        // we take its value and make it the new dummy, freeing the old
        // dummy.
        let value = unsafe { (*first).value.take() };
        let old_dummy = *head_guard;
        *head_guard = first;
        drop(head_guard);
        // SAFETY: the old dummy is unreachable now: the head pointer moved
        // past it and dequeuers are the only readers of dummy nodes.
        unsafe {
            drop(Box::from_raw(old_dummy));
        }
        value
    }
}

impl<T> Drop for TwoLockQueue<T> {
    fn drop(&mut self) {
        // Drain remaining nodes, then free the dummy.
        while self.dequeue().is_some() {}
        let dummy = *self.head_lock.lock();
        // SAFETY: the queue is empty; only the dummy remains, owned here.
        unsafe {
            drop(Box::from_raw(dummy));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use critlock_instrument::spawn;
    use std::sync::Arc;

    #[test]
    fn single_lock_fifo_order() {
        let session = Session::new("q1");
        let q = SingleLockQueue::new(&session, "q");
        assert!(q.is_empty());
        q.enqueue(1);
        q.enqueue(2);
        q.enqueue(3);
        assert_eq!(q.len(), 3);
        assert_eq!(q.dequeue(), Some(1));
        assert_eq!(q.dequeue(), Some(2));
        assert_eq!(q.dequeue(), Some(3));
        assert_eq!(q.dequeue(), None);
        session.finish().unwrap();
    }

    #[test]
    fn two_lock_fifo_order() {
        let session = Session::new("q2");
        let q = TwoLockQueue::new(&session, "q");
        assert_eq!(q.dequeue(), None);
        for i in 0..100 {
            q.enqueue(i);
        }
        for i in 0..100 {
            assert_eq!(q.dequeue(), Some(i));
        }
        assert_eq!(q.dequeue(), None);
        drop(q);
        session.finish().unwrap();
    }

    #[test]
    fn two_lock_concurrent_producer_consumer() {
        let session = Session::new("q3");
        let q = Arc::new(TwoLockQueue::new(&session, "q"));
        const N: u64 = 10_000;

        let qp = Arc::clone(&q);
        let producer = spawn(&session, "producer", move || {
            for i in 0..N {
                qp.enqueue(i);
            }
        });
        let qc = Arc::clone(&q);
        let consumer = spawn(&session, "consumer", move || {
            let mut got = Vec::with_capacity(N as usize);
            while got.len() < N as usize {
                if let Some(v) = qc.dequeue() {
                    got.push(v);
                }
            }
            got
        });
        producer.join().unwrap();
        let got = consumer.join().unwrap();
        // FIFO: the consumer sees exactly 0..N in order.
        assert_eq!(got.len(), N as usize);
        assert!(got.windows(2).all(|w| w[0] < w[1]));

        drop(q);
        let trace = session.finish().unwrap();
        // Head and tail locks both saw traffic.
        let head = trace.object_by_name("q.q_head_lock").unwrap();
        let tail = trace.object_by_name("q.q_tail_lock").unwrap();
        let eps = critlock_trace::lock_episodes(&trace);
        assert!(eps.iter().any(|e| e.lock == head));
        assert!(eps.iter().any(|e| e.lock == tail));
    }

    #[test]
    fn two_lock_multi_producer_multi_consumer() {
        let session = Session::new("q4");
        let q = Arc::new(TwoLockQueue::new(&session, "q"));
        const PER: u64 = 2_000;
        let producers: Vec<_> = (0..4u64)
            .map(|p| {
                let q = Arc::clone(&q);
                spawn(&session, format!("p{p}"), move || {
                    for i in 0..PER {
                        q.enqueue(p * PER + i);
                    }
                })
            })
            .collect();
        let consumers: Vec<_> = (0..4)
            .map(|c| {
                let q = Arc::clone(&q);
                spawn(&session, format!("c{c}"), move || {
                    let mut sum = 0u64;
                    let mut n = 0u64;
                    while n < PER {
                        if let Some(v) = q.dequeue() {
                            sum += v;
                            n += 1;
                        }
                    }
                    sum
                })
            })
            .collect();
        for p in producers {
            p.join().unwrap();
        }
        let total: u64 = consumers.into_iter().map(|c| c.join().unwrap()).sum();
        let expect: u64 = (0..4 * PER).sum();
        assert_eq!(total, expect, "every element consumed exactly once");
        drop(q);
        session.finish().unwrap();
    }

    #[test]
    fn drop_with_remaining_elements_frees_them() {
        let session = Session::new("q5");
        let q = TwoLockQueue::new(&session, "q");
        for i in 0..50 {
            q.enqueue(Box::new(i)); // boxed to catch leaks/double-frees under sanitizers
        }
        drop(q);
        session.finish().unwrap();
    }
}

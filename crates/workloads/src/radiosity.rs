//! Radiosity (SPLASH-2) synchronization skeleton.
//!
//! The real application computes global illumination by iteratively
//! refining patch interactions. What matters for critical lock analysis
//! is its *lock topology* (§V.D):
//!
//! * each thread owns a task queue protected by a single `tq[i].qlock`
//!   taken by **both** enqueue and dequeue — and by thieves;
//! * initial tasks are distributed round-robin, but a fraction of the
//!   dynamically spawned tasks funnel through queue 0 (the master
//!   queue), and idle threads steal scanning from queue 0 upward — so
//!   `tq[0].qlock` turns into the bottleneck as threads are added;
//! * every task allocates *interaction* records from a global free list
//!   under `freeInter`: many small, mostly uncontended critical
//!   sections — big in aggregate, hence high on the critical path at low
//!   thread counts despite low wait times;
//! * a handful of rarer locks (`free_elemvertex`, `free_edge`) and a
//!   `pbar_lock` + barrier per iteration complete the population.
//!
//! The *optimized* variant applies the paper's fix (§V.D.3): each task
//! queue becomes a Michael–Scott two-lock queue with separate
//! `tq[i].q_head_lock` / `tq[i].q_tail_lock`, parallelizing enqueues
//! against dequeues and splitting the hold time.

use crate::common::{draw_prob, draw_range, ForkJoinMain, WorkloadCfg};
use critlock_sim::{Action, Program, Result, Simulator, StepCtx};
use critlock_trace::{ObjId, Trace};
use std::cell::RefCell;
use std::collections::VecDeque;
use std::rc::Rc;

/// Tunable model parameters. Defaults are calibrated so the analysis
/// reproduces the shape of the paper's Figs. 8–14 (see the fig9 bench).
#[derive(Debug, Clone)]
pub struct RadiosityParams {
    /// Barrier-separated refinement iterations.
    pub iterations: usize,
    /// Initial tasks per iteration (split round-robin over queues).
    pub initial_tasks: usize,
    /// Base virtual-ns of work per task.
    pub base_work: u64,
    /// Additional uniform spread of per-task work.
    pub work_spread: u64,
    /// Hold time of the single-lock queue operations.
    pub queue_hold: u64,
    /// Hold time of a dequeue attempt that finds the queue empty (the
    /// emptiness check still takes the lock, as in SPLASH-2 Radiosity).
    pub check_hold: u64,
    /// Hold time of each half of the two-lock queue operations.
    pub split_hold: u64,
    /// Hold time of a failed dequeue check on a two-lock queue (the head
    /// pointer inspection is much cheaper than a full queue scan).
    pub split_check_hold: u64,
    /// Hold time of a `freeInter` allocation.
    pub alloc_hold: u64,
    /// Free-list allocations per task.
    pub allocs_per_task: usize,
    /// Probability that a spawned child is enqueued to queue 0 instead of
    /// the worker's own queue.
    pub global_enqueue_prob: f64,
    /// Busy-poll cost when no work is visible.
    pub idle_spin: u64,
    /// Hold time of the `pbar_lock` critical section before each barrier.
    pub pbar_hold: u64,
    /// Use the two-lock (Michael–Scott) queues.
    pub optimized: bool,
}

impl Default for RadiosityParams {
    fn default() -> Self {
        RadiosityParams {
            iterations: 3,
            initial_tasks: 48,
            base_work: 260,
            work_spread: 240,
            queue_hold: 14,
            check_hold: 10,
            split_hold: 10,
            split_check_hold: 3,
            alloc_hold: 3,
            allocs_per_task: 4,
            global_enqueue_prob: 0.05,
            idle_spin: 120,
            pbar_hold: 4,
            optimized: false,
        }
    }
}

#[derive(Debug, Clone, Copy)]
struct Task {
    id: u64,
    work: u64,
    /// Remaining length of this refinement chain: each task spawns one
    /// successor until its chain is exhausted. A few chains are long
    /// (visibility refinements), most are short — the imbalance that
    /// caps Radiosity's scalability.
    remaining: u16,
}

struct Shared {
    queues: Vec<VecDeque<Task>>,
    spawned: u64,
    completed: u64,
    filled_count: usize,
    task_counter: u64,
}

struct Locks {
    /// Single-lock mode: `tq[i].qlock`. Split mode: unused.
    tq: Vec<ObjId>,
    /// Split mode dequeue locks: `tq[i].q_head_lock`.
    tq_head: Vec<ObjId>,
    /// Split mode enqueue locks: `tq[i].q_tail_lock`.
    tq_tail: Vec<ObjId>,
    free_inter: ObjId,
    phase_marker: ObjId,
    free_elemvertex: ObjId,
    free_edge: ObjId,
    pbar: ObjId,
    barrier: ObjId,
}

impl Locks {
    fn enq(&self, q: usize, optimized: bool) -> ObjId {
        if optimized {
            self.tq_tail[q]
        } else {
            self.tq[q]
        }
    }
    fn deq(&self, q: usize, optimized: bool) -> ObjId {
        if optimized {
            self.tq_head[q]
        } else {
            self.tq[q]
        }
    }
}

enum Phase {
    FillNext,
    FillLocked,
    /// Decide the next dequeue attempt. `scan == None` tries the own
    /// queue; `Some(k)` tries victim `k` (stealing scans from queue 0
    /// upward, as Radiosity does).
    FindWork {
        scan: Option<usize>,
    },
    DeqLocked {
        q: usize,
        scan: Option<usize>,
    },
    WorkChunk,
    AllocLocked {
        lock: ObjId,
    },
    EnqChild,
    EnqLocked {
        q: usize,
    },
    PbarLocked,
    AfterBarrier,
    Done,
}

struct Worker {
    id: usize,
    /// Index of this worker's local queue (master queue is index 0).
    own_q: usize,
    threads: usize,
    seed: u64,
    params: Rc<RadiosityParams>,
    locks: Rc<Locks>,
    shared: Rc<RefCell<Shared>>,
    iter: usize,
    phase: Phase,
    queued: VecDeque<Action>,
    fill_left: Vec<Task>,
    pending_task: Option<Task>,
    cur_task: Option<Task>,
    chunks_left: usize,
    chunk_work: u64,
    children_left: Vec<Task>,
    /// Exponential poll backoff, reset whenever a task is obtained.
    backoff: u64,
}

impl Worker {
    fn new(
        id: usize,
        threads: usize,
        seed: u64,
        params: Rc<RadiosityParams>,
        locks: Rc<Locks>,
        shared: Rc<RefCell<Shared>>,
    ) -> Self {
        let backoff = params.idle_spin;
        let mut w = Worker {
            id,
            own_q: id + 1,
            threads,
            seed,
            params,
            locks,
            shared,
            iter: 0,
            phase: Phase::FillNext,
            queued: VecDeque::new(),
            fill_left: Vec::new(),
            pending_task: None,
            cur_task: None,
            chunks_left: 0,
            chunk_work: 0,
            children_left: Vec::new(),
            backoff,
        };
        w.fill_left = w.initial_tasks_for_iter(0);
        w
    }

    /// The iteration's initial chain-head tasks. Worker 0 — the master —
    /// enqueues all of them into queue 0; everyone else steals from
    /// there, which is what makes `tq[0]` the distribution channel.
    fn initial_tasks_for_iter(&mut self, iter: usize) -> Vec<Task> {
        if self.id != 0 {
            return Vec::new();
        }
        (0..self.params.initial_tasks)
            .map(|i| {
                let id = (iter as u64) << 32 | i as u64;
                // A quarter of the chains are long visibility refinements;
                // the rest are short.
                let len = match draw_range(self.seed, id ^ 0x10A6, 0, 3) {
                    0 => 8 + draw_range(self.seed, id ^ 0x77, 0, 9),
                    1 => 14 + draw_range(self.seed, id ^ 0x77, 0, 7),
                    _ => 24 + draw_range(self.seed, id ^ 0x77, 0, 17),
                };
                self.make_task(id, len as u16)
            })
            .collect()
    }

    fn make_task(&self, id: u64, remaining: u16) -> Task {
        let work = draw_range(
            self.seed,
            id,
            self.params.base_work,
            self.params.base_work + self.params.work_spread,
        );
        Task { id, work, remaining }
    }

    /// Deterministic successor of a completed task: chains continue one
    /// task at a time until exhausted.
    fn children_of(&mut self, task: Task) -> Vec<Task> {
        if task.remaining == 0 {
            return Vec::new();
        }
        let id = {
            let mut sh = self.shared.borrow_mut();
            sh.task_counter += 1;
            (1u64 << 48) | sh.task_counter
        };
        vec![self.make_task(id, task.remaining - 1)]
    }

    fn alloc_lock_for(&self, task_id: u64, alloc_idx: usize) -> ObjId {
        let key = task_id ^ (alloc_idx as u64) << 17;
        if draw_prob(self.seed, key ^ 0xE1E, 0.08) {
            self.locks.free_elemvertex
        } else if draw_prob(self.seed, key ^ 0xED6E, 0.04) {
            self.locks.free_edge
        } else {
            self.locks.free_inter
        }
    }

    fn iteration_done(&self) -> bool {
        let sh = self.shared.borrow();
        sh.filled_count == self.threads * (self.iter + 1)
            && sh.completed == sh.spawned
            && sh.queues.iter().all(VecDeque::is_empty)
    }
}

impl Program for Worker {
    fn step(&mut self, _ctx: &mut StepCtx<'_>) -> Action {
        loop {
            if let Some(a) = self.queued.pop_front() {
                return a;
            }
            let optimized = self.params.optimized;
            match self.phase {
                Phase::FillNext => {
                    if self.iter == 0
                        && self.fill_left.len() == self.params.initial_tasks
                        && self.id == 0
                    {
                        // Master marks the start of the parallel phase.
                        self.queued.push_back(Action::Mark(self.locks.phase_marker));
                    }
                    if let Some(task) = self.fill_left.pop() {
                        self.pending_task = Some(task);
                        self.queued.push_back(Action::Lock(self.locks.enq(0, optimized)));
                        self.phase = Phase::FillLocked;
                    } else {
                        self.shared.borrow_mut().filled_count += 1;
                        self.phase = Phase::FindWork { scan: None };
                    }
                }
                Phase::FillLocked => {
                    let task = self.pending_task.take().expect("fill task pending");
                    {
                        let mut sh = self.shared.borrow_mut();
                        sh.queues[0].push_back(task);
                        sh.spawned += 1;
                    }
                    let hold =
                        if optimized { self.params.split_hold } else { self.params.queue_hold };
                    self.queued.push_back(Action::Compute(hold));
                    self.queued.push_back(Action::Unlock(self.locks.enq(0, optimized)));
                    self.phase = Phase::FillNext;
                }
                Phase::FindWork { scan } => {
                    match scan {
                        None => {
                            if self.iteration_done() {
                                self.queued.push_back(Action::Lock(self.locks.pbar));
                                self.phase = Phase::PbarLocked;
                            } else {
                                // Try the own queue first; the emptiness
                                // check happens under the lock.
                                let q = self.own_q;
                                self.queued.push_back(Action::Lock(self.locks.deq(q, optimized)));
                                self.phase = Phase::DeqLocked { q, scan: Some(0) };
                            }
                        }
                        Some(k) if k <= self.threads => {
                            if k == self.own_q {
                                // Own queue already tried; skip to next victim.
                                self.phase = Phase::FindWork { scan: Some(k + 1) };
                            } else if k == 0 {
                                // The master queue is checked under its lock:
                                // its emptiness cannot be trusted without it
                                // (new global tasks appear at any moment).
                                // This steady polling by starved threads is
                                // what makes tq[0].qlock the scalability
                                // bottleneck once threads outnumber the
                                // available chains.
                                self.queued.push_back(Action::Lock(self.locks.deq(0, optimized)));
                                self.phase = Phase::DeqLocked { q: 0, scan: Some(k + 1) };
                            } else if self.shared.borrow().queues[k].len() < 2 {
                                // Peer queues are peeked cheaply before
                                // committing to a steal, and a peer's single
                                // in-flight successor is left alone — only
                                // queues with surplus work are raided.
                                self.phase = Phase::FindWork { scan: Some(k + 1) };
                            } else {
                                self.queued.push_back(Action::Lock(self.locks.deq(k, optimized)));
                                self.phase = Phase::DeqLocked { q: k, scan: Some(k + 1) };
                            }
                        }
                        Some(_) => {
                            // Full scan failed: back off exponentially, then
                            // re-check from the top (including the
                            // termination test). The backoff keeps idle
                            // tails cheap while still letting starved
                            // threads race for arriving global tasks.
                            self.queued.push_back(Action::Compute(self.backoff));
                            self.backoff = self.params.idle_spin;
                            self.phase = Phase::FindWork { scan: None };
                        }
                    }
                }
                Phase::DeqLocked { q, scan } => {
                    self.cur_task = self.shared.borrow_mut().queues[q].pop_front();
                    let hold = match (self.cur_task.is_some(), optimized) {
                        (true, false) => self.params.queue_hold,
                        (true, true) => self.params.split_hold,
                        (false, false) => self.params.check_hold,
                        (false, true) => self.params.split_check_hold,
                    };
                    self.queued.push_back(Action::Compute(hold));
                    self.queued.push_back(Action::Unlock(self.locks.deq(q, optimized)));
                    if let Some(t) = self.cur_task {
                        self.backoff = self.params.idle_spin;
                        self.chunks_left = self.params.allocs_per_task;
                        self.chunk_work = t.work / (self.params.allocs_per_task as u64 + 1);
                        self.phase = Phase::WorkChunk;
                    } else {
                        self.phase = Phase::FindWork { scan };
                    }
                }
                Phase::WorkChunk => {
                    let task = self.cur_task.expect("task being worked");
                    if self.chunks_left > 0 {
                        let idx = self.chunks_left;
                        self.chunks_left -= 1;
                        let lock = self.alloc_lock_for(task.id, idx);
                        self.queued.push_back(Action::Compute(self.chunk_work));
                        self.queued.push_back(Action::Lock(lock));
                        self.phase = Phase::AllocLocked { lock };
                    } else {
                        self.queued.push_back(Action::Compute(self.chunk_work));
                        self.children_left = self.children_of(task);
                        self.phase = Phase::EnqChild;
                    }
                }
                Phase::AllocLocked { lock } => {
                    self.queued.push_back(Action::Compute(self.params.alloc_hold));
                    self.queued.push_back(Action::Unlock(lock));
                    self.phase = Phase::WorkChunk;
                }
                Phase::EnqChild => {
                    if let Some(child) = self.children_left.pop() {
                        // A fraction of successors are published to the
                        // master queue for redistribution; the rest stay
                        // local.
                        let q = if draw_prob(
                            self.seed,
                            child.id ^ 0x61,
                            self.params.global_enqueue_prob,
                        ) {
                            0
                        } else {
                            self.own_q
                        };
                        self.pending_task = Some(child);
                        self.queued.push_back(Action::Lock(self.locks.enq(q, optimized)));
                        self.phase = Phase::EnqLocked { q };
                    } else {
                        self.shared.borrow_mut().completed += 1;
                        self.cur_task = None;
                        self.phase = Phase::FindWork { scan: None };
                    }
                }
                Phase::EnqLocked { q } => {
                    let child = self.pending_task.take().expect("child pending");
                    {
                        let mut sh = self.shared.borrow_mut();
                        sh.queues[q].push_back(child);
                        sh.spawned += 1;
                    }
                    let hold =
                        if optimized { self.params.split_hold } else { self.params.queue_hold };
                    self.queued.push_back(Action::Compute(hold));
                    self.queued.push_back(Action::Unlock(self.locks.enq(q, optimized)));
                    self.phase = Phase::EnqChild;
                }
                Phase::PbarLocked => {
                    self.queued.push_back(Action::Compute(self.params.pbar_hold));
                    self.queued.push_back(Action::Unlock(self.locks.pbar));
                    self.queued.push_back(Action::Barrier(self.locks.barrier));
                    self.phase = Phase::AfterBarrier;
                }
                Phase::AfterBarrier => {
                    self.iter += 1;
                    if self.iter >= self.params.iterations {
                        if self.id == 0 {
                            // Master marks the end of the parallel phase.
                            self.queued.push_back(Action::Mark(self.locks.phase_marker));
                        }
                        self.phase = Phase::Done;
                    } else {
                        self.fill_left = self.initial_tasks_for_iter(self.iter);
                        self.phase = Phase::FillNext;
                    }
                }
                Phase::Done => return Action::Exit,
            }
        }
    }
}

/// Run the radiosity model.
pub fn run(cfg: &WorkloadCfg) -> Result<Trace> {
    run_with(cfg, RadiosityParams { initial_tasks: cfg.scaled(48), ..Default::default() })
}

/// Run the optimized (two-lock queue) variant.
pub fn run_optimized(cfg: &WorkloadCfg) -> Result<Trace> {
    run_with(
        cfg,
        RadiosityParams { initial_tasks: cfg.scaled(48), optimized: true, ..Default::default() },
    )
}

/// Run with explicit parameters.
pub fn run_with(cfg: &WorkloadCfg, params: RadiosityParams) -> Result<Trace> {
    let name = if params.optimized { "radiosity-opt" } else { "radiosity" };
    let mut sim = Simulator::new(name, cfg.machine.clone());
    let threads = cfg.threads;

    let mut tq = Vec::new();
    let mut tq_head = Vec::new();
    let mut tq_tail = Vec::new();
    // Queue 0 is the shared master queue; queues 1..=threads are the
    // workers' local queues.
    if params.optimized {
        for i in 0..=threads {
            tq_head.push(sim.add_lock(format!("tq[{i}].q_head_lock")));
            tq_tail.push(sim.add_lock(format!("tq[{i}].q_tail_lock")));
        }
    } else {
        for i in 0..=threads {
            tq.push(sim.add_lock(format!("tq[{i}].qlock")));
        }
    }
    let locks = Rc::new(Locks {
        tq,
        tq_head,
        tq_tail,
        free_inter: sim.add_lock("freeInter"),
        phase_marker: sim.add_marker("parallel_phase"),
        free_elemvertex: sim.add_lock("free_elemvertex"),
        free_edge: sim.add_lock("free_edge"),
        pbar: sim.add_lock("pbar_lock"),
        barrier: sim.add_barrier("phase_barrier", threads),
    });

    let shared = Rc::new(RefCell::new(Shared {
        queues: vec![VecDeque::new(); threads + 1],
        spawned: 0,
        completed: 0,
        filled_count: 0,
        task_counter: 0,
    }));

    let params = Rc::new(params);
    let workers: Vec<(String, Box<dyn Program>)> = (0..threads)
        .map(|i| {
            (
                format!("worker-{i}"),
                Box::new(Worker::new(
                    i,
                    threads,
                    cfg.seed,
                    Rc::clone(&params),
                    Rc::clone(&locks),
                    Rc::clone(&shared),
                )) as Box<dyn Program>,
            )
        })
        .collect();
    sim.spawn("main", ForkJoinMain::new(workers));

    let mut trace = sim.run()?;
    trace.meta.params.insert("workers".into(), threads.to_string());
    trace.meta.params.insert("optimized".into(), params.optimized.to_string());
    Ok(trace)
}

#[cfg(test)]
mod tests {
    use super::*;
    use critlock_analysis::analyze;

    fn small(threads: usize) -> WorkloadCfg {
        WorkloadCfg::with_threads(threads).with_scale(0.4)
    }

    #[test]
    fn completes_and_validates() {
        let t = run(&small(4)).unwrap();
        assert_eq!(t.num_threads(), 5);
        let rep = analyze(&t);
        assert!(rep.cp_complete, "walk must complete");
        assert_eq!(rep.cp_length, rep.makespan);
    }

    #[test]
    fn all_tasks_processed_deterministically() {
        let a = run(&small(4)).unwrap();
        let b = run(&small(4)).unwrap();
        assert_eq!(a, b, "same seed/config must reproduce the trace");
    }

    #[test]
    fn tq0_dominates_at_high_thread_count() {
        let rep = analyze(&run(&small(16)).unwrap());
        let top = rep.top_critical_lock().unwrap();
        assert_eq!(top.name, "tq[0].qlock", "report: {:?}", top_names(&rep));
    }

    #[test]
    fn free_inter_dominates_at_low_thread_count() {
        let rep = analyze(&run(&small(4)).unwrap());
        let top = rep.top_critical_lock().unwrap();
        assert_eq!(top.name, "freeInter", "report: {:?}", top_names(&rep));
    }

    #[test]
    fn optimized_version_is_faster_at_high_threads() {
        let orig = run(&small(16)).unwrap();
        let opt = run_optimized(&small(16)).unwrap();
        assert!(
            opt.makespan() < orig.makespan(),
            "optimized {} must beat original {}",
            opt.makespan(),
            orig.makespan()
        );
    }

    #[test]
    fn optimized_tq0_share_collapses() {
        let orig = analyze(&run(&small(16)).unwrap());
        let opt = analyze(&run_optimized(&small(16)).unwrap());
        let before = orig.lock_by_name("tq[0].qlock").unwrap().cp_time_frac;
        let after_head =
            opt.lock_by_name("tq[0].q_head_lock").map(|l| l.cp_time_frac).unwrap_or(0.0);
        assert!(after_head < before, "head-lock share {after_head} must drop below {before}");
    }

    #[test]
    fn parallel_phase_window_analyzes() {
        let t = run(&small(8)).unwrap();
        let phase =
            critlock_analysis::analyze_phase(&t, "parallel_phase").expect("phase markers present");
        assert!(phase.cp_complete);
        assert!(phase.makespan <= t.makespan());
        // The phase covers nearly the whole run (radiosity is all
        // parallel phase here), so the top lock matches the full report.
        let full = critlock_analysis::analyze(&t);
        assert_eq!(
            phase.top_critical_lock().map(|l| l.name.clone()),
            full.top_critical_lock().map(|l| l.name.clone())
        );
    }

    fn top_names(rep: &critlock_analysis::AnalysisReport) -> Vec<(String, f64)> {
        rep.locks.iter().take(4).map(|l| (l.name.clone(), l.cp_time_frac)).collect()
    }
}

#[cfg(test)]
mod calibration {
    use super::*;
    use critlock_analysis::analyze;

    /// Calibration aid: prints the fig9-style table. Run with
    /// `cargo test -p critlock-workloads calibrate_radiosity -- --ignored --nocapture`.
    #[test]
    #[ignore]
    fn calibrate_radiosity() {
        for threads in [4, 8, 16, 24] {
            let cfg = WorkloadCfg::with_threads(threads);
            let t = run(&cfg).unwrap();
            let rep = analyze(&t);
            println!(
                "--- {threads} threads: makespan {} events {} ---",
                t.makespan(),
                t.num_events()
            );
            for l in rep.locks.iter().take(5) {
                println!(
                    "  {:<18} cp {:>6.2}% wait {:>6.2}% contprob-cp {:>6.2}% invo-cp {:>6} avg-invo {:>7.1} hold {:>5.2}%",
                    l.name,
                    l.cp_time_frac * 100.0,
                    l.avg_wait_frac * 100.0,
                    l.cont_prob_on_cp * 100.0,
                    l.invocations_on_cp,
                    l.avg_invocations_per_thread,
                    l.avg_hold_frac * 100.0,
                );
            }
        }
    }
}

#[cfg(test)]
mod calibration_opt {
    use super::*;
    use critlock_analysis::analyze;

    #[test]
    #[ignore]
    fn calibrate_radiosity_optimized() {
        for threads in [4, 8, 16, 24] {
            let cfg = WorkloadCfg::with_threads(threads);
            let orig = run(&cfg).unwrap();
            let opt = run_optimized(&cfg).unwrap();
            let rep = analyze(&opt);
            println!(
                "--- {threads} threads: orig {} opt {} gain {:.1}% ---",
                orig.makespan(),
                opt.makespan(),
                (orig.makespan() as f64 / opt.makespan() as f64 - 1.0) * 100.0
            );
            for l in rep.locks.iter().take(3) {
                println!(
                    "  {:<22} cp {:>6.2}% wait {:>5.2}% contprob-cp {:>6.2}% invo-cp {:>6} avg-invo {:>7.1} hold {:>5.2}%",
                    l.name, l.cp_time_frac*100.0, l.avg_wait_frac*100.0,
                    l.cont_prob_on_cp*100.0, l.invocations_on_cp,
                    l.avg_invocations_per_thread, l.avg_hold_frac*100.0,
                );
            }
        }
    }
}

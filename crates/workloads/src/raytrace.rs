//! Raytrace (SPLASH-2) synchronization skeleton.
//!
//! Ray tracing of the `car` scene: jobs (ray-packet tiles) come from a
//! distributed job queue (`qlock`), and — the interesting part — node
//! allocations for the ray tree come from a **global memory arena**
//! guarded by `mem`. Fig. 8's Raytrace row is one of the paper's
//! headline discrepancies: the Wait Time metric significantly
//! *underestimates* `mem`, whose many small allocations sit squarely on
//! the critical path as threads scale.

use crate::common::{draw_range, ForkJoinMain, WorkloadCfg};
use critlock_sim::{Action, Program, Result, Simulator, StepCtx};
use critlock_trace::{ObjId, Trace};
use std::cell::RefCell;
use std::collections::VecDeque;
use std::rc::Rc;

/// Model parameters.
#[derive(Debug, Clone)]
pub struct RaytraceParams {
    /// Ray-packet jobs per run.
    pub jobs: usize,
    /// Minimum per-job tracing work.
    pub job_work_min: u64,
    /// Additional per-job work spread (reflective surfaces).
    pub job_work_spread: u64,
    /// Ray-tree node allocations per job (from the `mem` arena).
    pub allocs_per_job: usize,
    /// Hold time of one `mem` arena allocation.
    pub mem_hold: u64,
    /// Hold time of a job-queue pop.
    pub queue_hold: u64,
    /// Hold time of an empty-queue check.
    pub check_hold: u64,
}

impl Default for RaytraceParams {
    fn default() -> Self {
        RaytraceParams {
            jobs: 1024, // `car 256`: 256x256 image in 8x8 packets
            job_work_min: 160,
            job_work_spread: 420,
            allocs_per_job: 4,
            mem_hold: 3,
            queue_hold: 4,
            check_hold: 2,
        }
    }
}

struct Shared {
    remaining: usize,
    traced: u64,
}

enum Phase {
    PopLocked,
    Trace { job: u64, allocs_left: usize, chunk: u64 },
    MemLocked { job: u64, allocs_left: usize, chunk: u64 },
    Done,
}

struct Worker {
    seed: u64,
    params: Rc<RaytraceParams>,
    qlock: ObjId,
    mem: ObjId,
    shared: Rc<RefCell<Shared>>,
    phase: Phase,
    queued: VecDeque<Action>,
}

impl Program for Worker {
    fn step(&mut self, _ctx: &mut StepCtx<'_>) -> Action {
        loop {
            if let Some(a) = self.queued.pop_front() {
                return a;
            }
            match self.phase {
                Phase::PopLocked => {
                    let job = {
                        let mut sh = self.shared.borrow_mut();
                        if sh.remaining > 0 {
                            sh.remaining -= 1;
                            Some(sh.remaining as u64)
                        } else {
                            None
                        }
                    };
                    let hold =
                        if job.is_some() { self.params.queue_hold } else { self.params.check_hold };
                    self.queued.push_back(Action::Compute(hold));
                    self.queued.push_back(Action::Unlock(self.qlock));
                    match job {
                        Some(job) => {
                            let total = self.params.job_work_min
                                + draw_range(
                                    self.seed,
                                    job ^ 0x6A7,
                                    0,
                                    self.params.job_work_spread,
                                );
                            let chunk = total / (self.params.allocs_per_job as u64 + 1);
                            self.phase = Phase::Trace {
                                job,
                                allocs_left: self.params.allocs_per_job,
                                chunk,
                            };
                        }
                        None => self.phase = Phase::Done,
                    }
                }
                Phase::Trace { job, allocs_left, chunk } => {
                    self.queued.push_back(Action::Compute(chunk));
                    if allocs_left > 0 {
                        self.queued.push_back(Action::Lock(self.mem));
                        self.phase = Phase::MemLocked { job, allocs_left: allocs_left - 1, chunk };
                    } else {
                        self.shared.borrow_mut().traced += 1;
                        self.queued.push_back(Action::Lock(self.qlock));
                        self.phase = Phase::PopLocked;
                    }
                }
                Phase::MemLocked { job, allocs_left, chunk } => {
                    self.queued.push_back(Action::Compute(self.params.mem_hold));
                    self.queued.push_back(Action::Unlock(self.mem));
                    self.phase = Phase::Trace { job, allocs_left, chunk };
                }
                Phase::Done => return Action::Exit,
            }
        }
    }
}

/// Run the Raytrace model.
pub fn run(cfg: &WorkloadCfg) -> Result<Trace> {
    run_with(cfg, RaytraceParams { jobs: cfg.scaled(1024), ..Default::default() })
}

/// Run with explicit parameters.
pub fn run_with(cfg: &WorkloadCfg, params: RaytraceParams) -> Result<Trace> {
    let mut sim = Simulator::new("raytrace", cfg.machine.clone());
    let threads = cfg.threads;
    let qlock = sim.add_lock("qlock");
    let mem = sim.add_lock("mem");
    let shared = Rc::new(RefCell::new(Shared { remaining: params.jobs, traced: 0 }));
    let params = Rc::new(params);

    let workers: Vec<(String, Box<dyn Program>)> = (0..threads)
        .map(|i| {
            let mut w = Worker {
                seed: cfg.seed,
                params: Rc::clone(&params),
                qlock,
                mem,
                shared: Rc::clone(&shared),
                phase: Phase::PopLocked,
                queued: VecDeque::new(),
            };
            w.queued.push_back(Action::Lock(qlock));
            (format!("worker-{i}"), Box::new(w) as Box<dyn Program>)
        })
        .collect();
    sim.spawn("main", ForkJoinMain::new(workers));

    let mut trace = sim.run()?;
    let sh = shared.borrow();
    trace.meta.params.insert("jobs".into(), params.jobs.to_string());
    trace.meta.params.insert("traced".into(), sh.traced.to_string());
    Ok(trace)
}

#[cfg(test)]
mod tests {
    use super::*;
    use critlock_analysis::analyze;

    fn small(threads: usize) -> WorkloadCfg {
        WorkloadCfg::with_threads(threads).with_scale(0.3)
    }

    #[test]
    fn all_jobs_traced() {
        let t = run(&small(8)).unwrap();
        assert_eq!(t.meta.params.get("traced"), t.meta.params.get("jobs"));
    }

    #[test]
    fn mem_tops_and_wait_underestimates_it() {
        let rep = analyze(&run(&small(24)).unwrap());
        let mem = rep.lock_by_name("mem").unwrap();
        assert_eq!(rep.rank_by_cp_time("mem"), Some(1));
        // The discrepancy the paper highlights: CP share well above the
        // average wait share.
        assert!(
            mem.cp_time_frac > 2.0 * mem.avg_wait_frac,
            "cp {:.2}% vs wait {:.2}%",
            mem.cp_time_frac * 100.0,
            mem.avg_wait_frac * 100.0
        );
    }

    #[test]
    fn walk_completes() {
        let rep = analyze(&run(&small(4)).unwrap());
        assert!(rep.cp_complete);
        assert_eq!(rep.cp_length, rep.makespan);
    }

    #[test]
    fn deterministic() {
        assert_eq!(run(&small(4)).unwrap(), run(&small(4)).unwrap());
    }

    #[test]
    #[ignore]
    fn calibrate_raytrace() {
        for threads in [4, 8, 16, 24] {
            let t = run(&WorkloadCfg::with_threads(threads)).unwrap();
            let rep = analyze(&t);
            print!("{threads}t: makespan {}", t.makespan());
            for l in rep.locks.iter().take(2) {
                print!(
                    "  {} cp {:.2}% wait {:.2}%",
                    l.name,
                    l.cp_time_frac * 100.0,
                    l.avg_wait_frac * 100.0
                );
            }
            println!();
        }
    }
}

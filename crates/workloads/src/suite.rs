//! Registry of all workloads, for the CLI and the bench harness.

use crate::common::WorkloadCfg;
use crate::{ldap, micro, radiosity, raytrace, tsp, uts, volrend, water};
use critlock_sim::Result;
use critlock_trace::Trace;

/// A named runnable workload.
pub struct WorkloadSpec {
    /// Registry name (e.g. `"radiosity"` or `"tsp-opt"`).
    pub name: &'static str,
    /// One-line description.
    pub description: &'static str,
    runner: fn(&WorkloadCfg) -> Result<Trace>,
}

impl WorkloadSpec {
    /// Run the workload.
    pub fn run(&self, cfg: &WorkloadCfg) -> Result<Trace> {
        (self.runner)(cfg)
    }
}

/// All registered workloads.
pub fn all() -> Vec<WorkloadSpec> {
    vec![
        WorkloadSpec {
            name: "micro",
            description: "Fig. 5 micro-benchmark: two consecutive critical sections",
            runner: micro::run,
        },
        WorkloadSpec {
            name: "micro-opt-l1",
            description: "micro-benchmark with CS1 (under L1) shortened",
            runner: micro::run_l1_optimized,
        },
        WorkloadSpec {
            name: "micro-opt-l2",
            description: "micro-benchmark with CS2 (under L2) shortened",
            runner: micro::run_l2_optimized,
        },
        WorkloadSpec {
            name: "radiosity",
            description: "SPLASH-2 Radiosity: per-thread task queues + master queue",
            runner: radiosity::run,
        },
        WorkloadSpec {
            name: "radiosity-opt",
            description: "Radiosity with Michael-Scott two-lock task queues",
            runner: radiosity::run_optimized,
        },
        WorkloadSpec {
            name: "tsp",
            description: "branch-and-bound TSP with a global Qlock queue",
            runner: tsp::run,
        },
        WorkloadSpec {
            name: "tsp-opt",
            description: "TSP with the queue split into Q_headlock/Q_taillock",
            runner: tsp::run_optimized,
        },
        WorkloadSpec {
            name: "uts",
            description: "Unbalanced Tree Search: per-thread stackLock[i]",
            runner: uts::run,
        },
        WorkloadSpec {
            name: "water-nsquared",
            description: "SPLASH-2 Water-nsquared: barrier phases, gl + MolLock[]",
            runner: water::run,
        },
        WorkloadSpec {
            name: "volrend",
            description: "SPLASH-2 Volrend: tile queue QLock + CountLock",
            runner: volrend::run,
        },
        WorkloadSpec {
            name: "raytrace",
            description: "SPLASH-2 Raytrace: job qlock + global mem arena lock",
            runner: raytrace::run,
        },
        WorkloadSpec {
            name: "openldap",
            description: "OpenLDAP-like server: conn queue + striped entry cache",
            runner: ldap::run,
        },
    ]
}

/// Look up a workload by name.
pub fn by_name(name: &str) -> Option<WorkloadSpec> {
    all().into_iter().find(|w| w.name == name)
}

/// Run a workload by name.
pub fn run_workload(name: &str, cfg: &WorkloadCfg) -> Option<Result<Trace>> {
    by_name(name).map(|w| w.run(cfg))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_names_unique() {
        let specs = all();
        let mut names: Vec<_> = specs.iter().map(|s| s.name).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), specs.len());
    }

    #[test]
    fn lookup_works() {
        assert!(by_name("radiosity").is_some());
        assert!(by_name("tsp-opt").is_some());
        assert!(by_name("nope").is_none());
    }

    #[test]
    fn every_workload_runs_at_tiny_scale() {
        for spec in all() {
            let cfg = WorkloadCfg::with_threads(4).with_scale(0.2);
            let trace = spec.run(&cfg).unwrap_or_else(|e| panic!("{} failed: {e}", spec.name));
            assert!(trace.makespan() > 0, "{} produced empty trace", spec.name);
            trace.validate().unwrap();
        }
    }

    #[test]
    fn every_workload_analyzes_cleanly() {
        for spec in all() {
            let cfg = WorkloadCfg::with_threads(4).with_scale(0.2);
            let trace = spec.run(&cfg).unwrap();
            let rep = critlock_analysis::analyze(&trace);
            assert!(rep.cp_complete, "{}: walk incomplete", spec.name);
            assert_eq!(rep.cp_length, rep.makespan, "{}: CP must tile the makespan", spec.name);
        }
    }
}

//! Travelling Salesman Problem (Pthreads version) synchronization
//! skeleton — with a real branch-and-bound solver inside.
//!
//! "A global task queue protected by `Qlock` is used by TSP to maintain
//! the paths which is accessed by all threads from time to time. ...
//! `Qlock` contributes to 68% of the critical path" (§V.E). The paper's
//! fix is the same two-lock split as Radiosity: `Q_headlock` +
//! `Q_taillock`, reported to improve the 24-thread run by 19%.
//!
//! The model runs an actual branch-and-bound TSP over a seeded random
//! distance matrix: partial tours are expanded, bounded against the best
//! complete tour (updated under `BestLock`), and children are published
//! back to the global queue. Expansion *work* advances virtual time; the
//! tour arithmetic itself is exact.

use crate::common::{draw_range, ForkJoinMain, WorkloadCfg};
use critlock_sim::{Action, Program, Result, Simulator, StepCtx};
use critlock_trace::{ObjId, Trace};
use std::cell::RefCell;
use std::collections::VecDeque;
use std::rc::Rc;

/// Model parameters.
#[derive(Debug, Clone)]
pub struct TspParams {
    /// Number of cities (the paper uses 10).
    pub cities: usize,
    /// Virtual-ns of bound/distance computation per expanded node.
    pub expand_work: u64,
    /// Additional uniform spread of per-node work.
    pub work_spread: u64,
    /// Hold time of a queue pop or push operation.
    pub queue_hold: u64,
    /// Hold time of a pop that finds the queue empty.
    pub check_hold: u64,
    /// Hold time of the best-tour update.
    pub best_hold: u64,
    /// Busy-poll cost when the queue is empty but work is in flight.
    pub idle_spin: u64,
    /// Split `Qlock` into `Q_headlock`/`Q_taillock`.
    pub optimized: bool,
}

impl Default for TspParams {
    fn default() -> Self {
        TspParams {
            cities: 10,
            expand_work: 420,
            work_spread: 160,
            queue_hold: 17,
            check_hold: 9,
            best_hold: 3,
            idle_spin: 40,
            optimized: false,
        }
    }
}

/// A partial tour.
#[derive(Debug, Clone)]
struct Path {
    visited_mask: u32,
    last: u8,
    len: u8,
    cost: u32,
}

struct TspShared {
    dist: Vec<Vec<u32>>,
    queue: VecDeque<Path>,
    best: u32,
    in_flight: usize,
    expansions: u64,
}

impl TspShared {
    fn new(cities: usize, seed: u64) -> Self {
        let mut dist = vec![vec![0u32; cities]; cities];
        for (i, row) in dist.iter_mut().enumerate() {
            for (j, cell) in row.iter_mut().enumerate() {
                if i != j {
                    let key = ((i.min(j) as u64) << 16) | i.max(j) as u64;
                    *cell = 10 + draw_range(seed, key ^ 0xD157, 0, 90) as u32;
                }
            }
        }
        // Greedy nearest-neighbour tour as the initial bound.
        let mut visited = 1u32;
        let mut cur = 0usize;
        let mut bound = 0u32;
        for _ in 1..cities {
            let (next, d) = (0..cities)
                .filter(|&c| visited & (1 << c) == 0)
                .map(|c| (c, dist[cur][c]))
                .min_by_key(|&(_, d)| d)
                .expect("unvisited city exists");
            visited |= 1 << next;
            bound += d;
            cur = next;
        }
        bound += dist[cur][0];

        let mut queue = VecDeque::new();
        queue.push_back(Path { visited_mask: 1, last: 0, len: 1, cost: 0 });
        TspShared { dist, queue, best: bound, in_flight: 0, expansions: 0 }
    }
}

struct Locks {
    /// Single-lock mode.
    qlock: Option<ObjId>,
    /// Split mode.
    q_head: Option<ObjId>,
    q_tail: Option<ObjId>,
    best: ObjId,
}

impl Locks {
    fn deq(&self) -> ObjId {
        self.q_head.or(self.qlock).expect("queue lock registered")
    }
    fn enq(&self) -> ObjId {
        self.q_tail.or(self.qlock).expect("queue lock registered")
    }
}

enum Phase {
    PopLocked,
    Expand,
    BestLocked { improved: u32 },
    PushLocked,
    Done,
}

struct Worker {
    seed: u64,
    params: Rc<TspParams>,
    locks: Rc<Locks>,
    shared: Rc<RefCell<TspShared>>,
    phase: Phase,
    queued: VecDeque<Action>,
    cur: Option<Path>,
    children: Vec<Path>,
}

impl Worker {
    fn start_find(&mut self) {
        self.queued.push_back(Action::Lock(self.locks.deq()));
        self.phase = Phase::PopLocked;
    }

    /// Expand the current path; returns (children, improved-best).
    fn expand(&mut self) -> (Vec<Path>, Option<u32>) {
        let path = self.cur.take().expect("path being expanded");
        let mut sh = self.shared.borrow_mut();
        sh.expansions += 1;
        let n = sh.dist.len();
        let mut children = Vec::new();
        let mut improved = None;
        if path.len as usize == n {
            // Complete tour: close it.
            let total = path.cost + sh.dist[path.last as usize][0];
            if total < sh.best {
                improved = Some(total);
            }
        } else {
            for city in 1..n {
                if path.visited_mask & (1 << city) != 0 {
                    continue;
                }
                let cost = path.cost + sh.dist[path.last as usize][city];
                // Bound: prune against the current best (read without the
                // lock, as the Pthreads TSP does — stale reads only cost
                // extra work, never correctness).
                if cost >= sh.best {
                    continue;
                }
                children.push(Path {
                    visited_mask: path.visited_mask | (1 << city),
                    last: city as u8,
                    len: path.len + 1,
                    cost,
                });
            }
        }
        (children, improved)
    }
}

impl Program for Worker {
    fn step(&mut self, _ctx: &mut StepCtx<'_>) -> Action {
        loop {
            if let Some(a) = self.queued.pop_front() {
                return a;
            }
            match self.phase {
                Phase::PopLocked => {
                    let popped = {
                        let mut sh = self.shared.borrow_mut();
                        let p = sh.queue.pop_front();
                        if p.is_some() {
                            sh.in_flight += 1;
                        }
                        p
                    };
                    let hold = if popped.is_some() {
                        self.params.queue_hold
                    } else {
                        self.params.check_hold
                    };
                    self.queued.push_back(Action::Compute(hold));
                    self.queued.push_back(Action::Unlock(self.locks.deq()));
                    match popped {
                        Some(p) => {
                            self.cur = Some(p);
                            self.phase = Phase::Expand;
                        }
                        None => {
                            if self.shared.borrow().in_flight == 0 {
                                self.phase = Phase::Done;
                            } else {
                                self.queued.push_back(Action::Compute(self.params.idle_spin));
                                self.start_find();
                            }
                        }
                    }
                }
                Phase::Expand => {
                    let work_key = self.shared.borrow().expansions;
                    let work = self.params.expand_work
                        + draw_range(self.seed, work_key, 0, self.params.work_spread.max(1));
                    self.queued.push_back(Action::Compute(work));
                    let (children, improved) = self.expand();
                    self.children = children;
                    if let Some(best) = improved {
                        self.queued.push_back(Action::Lock(self.locks.best));
                        self.phase = Phase::BestLocked { improved: best };
                    } else if self.children.is_empty() {
                        self.shared.borrow_mut().in_flight -= 1;
                        self.start_find();
                    } else {
                        self.queued.push_back(Action::Lock(self.locks.enq()));
                        self.phase = Phase::PushLocked;
                    }
                }
                Phase::BestLocked { improved } => {
                    {
                        let mut sh = self.shared.borrow_mut();
                        // Re-check under the lock.
                        if improved < sh.best {
                            sh.best = improved;
                        }
                        sh.in_flight -= 1;
                    }
                    self.queued.push_back(Action::Compute(self.params.best_hold));
                    self.queued.push_back(Action::Unlock(self.locks.best));
                    self.start_find();
                }
                Phase::PushLocked => {
                    let n = self.children.len() as u64;
                    {
                        let mut sh = self.shared.borrow_mut();
                        for c in self.children.drain(..) {
                            sh.queue.push_back(c);
                        }
                        sh.in_flight -= 1;
                    }
                    self.queued.push_back(Action::Compute(self.params.queue_hold + 2 * n));
                    self.queued.push_back(Action::Unlock(self.locks.enq()));
                    self.start_find();
                }
                Phase::Done => return Action::Exit,
            }
        }
    }
}

/// Run TSP with default parameters (10 cities, as in Table 1).
pub fn run(cfg: &WorkloadCfg) -> Result<Trace> {
    let cities = scaled_cities(cfg);
    run_with(cfg, TspParams { cities, ..Default::default() })
}

/// Run the split-queue optimized variant.
pub fn run_optimized(cfg: &WorkloadCfg) -> Result<Trace> {
    let cities = scaled_cities(cfg);
    run_with(cfg, TspParams { cities, optimized: true, ..Default::default() })
}

fn scaled_cities(cfg: &WorkloadCfg) -> usize {
    // Scale 1.0 = 10 cities; each 0.15 drop removes roughly one city.
    let c = (10.0 + (cfg.scale - 1.0) / 0.15).round() as i64;
    c.clamp(5, 13) as usize
}

/// Run with explicit parameters.
pub fn run_with(cfg: &WorkloadCfg, params: TspParams) -> Result<Trace> {
    let name = if params.optimized { "tsp-opt" } else { "tsp" };
    let mut sim = Simulator::new(name, cfg.machine.clone());
    let locks = Rc::new(if params.optimized {
        Locks {
            qlock: None,
            q_head: Some(sim.add_lock("Q_headlock")),
            q_tail: Some(sim.add_lock("Q_taillock")),
            best: sim.add_lock("BestLock"),
        }
    } else {
        Locks {
            qlock: Some(sim.add_lock("Qlock")),
            q_head: None,
            q_tail: None,
            best: sim.add_lock("BestLock"),
        }
    });
    let shared = Rc::new(RefCell::new(TspShared::new(params.cities, cfg.seed)));
    let params = Rc::new(params);

    let workers: Vec<(String, Box<dyn Program>)> = (0..cfg.threads)
        .map(|i| {
            let mut w = Worker {
                seed: cfg.seed,
                params: Rc::clone(&params),
                locks: Rc::clone(&locks),
                shared: Rc::clone(&shared),
                phase: Phase::Done,
                queued: VecDeque::new(),
                cur: None,
                children: Vec::new(),
            };
            w.start_find();
            (format!("worker-{i}"), Box::new(w) as Box<dyn Program>)
        })
        .collect();
    sim.spawn("main", ForkJoinMain::new(workers));

    let mut trace = sim.run()?;
    let sh = shared.borrow();
    trace.meta.params.insert("cities".into(), params.cities.to_string());
    trace.meta.params.insert("best_tour".into(), sh.best.to_string());
    trace.meta.params.insert("expansions".into(), sh.expansions.to_string());
    trace.meta.params.insert("optimized".into(), params.optimized.to_string());
    Ok(trace)
}

/// Exhaustive-search reference for the optimal tour cost (test oracle;
/// only tractable for small city counts).
pub fn brute_force_best(cities: usize, seed: u64) -> u32 {
    let sh = TspShared::new(cities, seed);
    let mut perm: Vec<usize> = (1..cities).collect();
    let mut best = u32::MAX;
    permute(&mut perm, 0, &sh.dist, &mut best);
    best
}

fn permute(perm: &mut [usize], k: usize, dist: &[Vec<u32>], best: &mut u32) {
    if k == perm.len() {
        let mut cost = dist[0][perm[0]];
        for w in perm.windows(2) {
            cost += dist[w[0]][w[1]];
        }
        cost += dist[perm[perm.len() - 1]][0];
        *best = (*best).min(cost);
        return;
    }
    for i in k..perm.len() {
        perm.swap(k, i);
        permute(perm, k + 1, dist, best);
        perm.swap(k, i);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use critlock_analysis::analyze;

    fn small(threads: usize) -> WorkloadCfg {
        // scale 0.55 -> 7 cities: fast yet non-trivial.
        WorkloadCfg::with_threads(threads).with_scale(0.55)
    }

    #[test]
    fn solves_tsp_correctly() {
        let cfg = small(4);
        let trace = run(&cfg).unwrap();
        let reported: u32 = trace.meta.params.get("best_tour").unwrap().parse().unwrap();
        let cities: usize = trace.meta.params.get("cities").unwrap().parse().unwrap();
        assert_eq!(reported, brute_force_best(cities, cfg.seed));
    }

    #[test]
    fn optimized_solves_identically() {
        let cfg = small(8);
        let a = run(&cfg).unwrap();
        let b = run_optimized(&cfg).unwrap();
        assert_eq!(a.meta.params.get("best_tour"), b.meta.params.get("best_tour"));
    }

    #[test]
    fn qlock_dominates_critical_path() {
        // The full-scale magnitude (~68% at 24 threads, paper §V.E) is
        // checked by the fig8/tsp bench; at test scale we pin the ranking
        // and a substantial share.
        let rep = analyze(&run(&small(24)).unwrap());
        let q = rep.lock_by_name("Qlock").unwrap();
        assert_eq!(rep.rank_by_cp_time("Qlock"), Some(1));
        assert!(q.cp_time_frac > 0.15, "Qlock must dominate, got {:.1}%", q.cp_time_frac * 100.0);
    }

    #[test]
    fn split_queue_improves_makespan() {
        let orig = run(&small(16)).unwrap();
        let opt = run_optimized(&small(16)).unwrap();
        assert!(
            opt.makespan() < orig.makespan(),
            "split queue must help: {} vs {}",
            opt.makespan(),
            orig.makespan()
        );
    }

    #[test]
    fn deterministic() {
        let a = run(&small(8)).unwrap();
        let b = run(&small(8)).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn walk_completes() {
        let rep = analyze(&run(&small(8)).unwrap());
        assert!(rep.cp_complete);
        assert_eq!(rep.cp_length, rep.makespan);
    }

    #[test]
    #[ignore]
    fn calibrate_tsp() {
        for threads in [4, 8, 16, 24] {
            let cfg = WorkloadCfg::with_threads(threads);
            let orig = run(&cfg).unwrap();
            let opt = run_optimized(&cfg).unwrap();
            let rep = analyze(&orig);
            let q = rep.lock_by_name("Qlock").unwrap();
            println!(
                "{threads}t: makespan {} (opt {} gain {:+.1}%) Qlock cp {:.1}% wait {:.1}% expansions {}",
                orig.makespan(),
                opt.makespan(),
                (orig.makespan() as f64 / opt.makespan() as f64 - 1.0) * 100.0,
                q.cp_time_frac * 100.0,
                q.avg_wait_frac * 100.0,
                orig.meta.params.get("expansions").unwrap(),
            );
        }
    }
}

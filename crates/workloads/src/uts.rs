//! Unbalanced Tree Search (UTS) synchronization skeleton.
//!
//! UTS counts the nodes of an implicitly-defined, highly unbalanced tree.
//! Each thread keeps its own node stack protected by `stackLock[i]`; the
//! owner takes its lock for every push/pop of the shared region, and idle
//! threads steal chunks from a victim's stack under the victim's lock.
//!
//! The paper's point with UTS (§V.C): its stack locks introduce almost
//! **no contention** — wait-time tools conclude there is no lock problem
//! at all — yet `stackLock[5]` still accounts for ~5% of the critical
//! path, because the owner's (uncontended!) lock operations lie on the
//! path. Critical lock analysis surfaces them; idleness analysis cannot.
//!
//! The tree here is a real implicit tree: child counts derive
//! deterministically from node ids (a geometric-ish branching law), and
//! the run records the total node count for verification against a
//! sequential traversal.

use crate::common::{draw_range, ForkJoinMain, WorkloadCfg};
use critlock_sim::{Action, Program, Result, Simulator, StepCtx};
use critlock_trace::{ObjId, Trace};
use std::cell::RefCell;
use std::collections::VecDeque;
use std::rc::Rc;

/// Model parameters.
#[derive(Debug, Clone)]
pub struct UtsParams {
    /// Number of children of the root (UTS `-b0`).
    pub root_branching: usize,
    /// Virtual-ns of hash/bookkeeping work per node.
    pub node_work: u64,
    /// Additional uniform spread of per-node work.
    pub work_spread: u64,
    /// Hold time of a stack push/pop under the owner's `stackLock`.
    pub stack_hold: u64,
    /// Hold time of a steal operation (grabs half the victim's stack).
    pub steal_hold: u64,
    /// Busy-poll cost while hunting for a victim.
    pub idle_spin: u64,
}

impl Default for UtsParams {
    fn default() -> Self {
        UtsParams {
            root_branching: 320,
            node_work: 46,
            work_spread: 18,
            stack_hold: 2,
            steal_hold: 4,
            idle_spin: 30,
        }
    }
}

/// Deterministic child count of a non-root node (subcritical geometric
/// law: expected branching < 1 so the tree terminates).
fn children_of(seed: u64, id: u64) -> usize {
    match draw_range(seed, id ^ 0x0715, 0, 20) {
        0..=5 => 2, // p = 0.30 -> contributes 0.60
        6..=8 => 1, // p = 0.15 -> contributes 0.15
        _ => 0,     // total expected branching 0.75
    }
}

/// Sequential reference traversal: total node count (test oracle).
pub fn sequential_count(params: &UtsParams, seed: u64) -> u64 {
    let mut stack: Vec<u64> = (0..params.root_branching as u64).map(|i| i + 1).collect();
    let mut count = 1; // root
    let mut next_id = params.root_branching as u64 + 1;
    while let Some(id) = stack.pop() {
        count += 1;
        for _ in 0..children_of(seed, id) {
            stack.push(next_id);
            next_id += 1;
        }
    }
    count
}

struct Shared {
    stacks: Vec<Vec<u64>>,
    next_id: u64,
    nodes_counted: u64,
    in_flight: usize,
}

enum Phase {
    PopLocked,
    Work { node: u64 },
    PushLocked { children: usize },
    FindVictim { scan: usize },
    StealLocked { victim: usize },
    Done,
}

struct Worker {
    id: usize,
    threads: usize,
    seed: u64,
    params: Rc<UtsParams>,
    stack_locks: Rc<Vec<ObjId>>,
    shared: Rc<RefCell<Shared>>,
    phase: Phase,
    queued: VecDeque<Action>,
}

impl Program for Worker {
    fn step(&mut self, _ctx: &mut StepCtx<'_>) -> Action {
        loop {
            if let Some(a) = self.queued.pop_front() {
                return a;
            }
            match self.phase {
                Phase::PopLocked => {
                    let node = {
                        let mut sh = self.shared.borrow_mut();
                        let n = sh.stacks[self.id].pop();
                        if n.is_some() {
                            sh.in_flight += 1;
                        }
                        n
                    };
                    self.queued.push_back(Action::Compute(self.params.stack_hold));
                    self.queued.push_back(Action::Unlock(self.stack_locks[self.id]));
                    match node {
                        Some(node) => self.phase = Phase::Work { node },
                        None => self.phase = Phase::FindVictim { scan: 0 },
                    }
                }
                Phase::Work { node } => {
                    let work = self.params.node_work
                        + draw_range(self.seed, node, 0, self.params.work_spread.max(1));
                    self.queued.push_back(Action::Compute(work));
                    let kids = children_of(self.seed, node);
                    self.shared.borrow_mut().nodes_counted += 1;
                    if kids > 0 {
                        self.queued.push_back(Action::Lock(self.stack_locks[self.id]));
                        self.phase = Phase::PushLocked { children: kids };
                    } else {
                        self.shared.borrow_mut().in_flight -= 1;
                        self.queued.push_back(Action::Lock(self.stack_locks[self.id]));
                        self.phase = Phase::PopLocked;
                    }
                }
                Phase::PushLocked { children } => {
                    {
                        let mut sh = self.shared.borrow_mut();
                        for _ in 0..children {
                            let id = sh.next_id;
                            sh.next_id += 1;
                            sh.stacks[self.id].push(id);
                        }
                        sh.in_flight -= 1;
                    }
                    self.queued
                        .push_back(Action::Compute(self.params.stack_hold * children as u64));
                    self.queued.push_back(Action::Unlock(self.stack_locks[self.id]));
                    // Continue with a pop from the own stack.
                    self.queued.push_back(Action::Lock(self.stack_locks[self.id]));
                    self.phase = Phase::PopLocked;
                }
                Phase::FindVictim { scan } => {
                    if scan >= self.threads {
                        let done = {
                            let sh = self.shared.borrow();
                            sh.in_flight == 0 && sh.stacks.iter().all(Vec::is_empty)
                        };
                        if done {
                            self.phase = Phase::Done;
                        } else {
                            self.queued.push_back(Action::Compute(self.params.idle_spin));
                            self.phase = Phase::FindVictim { scan: 0 };
                        }
                        continue;
                    }
                    let victim = (self.id + 1 + scan) % self.threads;
                    if victim != self.id && self.shared.borrow().stacks[victim].len() >= 2 {
                        self.queued.push_back(Action::Lock(self.stack_locks[victim]));
                        self.phase = Phase::StealLocked { victim };
                    } else {
                        self.phase = Phase::FindVictim { scan: scan + 1 };
                    }
                }
                Phase::StealLocked { victim } => {
                    {
                        let mut sh = self.shared.borrow_mut();
                        let take = sh.stacks[victim].len() / 2;
                        for _ in 0..take {
                            // Steal from the bottom (oldest, likely subtree
                            // roots), as UTS chunked stealing does.
                            let node = sh.stacks[victim].remove(0);
                            sh.stacks[self.id].push(node);
                        }
                    }
                    self.queued.push_back(Action::Compute(self.params.steal_hold));
                    self.queued.push_back(Action::Unlock(self.stack_locks[victim]));
                    // Now pop from the own stack; the transfer happened under
                    // the victim's lock (UTS chunk-transfer simplification).
                    self.queued.push_back(Action::Lock(self.stack_locks[self.id]));
                    self.phase = Phase::PopLocked;
                }
                Phase::Done => return Action::Exit,
            }
        }
    }
}

/// Run the UTS model.
pub fn run(cfg: &WorkloadCfg) -> Result<Trace> {
    run_with(cfg, UtsParams { root_branching: cfg.scaled(320), ..Default::default() })
}

/// Run with explicit parameters.
pub fn run_with(cfg: &WorkloadCfg, params: UtsParams) -> Result<Trace> {
    let mut sim = Simulator::new("uts", cfg.machine.clone());
    let threads = cfg.threads;
    let stack_locks: Rc<Vec<ObjId>> =
        Rc::new((0..threads).map(|i| sim.add_lock(format!("stackLock[{i}]"))).collect());

    // Root children are dealt round-robin (UTS generates the root's
    // children on rank 0 and chunked stealing spreads them; dealing
    // directly skips the warm-up transient without changing steady state).
    let mut stacks: Vec<Vec<u64>> = vec![Vec::new(); threads];
    for i in 0..params.root_branching as u64 {
        stacks[(i as usize) % threads].push(i + 1);
    }
    let shared = Rc::new(RefCell::new(Shared {
        stacks,
        next_id: params.root_branching as u64 + 1,
        nodes_counted: 1, // root
        in_flight: 0,
    }));

    let params = Rc::new(params);
    let workers: Vec<(String, Box<dyn Program>)> = (0..threads)
        .map(|i| {
            let mut w = Worker {
                id: i,
                threads,
                seed: cfg.seed,
                params: Rc::clone(&params),
                stack_locks: Rc::clone(&stack_locks),
                shared: Rc::clone(&shared),
                phase: Phase::PopLocked,
                queued: VecDeque::new(),
            };
            w.queued.push_back(Action::Lock(stack_locks[i]));
            (format!("worker-{i}"), Box::new(w) as Box<dyn Program>)
        })
        .collect();
    sim.spawn("main", ForkJoinMain::new(workers));

    let mut trace = sim.run()?;
    let sh = shared.borrow();
    trace.meta.params.insert("nodes".into(), sh.nodes_counted.to_string());
    trace.meta.params.insert("root_branching".into(), params.root_branching.to_string());
    Ok(trace)
}

#[cfg(test)]
mod tests {
    use super::*;
    use critlock_analysis::analyze;

    fn small(threads: usize) -> WorkloadCfg {
        WorkloadCfg::with_threads(threads).with_scale(0.4)
    }

    #[test]
    fn counts_match_sequential_reference() {
        let cfg = small(8);
        let trace = run(&cfg).unwrap();
        let counted: u64 = trace.meta.params.get("nodes").unwrap().parse().unwrap();
        let params = UtsParams { root_branching: cfg.scaled(320), ..Default::default() };
        assert_eq!(counted, sequential_count(&params, cfg.seed));
    }

    #[test]
    fn stack_locks_on_path_without_contention() {
        let rep = analyze(&run(&small(16)).unwrap());
        // The top lock is a stackLock with real CP presence...
        let top = rep.top_critical_lock().unwrap();
        assert!(top.name.starts_with("stackLock["), "top lock {} unexpected", top.name);
        assert!(top.cp_time_frac > 0.01, "cp {:.2}%", top.cp_time_frac * 100.0);
        // ...while its wait time is negligible — the paper's UTS finding.
        assert!(top.avg_wait_frac < 0.01, "wait {:.2}% should be ~0", top.avg_wait_frac * 100.0);
    }

    #[test]
    fn deterministic() {
        assert_eq!(run(&small(4)).unwrap(), run(&small(4)).unwrap());
    }

    #[test]
    fn walk_completes() {
        let rep = analyze(&run(&small(4)).unwrap());
        assert!(rep.cp_complete);
        assert_eq!(rep.cp_length, rep.makespan);
    }

    #[test]
    #[ignore]
    fn calibrate_uts() {
        for threads in [4, 8, 16, 24] {
            let t = run(&WorkloadCfg::with_threads(threads)).unwrap();
            let rep = analyze(&t);
            let top = rep.top_critical_lock().unwrap();
            println!(
                "{threads}t: makespan {} nodes {} top {} cp {:.2}% wait {:.2}% contprob-cp {:.1}%",
                t.makespan(),
                t.meta.params.get("nodes").unwrap(),
                top.name,
                top.cp_time_frac * 100.0,
                top.avg_wait_frac * 100.0,
                top.cont_prob_on_cp * 100.0,
            );
        }
    }
}

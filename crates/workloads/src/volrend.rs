//! Volrend (SPLASH-2) synchronization skeleton.
//!
//! Volume rendering: the image is split into tiles kept in a global work
//! queue guarded by `QLock`; threads also bump a shared tile counter
//! under `CountLock`. Tile costs vary wildly (empty space skipping), so
//! the queue sees bursts of contention, but tiles are much larger than
//! queue operations: the queue lock lands on the critical path with a
//! moderate share — bigger than Water's locks, far from TSP's `Qlock`.

use crate::common::{draw_range, ForkJoinMain, WorkloadCfg};
use critlock_sim::{Action, Program, Result, Simulator, StepCtx};
use critlock_trace::{ObjId, Trace};
use std::cell::RefCell;
use std::collections::VecDeque;
use std::rc::Rc;

/// Model parameters.
#[derive(Debug, Clone)]
pub struct VolrendParams {
    /// Number of tiles per frame.
    pub tiles: usize,
    /// Frames rendered (barrier between frames).
    pub frames: usize,
    /// Minimum per-tile ray-casting work.
    pub tile_work_min: u64,
    /// Maximum additional per-tile work (empty space skipping spread).
    pub tile_work_spread: u64,
    /// Hold time of a queue pop.
    pub queue_hold: u64,
    /// Hold time of an empty-queue check.
    pub check_hold: u64,
    /// Hold time of the shared counter update.
    pub count_hold: u64,
}

impl Default for VolrendParams {
    fn default() -> Self {
        VolrendParams {
            tiles: 576, // 24x24 tile grid over the `head` volume
            frames: 3,
            tile_work_min: 60,
            tile_work_spread: 540,
            queue_hold: 7,
            check_hold: 3,
            count_hold: 2,
        }
    }
}

struct Shared {
    remaining: usize,
    rendered: u64,
}

enum Phase {
    PopLocked { frame: usize },
    CountLocked { frame: usize },
    Done,
}

struct Worker {
    seed: u64,
    params: Rc<VolrendParams>,
    qlock: ObjId,
    count_lock: ObjId,
    barrier: ObjId,
    shared: Rc<RefCell<Shared>>,
    phase: Phase,
    queued: VecDeque<Action>,
    frames_done: usize,
}

impl Program for Worker {
    fn step(&mut self, _ctx: &mut StepCtx<'_>) -> Action {
        loop {
            if let Some(a) = self.queued.pop_front() {
                return a;
            }
            match self.phase {
                Phase::PopLocked { frame } => {
                    let tile = {
                        let mut sh = self.shared.borrow_mut();
                        if sh.remaining > 0 {
                            sh.remaining -= 1;
                            Some((frame as u64) << 32 | sh.remaining as u64)
                        } else {
                            None
                        }
                    };
                    let hold = if tile.is_some() {
                        self.params.queue_hold
                    } else {
                        self.params.check_hold
                    };
                    self.queued.push_back(Action::Compute(hold));
                    self.queued.push_back(Action::Unlock(self.qlock));
                    match tile {
                        Some(t) => {
                            let work = self.params.tile_work_min
                                + draw_range(
                                    self.seed,
                                    t ^ 0x7011,
                                    0,
                                    self.params.tile_work_spread,
                                );
                            self.queued.push_back(Action::Compute(work));
                            self.queued.push_back(Action::Lock(self.count_lock));
                            self.phase = Phase::CountLocked { frame };
                        }
                        None => {
                            // Frame exhausted: barrier, next frame.
                            self.queued.push_back(Action::Barrier(self.barrier));
                            self.frames_done = frame + 1;
                            if self.frames_done >= self.params.frames {
                                self.phase = Phase::Done;
                            } else {
                                // Frame f+1's tiles are restocked by the
                                // barrier leader convention: every thread
                                // runs this code, but only the first one
                                // to arrive at the new frame refills.
                                let mut sh = self.shared.borrow_mut();
                                if sh.rendered >= (self.params.tiles * (frame + 1)) as u64
                                    && sh.remaining == 0
                                {
                                    sh.remaining = self.params.tiles;
                                }
                                drop(sh);
                                self.queued.push_back(Action::Lock(self.qlock));
                                self.phase = Phase::PopLocked { frame: frame + 1 };
                            }
                        }
                    }
                }
                Phase::CountLocked { frame } => {
                    self.shared.borrow_mut().rendered += 1;
                    self.queued.push_back(Action::Compute(self.params.count_hold));
                    self.queued.push_back(Action::Unlock(self.count_lock));
                    self.queued.push_back(Action::Lock(self.qlock));
                    self.phase = Phase::PopLocked { frame };
                }
                Phase::Done => return Action::Exit,
            }
        }
    }
}

/// Run the Volrend model.
pub fn run(cfg: &WorkloadCfg) -> Result<Trace> {
    run_with(cfg, VolrendParams { tiles: cfg.scaled(576), ..Default::default() })
}

/// Run with explicit parameters.
pub fn run_with(cfg: &WorkloadCfg, params: VolrendParams) -> Result<Trace> {
    let mut sim = Simulator::new("volrend", cfg.machine.clone());
    let threads = cfg.threads;
    let qlock = sim.add_lock("QLock");
    let count_lock = sim.add_lock("Global->CountLock");
    let barrier = sim.add_barrier("frame_barrier", threads);
    let shared = Rc::new(RefCell::new(Shared { remaining: params.tiles, rendered: 0 }));
    let params = Rc::new(params);

    let workers: Vec<(String, Box<dyn Program>)> = (0..threads)
        .map(|i| {
            let mut w = Worker {
                seed: cfg.seed,
                params: Rc::clone(&params),
                qlock,
                count_lock,
                barrier,
                shared: Rc::clone(&shared),
                phase: Phase::PopLocked { frame: 0 },
                queued: VecDeque::new(),
                frames_done: 0,
            };
            w.queued.push_back(Action::Lock(qlock));
            (format!("worker-{i}"), Box::new(w) as Box<dyn Program>)
        })
        .collect();
    sim.spawn("main", ForkJoinMain::new(workers));

    let mut trace = sim.run()?;
    let sh = shared.borrow();
    trace.meta.params.insert("tiles".into(), params.tiles.to_string());
    trace.meta.params.insert("rendered".into(), sh.rendered.to_string());
    Ok(trace)
}

#[cfg(test)]
mod tests {
    use super::*;
    use critlock_analysis::analyze;

    fn small(threads: usize) -> WorkloadCfg {
        WorkloadCfg::with_threads(threads).with_scale(0.3)
    }

    #[test]
    fn all_tiles_rendered() {
        let cfg = small(8);
        let t = run(&cfg).unwrap();
        let rendered: u64 = t.meta.params.get("rendered").unwrap().parse().unwrap();
        let tiles: u64 = t.meta.params.get("tiles").unwrap().parse().unwrap();
        assert_eq!(rendered, tiles * 3);
    }

    #[test]
    fn qlock_moderate_on_path() {
        let rep = analyze(&run(&small(16)).unwrap());
        let q = rep.lock_by_name("QLock").unwrap();
        assert!(q.invocations_on_cp > 0);
        assert!(
            q.cp_time_frac < 0.5,
            "QLock should be moderate, got {:.1}%",
            q.cp_time_frac * 100.0
        );
    }

    #[test]
    fn walk_completes() {
        let rep = analyze(&run(&small(4)).unwrap());
        assert!(rep.cp_complete);
        assert_eq!(rep.cp_length, rep.makespan);
    }

    #[test]
    fn deterministic() {
        assert_eq!(run(&small(4)).unwrap(), run(&small(4)).unwrap());
    }

    #[test]
    #[ignore]
    fn calibrate_volrend() {
        for threads in [4, 8, 16, 24] {
            let t = run(&WorkloadCfg::with_threads(threads)).unwrap();
            let rep = analyze(&t);
            print!("{threads}t: makespan {}", t.makespan());
            for l in rep.locks.iter().take(2) {
                print!(
                    "  {} cp {:.2}% wait {:.2}%",
                    l.name,
                    l.cp_time_frac * 100.0,
                    l.avg_wait_frac * 100.0
                );
            }
            println!();
        }
    }
}

//! Water-nsquared (SPLASH-2) synchronization skeleton.
//!
//! An O(N²) molecular-dynamics code: timesteps of barrier-separated
//! phases (predict, intra-molecular forces, inter-molecular forces,
//! correct, kinetic energy). Locks play a minor role:
//!
//! * `gl` — the global-sums lock, taken once per thread per reduction;
//! * `MolLock[j]` — a lock array striping the molecule array, taken when
//!   a thread accumulates forces into molecules owned by others.
//!
//! The paper's Fig. 8 shows Water's two most critical locks with small
//! critical-path shares: the application is barrier-dominated, and the
//! point is that critical lock analysis correctly reports *small* numbers
//! instead of inventing a bottleneck.

use crate::common::{draw_range, ForkJoinMain, WorkloadCfg};
use critlock_sim::{Action, Program, Result, Simulator, StepCtx};
use critlock_trace::{ObjId, Trace};
use std::collections::VecDeque;
use std::rc::Rc;

/// Model parameters.
#[derive(Debug, Clone)]
pub struct WaterParams {
    /// Number of molecules (Table 1: 512).
    pub molecules: usize,
    /// Simulated timesteps.
    pub steps: usize,
    /// Virtual-ns of force computation per molecule-pair block.
    pub pair_work: u64,
    /// Per-thread imbalance spread on phase work.
    pub imbalance: u64,
    /// Hold time of a `MolLock[j]` force accumulation.
    pub mol_hold: u64,
    /// Cross-owner accumulations per thread per force phase.
    pub mol_updates: usize,
    /// Hold time of the global-sums `gl` critical section.
    pub gl_hold: u64,
    /// Number of molecule locks in the stripe array.
    pub mol_locks: usize,
}

impl Default for WaterParams {
    fn default() -> Self {
        WaterParams {
            molecules: 512,
            steps: 4,
            pair_work: 11,
            imbalance: 600,
            mol_hold: 2,
            mol_updates: 48,
            gl_hold: 5,
            mol_locks: 32,
        }
    }
}

enum Phase {
    /// (step, phase index within step)
    Start {
        step: usize,
        sub: usize,
    },
    MolUpdates {
        step: usize,
        sub: usize,
        left: usize,
    },
    GlLocked {
        step: usize,
        sub: usize,
    },
    Done,
}

struct Worker {
    id: usize,
    threads: usize,
    seed: u64,
    params: Rc<WaterParams>,
    mol_locks: Rc<Vec<ObjId>>,
    gl: ObjId,
    barrier: ObjId,
    phase: Phase,
    queued: VecDeque<Action>,
    mol_lock_held: Option<ObjId>,
}

const SUBPHASES: usize = 4;

impl Program for Worker {
    fn step(&mut self, _ctx: &mut StepCtx<'_>) -> Action {
        loop {
            if let Some(a) = self.queued.pop_front() {
                return a;
            }
            match self.phase {
                Phase::Start { step, sub } => {
                    if step >= self.params.steps {
                        self.phase = Phase::Done;
                        continue;
                    }
                    // Per-thread share of the O(N^2)/T pair work, with a
                    // deterministic imbalance draw per (thread, step, sub).
                    let n = self.params.molecules as u64;
                    let base = n * n / (2 * self.threads as u64) * self.params.pair_work / n;
                    let key = (step as u64) << 32 | (sub as u64) << 16 | self.id as u64;
                    let work = base + draw_range(self.seed, key ^ 0x3A7E, 0, self.params.imbalance);
                    self.queued.push_back(Action::Compute(work));
                    // Only the inter-molecular force sub-phase (index 2)
                    // touches other threads' molecules.
                    if sub == 2 {
                        self.phase = Phase::MolUpdates { step, sub, left: self.params.mol_updates };
                    } else {
                        self.queued.push_back(Action::Lock(self.gl));
                        self.phase = Phase::GlLocked { step, sub };
                    }
                }
                Phase::MolUpdates { step, sub, left } => {
                    if let Some(l) = self.mol_lock_held.take() {
                        self.queued.push_back(Action::Compute(self.params.mol_hold));
                        self.queued.push_back(Action::Unlock(l));
                        self.phase = Phase::MolUpdates { step, sub, left };
                        continue;
                    }
                    if left == 0 {
                        self.queued.push_back(Action::Lock(self.gl));
                        self.phase = Phase::GlLocked { step, sub };
                        continue;
                    }
                    // Accumulate into a molecule owned by someone else.
                    let key = (step as u64) << 40 | (self.id as u64) << 20 | left as u64;
                    let mol = draw_range(self.seed, key ^ 0x40C5, 0, self.params.molecules as u64)
                        as usize;
                    let lock = self.mol_locks[mol % self.mol_locks.len()];
                    // A bit of pair work between updates.
                    self.queued.push_back(Action::Compute(self.params.pair_work));
                    self.queued.push_back(Action::Lock(lock));
                    self.mol_lock_held = Some(lock);
                    self.phase = Phase::MolUpdates { step, sub, left: left - 1 };
                }
                Phase::GlLocked { step, sub } => {
                    self.queued.push_back(Action::Compute(self.params.gl_hold));
                    self.queued.push_back(Action::Unlock(self.gl));
                    self.queued.push_back(Action::Barrier(self.barrier));
                    let (next_step, next_sub) =
                        if sub + 1 == SUBPHASES { (step + 1, 0) } else { (step, sub + 1) };
                    self.phase = Phase::Start { step: next_step, sub: next_sub };
                }
                Phase::Done => return Action::Exit,
            }
        }
    }
}

/// Run the Water-nsquared model.
pub fn run(cfg: &WorkloadCfg) -> Result<Trace> {
    run_with(cfg, WaterParams { molecules: cfg.scaled(512), ..Default::default() })
}

/// Run with explicit parameters.
pub fn run_with(cfg: &WorkloadCfg, params: WaterParams) -> Result<Trace> {
    let mut sim = Simulator::new("water-nsquared", cfg.machine.clone());
    let threads = cfg.threads;
    let mol_locks: Rc<Vec<ObjId>> =
        Rc::new((0..params.mol_locks).map(|i| sim.add_lock(format!("MolLock[{i}]"))).collect());
    let gl = sim.add_lock("gl");
    let barrier = sim.add_barrier("phase_barrier", threads);
    let params = Rc::new(params);

    let workers: Vec<(String, Box<dyn Program>)> = (0..threads)
        .map(|i| {
            (
                format!("worker-{i}"),
                Box::new(Worker {
                    id: i,
                    threads,
                    seed: cfg.seed,
                    params: Rc::clone(&params),
                    mol_locks: Rc::clone(&mol_locks),
                    gl,
                    barrier,
                    phase: Phase::Start { step: 0, sub: 0 },
                    queued: VecDeque::new(),
                    mol_lock_held: None,
                }) as Box<dyn Program>,
            )
        })
        .collect();
    sim.spawn("main", ForkJoinMain::new(workers));

    let mut trace = sim.run()?;
    trace.meta.params.insert("molecules".into(), params.molecules.to_string());
    trace.meta.params.insert("steps".into(), params.steps.to_string());
    Ok(trace)
}

#[cfg(test)]
mod tests {
    use super::*;
    use critlock_analysis::analyze;

    fn small(threads: usize) -> WorkloadCfg {
        WorkloadCfg::with_threads(threads).with_scale(0.5)
    }

    #[test]
    fn runs_and_walk_completes() {
        let rep = analyze(&run(&small(8)).unwrap());
        assert!(rep.cp_complete);
        assert_eq!(rep.cp_length, rep.makespan);
    }

    #[test]
    fn locks_are_minor_bottlenecks() {
        let rep = analyze(&run(&small(16)).unwrap());
        // Barrier-dominated: even the top lock stays under 10% of the CP.
        if let Some(top) = rep.top_critical_lock() {
            assert!(
                top.cp_time_frac < 0.10,
                "{} at {:.1}% is too dominant for water",
                top.name,
                top.cp_time_frac * 100.0
            );
        }
    }

    #[test]
    fn gl_and_mol_locks_used() {
        let t = run(&small(4)).unwrap();
        let eps = critlock_trace::lock_episodes(&t);
        let gl = t.object_by_name("gl").unwrap();
        assert!(eps.iter().any(|e| e.lock == gl));
        assert!(eps.iter().any(|e| t.object_name(e.lock).starts_with("MolLock[")));
    }

    #[test]
    fn deterministic() {
        assert_eq!(run(&small(4)).unwrap(), run(&small(4)).unwrap());
    }

    #[test]
    #[ignore]
    fn calibrate_water() {
        for threads in [4, 8, 16, 24] {
            let t = run(&WorkloadCfg::with_threads(threads)).unwrap();
            let rep = analyze(&t);
            print!("{threads}t: makespan {}", t.makespan());
            for l in rep.locks.iter().take(2) {
                print!(
                    "  {} cp {:.2}% wait {:.2}%",
                    l.name,
                    l.cp_time_frac * 100.0,
                    l.avg_wait_frac * 100.0
                );
            }
            println!();
        }
    }
}

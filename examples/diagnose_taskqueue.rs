//! Domain scenario: diagnose and fix a task-queue scalability bottleneck
//! the way the paper does for Radiosity (§V.D).
//!
//! The workflow:
//! 1. profile the application across thread counts,
//! 2. identify the critical lock (it changes with scale!),
//! 3. quantify *why* it is critical (contention probability ×
//!    critical-section size),
//! 4. project the gain, apply the two-lock-queue fix and measure.
//!
//! ```text
//! cargo run --release --example diagnose_taskqueue
//! ```

use critlock::analysis::{analyze, project_shrink};
use critlock::workloads::{radiosity, WorkloadCfg};

fn main() {
    println!("== 1. identification: sweep thread counts ==\n");
    for threads in [4, 8, 16, 24] {
        let cfg = WorkloadCfg::with_threads(threads);
        let trace = radiosity::run(&cfg).expect("radiosity runs");
        let rep = analyze(&trace);
        let top = rep.top_critical_lock().expect("some lock on the path");
        println!(
            "  {threads:>2} threads: makespan {:>7}  top critical lock {:<14} \
             ({} of the critical path, wait time only {})",
            trace.makespan(),
            top.name,
            fmt_pct(top.cp_time_frac),
            fmt_pct(top.avg_wait_frac),
        );
    }

    println!("\n== 2. quantification at 24 threads ==\n");
    let cfg = WorkloadCfg::with_threads(24);
    let trace = radiosity::run(&cfg).expect("radiosity runs");
    let rep = analyze(&trace);
    for l in rep.locks.iter().take(3) {
        println!(
            "  {:<18} CP {:>7}  cont.prob on CP {:>7}  invocations on CP {:>5} \
             ({:.1}x the per-thread average)  hold {:>6}",
            l.name,
            fmt_pct(l.cp_time_frac),
            fmt_pct(l.cont_prob_on_cp),
            l.invocations_on_cp,
            l.incr_invocations,
            fmt_pct(l.avg_hold_frac),
        );
    }
    let tq0 = rep.lock_by_name("tq[0].qlock").expect("bottleneck identified");
    println!(
        "\n  diagnosis: tq[0].qlock is both highly contended along the path \
         ({}) and large in aggregate — the master task queue serializes \
         distribution, exactly the paper's finding.",
        fmt_pct(tq0.cont_prob_on_cp)
    );

    println!("\n== 3. projection ==\n");
    let proj = project_shrink(&rep, "tq[0].qlock", 0.5).expect("lock known");
    println!(
        "  halving its critical sections projects a speedup of {:.2}x \
         (first-order upper bound)",
        proj.projected_speedup
    );

    println!("\n== 4. the fix: Michael–Scott two-lock queues ==\n");
    let opt = radiosity::run_optimized(&cfg).expect("optimized runs");
    let gain = trace.makespan() as f64 / opt.makespan() as f64 - 1.0;
    println!(
        "  makespan {} -> {}  ({:+.1}% end-to-end; the paper measured +7%)",
        trace.makespan(),
        opt.makespan(),
        gain * 100.0
    );
    let rep_opt = analyze(&opt);
    if let Some(head) = rep_opt.lock_by_name("tq[0].q_head_lock") {
        println!(
            "  tq[0].q_head_lock now occupies {} of the critical path \
             (was {} for the single lock)",
            fmt_pct(head.cp_time_frac),
            fmt_pct(tq0.cp_time_frac)
        );
    }
    println!(
        "  note the gain undershoots the removed CP share: other segments \
         moved onto the critical path, as §V.D.3 observes."
    );
}

fn fmt_pct(v: f64) -> String {
    format!("{:.2}%", v * 100.0)
}

//! Walk through the paper's Fig. 1 example: why idleness-based lock
//! profiling picks the wrong lock, and what the critical-path walk sees
//! instead.
//!
//! ```text
//! cargo run --example fig1_walkthrough
//! ```

use critlock::analysis::gantt::{render, GanttOptions};
use critlock::analysis::report::{render_text, RenderOptions};
use critlock::analysis::{analyze, critical_path, rank_targets, rank_targets_by_wait};
use critlock::workloads::fig1_trace;

fn main() {
    let trace = fig1_trace();
    let cp = critical_path(&trace);

    println!("The execution of Fig. 1 (four threads, locks L1..L4):\n");
    println!("{}", render(&trace, &cp, &GanttOptions { width: 66, show_cp: true }));

    let report = analyze(&trace);
    println!("{}", render_text(&report, &RenderOptions::default()));

    println!("What each method would tell you to optimize first:\n");
    let by_cp = rank_targets(&report, 0.5);
    let by_wait = rank_targets_by_wait(&report, 0.5);
    println!("  critical lock analysis : {}", by_cp[0].name);
    println!("  idleness (wait time)   : {}", by_wait[0].name);
    println!();
    println!(
        "L4 has the longest single wait of the whole run — and zero time \
         on the critical path: T3's critical section under L4 is entirely \
         overlapped by T4's tail. Optimizing it cannot change the \
         completion time. Meanwhile L2 (36% of the path, 75% contended \
         along it) and even the never-contended L3 directly gate the end \
         of the run."
    );

    // Show the walk itself.
    println!("\ncritical-path slices (chronological):");
    for s in &cp.slices {
        println!("  {}  [{:>2}, {:>2}]  ({} units)", s.tid, s.start, s.end, s.duration());
    }
    assert_eq!(cp.length, trace.makespan());
}

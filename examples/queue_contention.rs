//! Domain scenario on REAL threads: compare a single-lock queue against
//! the Michael–Scott two-lock queue under a producer/consumer load, using
//! the instrumentation runtime end-to-end.
//!
//! ```text
//! cargo run --release --example queue_contention
//! ```

use critlock::analysis::analyze;
use critlock::instrument::{spawn, Session};
use critlock::workloads::queue::{SingleLockQueue, TwoLockQueue};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

const ITEMS: u64 = 60_000;
const PRODUCERS: usize = 2;
const CONSUMERS: usize = 2;

fn drive_single(session: &Session) {
    let q = Arc::new(SingleLockQueue::new(session, "single.qlock"));
    let done = Arc::new(AtomicBool::new(false));

    let producers: Vec<_> = (0..PRODUCERS)
        .map(|p| {
            let q = Arc::clone(&q);
            spawn(session, format!("producer-{p}"), move || {
                for i in 0..ITEMS / PRODUCERS as u64 {
                    q.enqueue(i);
                }
            })
        })
        .collect();
    let consumers: Vec<_> = (0..CONSUMERS)
        .map(|c| {
            let q = Arc::clone(&q);
            let done = Arc::clone(&done);
            spawn(session, format!("consumer-{c}"), move || {
                let mut n = 0u64;
                loop {
                    if q.dequeue().is_some() {
                        n += 1;
                    } else if done.load(Ordering::Acquire) && q.is_empty() {
                        break;
                    }
                }
                n
            })
        })
        .collect();
    for p in producers {
        p.join().expect("producer");
    }
    done.store(true, Ordering::Release);
    let total: u64 = consumers.into_iter().map(|c| c.join().expect("consumer")).sum();
    assert_eq!(total, ITEMS / PRODUCERS as u64 * PRODUCERS as u64);
}

fn drive_two_lock(session: &Session) {
    let q = Arc::new(TwoLockQueue::new(session, "split"));
    let done = Arc::new(AtomicBool::new(false));

    let producers: Vec<_> = (0..PRODUCERS)
        .map(|p| {
            let q = Arc::clone(&q);
            spawn(session, format!("producer-{p}"), move || {
                for i in 0..ITEMS / PRODUCERS as u64 {
                    q.enqueue(i);
                }
            })
        })
        .collect();
    let consumers: Vec<_> = (0..CONSUMERS)
        .map(|c| {
            let q = Arc::clone(&q);
            let done = Arc::clone(&done);
            spawn(session, format!("consumer-{c}"), move || {
                let mut n = 0u64;
                loop {
                    if q.dequeue().is_some() {
                        n += 1;
                    } else if done.load(Ordering::Acquire) {
                        // Drain once more before exiting.
                        while q.dequeue().is_some() {
                            n += 1;
                        }
                        break;
                    }
                }
                n
            })
        })
        .collect();
    for p in producers {
        p.join().expect("producer");
    }
    done.store(true, Ordering::Release);
    let total: u64 = consumers.into_iter().map(|c| c.join().expect("consumer")).sum();
    assert_eq!(total, ITEMS / PRODUCERS as u64 * PRODUCERS as u64);
}

fn main() {
    println!("producer/consumer over {ITEMS} items, {PRODUCERS}p/{CONSUMERS}c\n");

    let s1 = Session::new("single-lock-queue");
    drive_single(&s1);
    let t1 = s1.finish().expect("trace");
    let r1 = analyze(&t1);

    let s2 = Session::new("two-lock-queue");
    drive_two_lock(&s2);
    let t2 = s2.finish().expect("trace");
    let r2 = analyze(&t2);

    println!("single-lock queue : makespan {:>12} ns", t1.makespan());
    if let Some(l) = r1.lock_by_name("single.qlock") {
        println!(
            "    qlock: {:.1}% of the critical path, {:.1}% contended along it",
            l.cp_time_frac * 100.0,
            l.cont_prob_on_cp * 100.0
        );
    }
    println!("two-lock queue    : makespan {:>12} ns", t2.makespan());
    for name in ["split.q_head_lock", "split.q_tail_lock"] {
        if let Some(l) = r2.lock_by_name(name) {
            println!("    {name}: {:.1}% of the critical path", l.cp_time_frac * 100.0);
        }
    }
    println!(
        "\nthe two-lock design lets enqueues and dequeues proceed in \
         parallel — the optimization the paper applies to Radiosity and \
         TSP, here verified on real threads."
    );
}

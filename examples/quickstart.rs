//! Quickstart: instrument a real multithreaded program, record a trace,
//! and run critical lock analysis on it.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use critlock::analysis::report::{one_line_summary, render_text, RenderOptions};
use critlock::analysis::{analyze, project_shrink};
use critlock::instrument::{spawn, Session};
use std::sync::Arc;

fn main() {
    // 1. Start a tracing session. The creating thread becomes the trace's
    //    main thread; the session owns the clock and the lock registry.
    let session = Session::new("quickstart");

    // 2. Create instrumented locks. They behave like parking_lot mutexes
    //    but record the acquire/contended/obtain/release protocol.
    let hot = Arc::new(session.mutex("hot_counter", 0u64));
    let cold = Arc::new(session.mutex("cold_counter", 0u64));

    // 3. Run the workload on instrumented threads: every thread hammers
    //    the hot lock with long critical sections and touches the cold
    //    lock briefly.
    let handles: Vec<_> = (0..4)
        .map(|i| {
            let hot = Arc::clone(&hot);
            let cold = Arc::clone(&cold);
            spawn(&session, format!("worker-{i}"), move || {
                for round in 0..200 {
                    {
                        let mut g = hot.lock();
                        for _ in 0..2_000 {
                            *g = std::hint::black_box(*g + 1);
                        }
                    }
                    if round % 10 == 0 {
                        let mut g = cold.lock();
                        *g += 1;
                    }
                }
            })
        })
        .collect();
    for h in handles {
        h.join().expect("worker panicked");
    }

    // 4. Close the session and analyze the trace.
    let trace = session.finish().expect("trace assembles");
    println!("recorded {} events across {} threads\n", trace.num_events(), trace.num_threads());

    let report = analyze(&trace);
    println!("{}", render_text(&report, &RenderOptions::default()));
    println!("{}", one_line_summary(&report));

    // 5. Ask the what-if engine what halving the hot critical sections
    //    would buy end-to-end.
    let top = report.top_critical_lock().expect("a lock is on the path");
    let proj = project_shrink(&report, &top.name, 0.5).expect("lock known");
    println!(
        "\nhalving {}'s critical sections would save up to {} ns of the \
         critical path (projected speedup {:.2}x)",
        top.name, proj.cp_time_saved, proj.projected_speedup
    );
}

//! Domain scenario: profile a server under load and confirm (or refute)
//! that its locking is healthy — the paper's OpenLDAP study (§V.C).
//!
//! The same tool that finds bottlenecks must also *not* cry wolf on a
//! well-tuned application; the analysis quantifies "healthy" instead of
//! guessing.
//!
//! ```text
//! cargo run --release --example server_profile
//! ```

use critlock::analysis::report::{render_text, RenderOptions};
use critlock::analysis::{analyze, online_analyze};
use critlock::workloads::{ldap, WorkloadCfg};

fn main() {
    let cfg = WorkloadCfg::with_threads(16);
    println!("profiling the LDAP-like server: 16 workers, seeded search load...\n");
    let trace = ldap::run(&cfg).expect("server runs");
    println!(
        "served {} requests; {} trace events\n",
        trace.meta.params.get("served").expect("recorded"),
        trace.num_events()
    );

    let rep = analyze(&trace);
    println!("{}", render_text(&rep, &RenderOptions { top: Some(5), ..Default::default() }));

    match rep.top_critical_lock() {
        Some(top) if top.cp_time_frac > 0.05 => {
            println!(
                "verdict: {} occupies {:.1}% of the critical path — investigate.",
                top.name,
                top.cp_time_frac * 100.0
            );
        }
        Some(top) => {
            println!(
                "verdict: no significant critical-section bottleneck; the \
                 hottest lock ({}) accounts for only {:.2}% of the critical \
                 path. Fine-grained locking is doing its job — the paper \
                 reaches the same conclusion for OpenLDAP 2.4.21.",
                top.name,
                top.cp_time_frac * 100.0
            );
        }
        None => println!("verdict: no lock ever appeared on the critical path."),
    }

    // The online profile agrees without needing the offline backward walk
    // (this is what a production deployment would run continuously).
    let online = online_analyze(&trace);
    println!(
        "\nonline (forward) profile concurs: cp length {}, hottest lock {}",
        online.cp_length,
        online
            .locks
            .first()
            .map(|l| format!("{} at {:.2}%", l.name, l.cp_time_frac * 100.0))
            .unwrap_or_else(|| "none".into())
    );
}

//! Offline stand-in for `criterion`.
//!
//! Provides the group/bencher API surface the workspace's benches use,
//! backed by a simple wall-clock timing loop: each benchmark runs a
//! handful of timed iterations and prints the mean per-iteration time.
//! No statistics, plots or baselines — just enough to keep `cargo bench`
//! working offline.

use std::fmt;
use std::time::{Duration, Instant};

/// How measured iterations are scaled in the report.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Identifier for a parameterized benchmark.
pub struct BenchmarkId {
    text: String,
}

impl BenchmarkId {
    /// `function_name/parameter` identifier.
    pub fn new(function_name: impl Into<String>, parameter: impl fmt::Display) -> Self {
        BenchmarkId { text: format!("{}/{}", function_name.into(), parameter) }
    }

    /// Identifier from a parameter alone.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId { text: parameter.to_string() }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.text)
    }
}

/// Passed to benchmark closures; runs and times the measured routine.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Time `routine` over the configured iteration count.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // One warm-up call outside the timed region.
        black_box(routine());
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

/// Opaque value sink preventing the optimizer from deleting the
/// measured computation.
pub fn black_box<T>(value: T) -> T {
    std::hint::black_box(value)
}

/// A named collection of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: u64,
    throughput: Option<Throughput>,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Number of timed iterations per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1) as u64;
        self
    }

    /// Scale reported times by work per iteration.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Run a benchmark closure.
    pub fn bench_function<F>(&mut self, id: impl fmt::Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher { iters: self.sample_size, elapsed: Duration::ZERO };
        f(&mut b);
        self.report(&id.to_string(), &b);
        self
    }

    /// Run a benchmark closure with an input value.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut b = Bencher { iters: self.sample_size, elapsed: Duration::ZERO };
        f(&mut b, input);
        self.report(&id.to_string(), &b);
        self
    }

    /// Print the group's trailing separator.
    pub fn finish(&mut self) {
        println!();
    }

    fn report(&self, id: &str, b: &Bencher) {
        let per_iter = b.elapsed.as_secs_f64() / b.iters.max(1) as f64;
        let rate = match self.throughput {
            Some(Throughput::Elements(n)) if per_iter > 0.0 => {
                format!("  {:>12.0} elem/s", n as f64 / per_iter)
            }
            Some(Throughput::Bytes(n)) if per_iter > 0.0 => {
                format!("  {:>12.0} B/s", n as f64 / per_iter)
            }
            _ => String::new(),
        };
        println!(
            "{}/{:<24} {:>12.3} ms/iter ({} iters){}",
            self.name,
            id,
            per_iter * 1e3,
            b.iters,
            rate
        );
    }
}

/// The benchmark harness entry object.
pub struct Criterion {
    default_sample_size: u64,
}

impl Criterion {
    /// Begin a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let sample_size = self.default_sample_size;
        BenchmarkGroup { name: name.into(), sample_size, throughput: None, _criterion: self }
    }

    /// Run a standalone benchmark outside any group.
    pub fn bench_function<F>(&mut self, id: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        self.benchmark_group("bench").bench_function(id, f);
        self
    }
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { default_sample_size: 10 }
    }
}

/// Declare a group of benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declare the bench `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_and_reports() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("smoke");
        g.sample_size(3);
        g.throughput(Throughput::Elements(100));
        let mut runs = 0u32;
        g.bench_function("count", |b| {
            b.iter(|| {
                runs += 1;
                runs
            })
        });
        g.finish();
        // warm-up + 3 timed iterations
        assert_eq!(runs, 4);
    }

    #[test]
    fn bench_with_input_passes_value() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("inputs");
        g.sample_size(1);
        g.bench_with_input(BenchmarkId::new("double", 21), &21u64, |b, &x| b.iter(|| x * 2));
        g.finish();
    }
}

//! Offline stand-in for `parking_lot`.
//!
//! Wraps `std::sync` primitives behind parking_lot's poison-free API:
//! `lock()`/`read()`/`write()` return guards directly, `try_*` return
//! `Option`, and a poisoned std lock is transparently recovered (the
//! instrumentation wrappers above this crate manage their own
//! panic-safety). Only the surface used by this workspace is provided.

use std::fmt;
use std::ops::{Deref, DerefMut};
use std::sync::{self, TryLockError};

// ------------------------------------------------------------------ Mutex

/// Mutual exclusion lock (poison-free API over `std::sync::Mutex`).
pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Wrap a value.
    pub fn new(value: T) -> Self {
        Mutex { inner: sync::Mutex::new(value) }
    }

    /// Consume the mutex, returning the value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Block until the lock is held.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        let g = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        MutexGuard { inner: Some(g) }
    }

    /// Acquire without blocking; `None` if the lock is held elsewhere.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(MutexGuard { inner: Some(g) }),
            Err(TryLockError::Poisoned(e)) => Some(MutexGuard { inner: Some(e.into_inner()) }),
            Err(TryLockError::WouldBlock) => None,
        }
    }

    /// Access the value without locking (requires `&mut self`).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Mutex::new(T::default())
    }
}

impl<T: fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Mutex").finish_non_exhaustive()
    }
}

/// RAII guard for [`Mutex`]. The inner `Option` exists so
/// [`Condvar::wait`] can temporarily take ownership of the std guard.
pub struct MutexGuard<'a, T: ?Sized> {
    inner: Option<sync::MutexGuard<'a, T>>,
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard present outside wait")
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard present outside wait")
    }
}

// ---------------------------------------------------------------- Condvar

/// Condition variable compatible with [`Mutex`].
pub struct Condvar {
    inner: sync::Condvar,
}

impl Condvar {
    /// A fresh condvar.
    pub fn new() -> Self {
        Condvar { inner: sync::Condvar::new() }
    }

    /// Atomically release the mutex and block until notified; the mutex
    /// is re-acquired before returning.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let g = guard.inner.take().expect("guard present before wait");
        let g = self.inner.wait(g).unwrap_or_else(|e| e.into_inner());
        guard.inner = Some(g);
    }

    /// Wake one waiter.
    pub fn notify_one(&self) {
        self.inner.notify_one();
    }

    /// Wake all waiters.
    pub fn notify_all(&self) {
        self.inner.notify_all();
    }
}

impl Default for Condvar {
    fn default() -> Self {
        Condvar::new()
    }
}

// ----------------------------------------------------------------- RwLock

/// Reader-writer lock (poison-free API over `std::sync::RwLock`).
pub struct RwLock<T: ?Sized> {
    inner: sync::RwLock<T>,
}

impl<T> RwLock<T> {
    /// Wrap a value.
    pub fn new(value: T) -> Self {
        RwLock { inner: sync::RwLock::new(value) }
    }

    /// Consume the lock, returning the value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Block until shared access is held.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        RwLockReadGuard { inner: self.inner.read().unwrap_or_else(|e| e.into_inner()) }
    }

    /// Block until exclusive access is held.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        RwLockWriteGuard { inner: self.inner.write().unwrap_or_else(|e| e.into_inner()) }
    }

    /// Non-blocking shared acquire.
    pub fn try_read(&self) -> Option<RwLockReadGuard<'_, T>> {
        match self.inner.try_read() {
            Ok(g) => Some(RwLockReadGuard { inner: g }),
            Err(TryLockError::Poisoned(e)) => Some(RwLockReadGuard { inner: e.into_inner() }),
            Err(TryLockError::WouldBlock) => None,
        }
    }

    /// Non-blocking exclusive acquire.
    pub fn try_write(&self) -> Option<RwLockWriteGuard<'_, T>> {
        match self.inner.try_write() {
            Ok(g) => Some(RwLockWriteGuard { inner: g }),
            Err(TryLockError::Poisoned(e)) => Some(RwLockWriteGuard { inner: e.into_inner() }),
            Err(TryLockError::WouldBlock) => None,
        }
    }

    /// Access the value without locking (requires `&mut self`).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: Default> Default for RwLock<T> {
    fn default() -> Self {
        RwLock::new(T::default())
    }
}

/// RAII shared guard for [`RwLock`].
pub struct RwLockReadGuard<'a, T: ?Sized> {
    inner: sync::RwLockReadGuard<'a, T>,
}

impl<T: ?Sized> Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

/// RAII exclusive guard for [`RwLock`].
pub struct RwLockWriteGuard<'a, T: ?Sized> {
    inner: sync::RwLockWriteGuard<'a, T>,
}

impl<T: ?Sized> Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_basic() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        let g = m.lock();
        assert!(m.try_lock().is_none());
        drop(g);
        assert!(m.try_lock().is_some());
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_basic() {
        let l = RwLock::new(5);
        {
            let r1 = l.read();
            let r2 = l.try_read().expect("shared readers coexist");
            assert_eq!((*r1, *r2), (5, 5));
            assert!(l.try_write().is_none());
        }
        *l.write() = 7;
        assert_eq!(l.into_inner(), 7);
    }

    #[test]
    fn condvar_wakes_waiter() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let p2 = Arc::clone(&pair);
        let h = std::thread::spawn(move || {
            let (m, cv) = &*p2;
            let mut done = m.lock();
            while !*done {
                cv.wait(&mut done);
            }
        });
        std::thread::sleep(std::time::Duration::from_millis(10));
        let (m, cv) = &*pair;
        *m.lock() = true;
        cv.notify_all();
        h.join().unwrap();
    }
}

//! Offline stand-in for `proptest`.
//!
//! Implements the strategy/combinator surface this workspace's property
//! tests use — range and tuple strategies, `any`, `prop_map`,
//! `prop_flat_map`, `prop::collection::vec` — plus the `proptest!`,
//! `prop_assert!` and `prop_assert_eq!` macros. Cases are generated from
//! a deterministic RNG (no shrinking; a failing case panics with the
//! usual assert message, and the generation sequence is reproducible).

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::marker::PhantomData;
use std::ops::Range;

/// Runner configuration; only the case count is honored.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of random cases per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// Run each property over `cases` generated inputs.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// Deterministic source of randomness for strategies.
pub struct TestRng {
    inner: SmallRng,
}

impl TestRng {
    /// A fixed-seed RNG: every run generates the same case sequence.
    pub fn deterministic() -> Self {
        TestRng { inner: SmallRng::seed_from_u64(0x9E37_79B9_7F4A_7C15) }
    }

    /// Next raw 64-bit word.
    pub fn next_u64(&mut self) -> u64 {
        self.inner.gen::<u64>()
    }

    /// Uniform draw from a half-open usize range.
    pub fn usize_in(&mut self, range: Range<usize>) -> usize {
        self.inner.gen_range(range)
    }
}

/// A generator of values of type `Value`.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Generate one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Derive a dependent strategy from each generated value.
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { inner: self, f }
    }
}

/// Always produces a clone of the given value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S, T, F> Strategy for FlatMap<S, F>
where
    S: Strategy,
    T: Strategy,
    F: Fn(S::Value) -> T,
{
    type Value = T::Value;
    fn generate(&self, rng: &mut TestRng) -> T::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty => $wide:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end as $wide).wrapping_sub(self.start as $wide) as u64;
                let off = ((rng.next_u64() as u128 * span as u128) >> 64) as $wide;
                self.start.wrapping_add(off as $t)
            }
        }
    )*};
}

impl_range_strategy!(
    u8 => u64, u16 => u64, u32 => u64, u64 => u64, usize => u64,
    i8 => i64, i16 => i64, i32 => i64, i64 => i64, isize => i64
);

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);

/// Types with a canonical full-domain strategy (`any::<T>()`).
pub trait Arbitrary: Sized {
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Strategy over the full domain of `T`.
pub struct AnyStrategy<T>(PhantomData<T>);

impl<T: Arbitrary> Strategy for AnyStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The canonical strategy for `T` (uniform over its domain).
pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
    AnyStrategy(PhantomData)
}

/// Collection strategies (`prop::collection`).
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// Acceptable length specifications for [`vec`].
    pub trait SizeRange {
        fn pick(&self, rng: &mut TestRng) -> usize;
    }

    impl SizeRange for usize {
        fn pick(&self, _rng: &mut TestRng) -> usize {
            *self
        }
    }

    impl SizeRange for Range<usize> {
        fn pick(&self, rng: &mut TestRng) -> usize {
            if self.start >= self.end {
                self.start
            } else {
                rng.usize_in(self.clone())
            }
        }
    }

    /// Strategy producing vectors of `element` values with a length drawn
    /// from `size`.
    pub struct VecStrategy<S, L> {
        element: S,
        size: L,
    }

    /// Generate `Vec`s from an element strategy.
    pub fn vec<S: Strategy, L: SizeRange>(element: S, size: L) -> VecStrategy<S, L> {
        VecStrategy { element, size }
    }

    impl<S: Strategy, L: SizeRange> Strategy for VecStrategy<S, L> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.size.pick(rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Everything a property-test module needs in scope.
pub mod prelude {
    pub use crate::{any, Arbitrary, Just, ProptestConfig, Strategy};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};

    /// Namespace mirror (`prop::collection::vec`).
    pub mod prop {
        pub use crate::collection;
    }
}

/// Assert a condition inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// Assert equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

/// Assert inequality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)*) => { assert_ne!($($args)*) };
}

/// Define property tests: each `fn name(arg in strategy, ...)` becomes a
/// `#[test]` that runs the body over generated cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::ProptestConfig::default()); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($cfg:expr); ) => {};
    (($cfg:expr);
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __config: $crate::ProptestConfig = $cfg;
            let mut __rng = $crate::TestRng::deterministic();
            for __case in 0..__config.cases {
                $(let $arg = $crate::Strategy::generate(&($strat), &mut __rng);)+
                $body
            }
        }
        $crate::__proptest_impl! { ($cfg); $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_and_tuples() {
        let mut rng = crate::TestRng::deterministic();
        let s = (0u8..4, 0usize..10, 1u64..40);
        for _ in 0..200 {
            let (a, b, c) = s.generate(&mut rng);
            assert!(a < 4 && b < 10 && (1..40).contains(&c));
        }
    }

    #[test]
    fn flat_map_vec() {
        let mut rng = crate::TestRng::deterministic();
        let s = (1usize..5)
            .prop_flat_map(|n| prop::collection::vec(0u32..100, n).prop_map(move |v| (n, v)));
        for _ in 0..100 {
            let (n, v) = s.generate(&mut rng);
            assert_eq!(v.len(), n);
            assert!(v.iter().all(|&x| x < 100));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn macro_generates_cases(x in 0u64..100, pair in (0u8..2, 0u8..2)) {
            prop_assert!(x < 100);
            prop_assert!(pair.0 < 2 && pair.1 < 2);
            prop_assert_eq!(pair.0.min(1), pair.0);
        }
    }
}

//! Offline stand-in for `rand` 0.8.
//!
//! Provides deterministic pseudo-random generation for the simulator:
//! [`rngs::SmallRng`] is xoshiro256++ seeded through SplitMix64, matching
//! the spirit (not the exact stream) of the real crate. Only the
//! workspace's API surface is implemented: `SeedableRng::seed_from_u64`,
//! `Rng::gen`, `Rng::gen_range` and `Rng::gen_bool`.

use std::ops::Range;

/// Low-level source of random 64-bit words.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Construction of RNGs from seeds.
pub trait SeedableRng: Sized {
    /// Build a generator from a 64-bit seed (deterministic).
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that can be sampled uniformly from the full value domain
/// (the `Standard` distribution of the real crate).
pub trait Standard: Sized {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits -> uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Ranges a value can be drawn from (the crate's `SampleRange`).
pub trait SampleRange<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as u128).wrapping_sub(self.start as u128) as u64;
                // Lemire multiply-shift; slight modulo bias is fine here.
                let off = ((rng.next_u64() as u128 * span as u128) >> 64) as u64;
                self.start.wrapping_add(off as $t)
            }
        }
    )*};
}

impl_range!(u8, u16, u32, u64, usize);

macro_rules! impl_signed_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                let off = ((rng.next_u64() as u128 * span as u128) >> 64) as u64;
                (self.start as i128 + off as i128) as $t
            }
        }
    )*};
}

impl_signed_range!(i8, i16, i32, i64, isize);

impl SampleRange<f64> for Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + f64::sample(rng) * (self.end - self.start)
    }
}

/// High-level sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Sample from the standard distribution of `T`.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Sample uniformly from a range.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Bernoulli trial with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        f64::sample(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Small, fast generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// xoshiro256++ — the algorithm behind the real crate's `SmallRng`
    /// on 64-bit targets.
    #[derive(Clone, Debug)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let s = [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ];
            SmallRng { s }
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_seed() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = SmallRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x = rng.gen_range(3usize..17);
            assert!((3..17).contains(&x));
            let f = rng.gen::<f64>();
            assert!((0.0..1.0).contains(&f));
            let s = rng.gen_range(-5i64..5);
            assert!((-5..5).contains(&s));
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SmallRng::seed_from_u64(1);
        let mut b = SmallRng::seed_from_u64(2);
        assert_ne!(
            (0..8).map(|_| a.gen::<u64>()).collect::<Vec<_>>(),
            (0..8).map(|_| b.gen::<u64>()).collect::<Vec<_>>()
        );
    }
}

//! Offline stand-in for `rayon`.
//!
//! Implements the API subset this workspace uses — `par_iter()` /
//! `into_par_iter()` / `par_chunks()` with `map` + `collect`, plus
//! [`ThreadPoolBuilder`] / [`ThreadPool::install`] — over
//! `std::thread::scope`. Work is split into one contiguous chunk per
//! worker and results are rejoined in input order, so `collect()` returns
//! items in exactly the order a serial `iter().map().collect()` would:
//! callers rely on that for byte-identical parallel output.
//!
//! Pool semantics: the active pool size is a thread-local. `install`
//! pins it for the duration of the closure; worker threads run with an
//! active size of 1 so nested parallel calls execute inline instead of
//! oversubscribing. With an active size of 1 (or a single item) no
//! threads are spawned at all.

use std::cell::Cell;
use std::fmt;
use std::num::NonZeroUsize;

thread_local! {
    static ACTIVE_POOL: Cell<Option<usize>> = const { Cell::new(None) };
}

fn default_parallelism() -> usize {
    std::thread::available_parallelism().map(NonZeroUsize::get).unwrap_or(1)
}

/// Number of threads parallel operations on this thread will use.
pub fn current_num_threads() -> usize {
    ACTIVE_POOL.with(Cell::get).unwrap_or_else(default_parallelism)
}

/// Restores the previous thread-local pool size on drop (unwind-safe).
struct PoolGuard(Option<usize>);

impl PoolGuard {
    fn set(size: usize) -> Self {
        PoolGuard(ACTIVE_POOL.with(|c| c.replace(Some(size))))
    }
}

impl Drop for PoolGuard {
    fn drop(&mut self) {
        let prev = self.0;
        ACTIVE_POOL.with(|c| c.set(prev));
    }
}

/// Error building a thread pool (never produced by this stand-in, but
/// part of the rayon signature callers match on).
#[derive(Debug)]
pub struct ThreadPoolBuildError(());

impl fmt::Display for ThreadPoolBuildError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("failed to build thread pool")
    }
}

impl std::error::Error for ThreadPoolBuildError {}

/// Builder for a scoped [`ThreadPool`].
#[derive(Debug, Default)]
pub struct ThreadPoolBuilder {
    num_threads: usize,
}

impl ThreadPoolBuilder {
    /// New builder with default settings.
    pub fn new() -> Self {
        Self::default()
    }

    /// Set the pool size; `0` means available parallelism.
    pub fn num_threads(mut self, n: usize) -> Self {
        self.num_threads = n;
        self
    }

    /// Build the pool.
    pub fn build(self) -> Result<ThreadPool, ThreadPoolBuildError> {
        let size = if self.num_threads == 0 { default_parallelism() } else { self.num_threads };
        Ok(ThreadPool { size })
    }
}

/// A scoped pool: parallel operations inside [`ThreadPool::install`] use
/// this pool's thread count instead of the global default.
#[derive(Debug)]
pub struct ThreadPool {
    size: usize,
}

impl ThreadPool {
    /// This pool's thread count.
    pub fn current_num_threads(&self) -> usize {
        self.size
    }

    /// Run `op` with this pool active on the current thread.
    pub fn install<R>(&self, op: impl FnOnce() -> R) -> R {
        let _guard = PoolGuard::set(self.size);
        op()
    }
}

/// Map `f` over `items` across the active pool, preserving input order.
fn run_map<I, U, F>(items: Vec<I>, f: F) -> Vec<U>
where
    I: Send,
    U: Send,
    F: Fn(I) -> U + Sync,
{
    let workers = current_num_threads().min(items.len()).max(1);
    if workers <= 1 {
        return items.into_iter().map(f).collect();
    }
    let chunk_len = items.len().div_ceil(workers);
    let mut chunks: Vec<Vec<I>> = Vec::with_capacity(workers);
    let mut it = items.into_iter();
    loop {
        let chunk: Vec<I> = it.by_ref().take(chunk_len).collect();
        if chunk.is_empty() {
            break;
        }
        chunks.push(chunk);
    }
    let f = &f;
    std::thread::scope(|scope| {
        let handles: Vec<_> = chunks
            .into_iter()
            .map(|chunk| {
                scope.spawn(move || {
                    // Nested parallel calls inside a worker run inline.
                    let _guard = PoolGuard::set(1);
                    chunk.into_iter().map(f).collect::<Vec<U>>()
                })
            })
            .collect();
        let mut out = Vec::new();
        for handle in handles {
            match handle.join() {
                Ok(part) => out.extend(part),
                Err(payload) => std::panic::resume_unwind(payload),
            }
        }
        out
    })
}

/// A parallel iterator: a pipeline that can be driven to an ordered `Vec`.
pub trait ParallelIterator: Sized {
    /// Item type produced by the pipeline.
    type Item: Send;

    /// Execute the pipeline, returning items in input order.
    fn drive(self) -> Vec<Self::Item>;

    /// Map each item through `f` in parallel.
    fn map<U, F>(self, f: F) -> Map<Self, F>
    where
        U: Send,
        F: Fn(Self::Item) -> U + Sync,
    {
        Map { base: self, f }
    }

    /// Collect the pipeline's output.
    fn collect<C>(self) -> C
    where
        C: FromParallelIterator<Self::Item>,
    {
        C::from_par_iter(self)
    }
}

/// Source stage holding already-materialized items.
pub struct IterPar<T> {
    items: Vec<T>,
}

impl<T: Send> ParallelIterator for IterPar<T> {
    type Item = T;

    fn drive(self) -> Vec<T> {
        self.items
    }
}

/// Lazy `map` stage.
pub struct Map<P, F> {
    base: P,
    f: F,
}

impl<P, U, F> ParallelIterator for Map<P, F>
where
    P: ParallelIterator,
    U: Send,
    F: Fn(P::Item) -> U + Sync,
{
    type Item = U;

    fn drive(self) -> Vec<U> {
        run_map(self.base.drive(), self.f)
    }
}

/// Conversion into a parallel iterator by value.
pub trait IntoParallelIterator {
    /// Item type.
    type Item: Send;
    /// Iterator type.
    type Iter: ParallelIterator<Item = Self::Item>;
    /// Convert.
    fn into_par_iter(self) -> Self::Iter;
}

impl<T: Send> IntoParallelIterator for Vec<T> {
    type Item = T;
    type Iter = IterPar<T>;

    fn into_par_iter(self) -> Self::Iter {
        IterPar { items: self }
    }
}

impl IntoParallelIterator for std::ops::Range<usize> {
    type Item = usize;
    type Iter = IterPar<usize>;

    fn into_par_iter(self) -> Self::Iter {
        IterPar { items: self.collect() }
    }
}

/// Conversion into a parallel iterator over references.
pub trait IntoParallelRefIterator<'data> {
    /// Item type (a reference).
    type Item: Send + 'data;
    /// Iterator type.
    type Iter: ParallelIterator<Item = Self::Item>;
    /// Borrowing conversion.
    fn par_iter(&'data self) -> Self::Iter;
}

impl<'data, T: Sync + 'data> IntoParallelRefIterator<'data> for [T] {
    type Item = &'data T;
    type Iter = IterPar<&'data T>;

    fn par_iter(&'data self) -> Self::Iter {
        IterPar { items: self.iter().collect() }
    }
}

impl<'data, T: Sync + 'data> IntoParallelRefIterator<'data> for Vec<T> {
    type Item = &'data T;
    type Iter = IterPar<&'data T>;

    fn par_iter(&'data self) -> Self::Iter {
        IterPar { items: self.iter().collect() }
    }
}

/// Parallel chunked views of a slice.
pub trait ParallelSlice<T: Sync> {
    /// Parallel iterator over contiguous chunks of `size` items (last
    /// chunk may be shorter). `size` must be non-zero.
    fn par_chunks(&self, size: usize) -> IterPar<&[T]>;
}

impl<T: Sync> ParallelSlice<T> for [T] {
    fn par_chunks(&self, size: usize) -> IterPar<&[T]> {
        assert!(size != 0, "chunk size must be non-zero");
        IterPar { items: self.chunks(size).collect() }
    }
}

/// The traits, for glob import.
pub mod prelude {
    pub use crate::{
        FromParallelIterator, IntoParallelIterator, IntoParallelRefIterator, ParallelIterator,
        ParallelSlice,
    };
}

/// Collection from a parallel iterator.
pub trait FromParallelIterator<T: Send>: Sized {
    /// Build the collection by driving the pipeline.
    fn from_par_iter<P: ParallelIterator<Item = T>>(par: P) -> Self;
}

impl<T: Send> FromParallelIterator<T> for Vec<T> {
    fn from_par_iter<P: ParallelIterator<Item = T>>(par: P) -> Self {
        par.drive()
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::*;

    #[test]
    fn map_collect_preserves_order() {
        let v: Vec<u64> = (0..1000).collect();
        let doubled: Vec<u64> = v.par_iter().map(|&x| x * 2).collect();
        let serial: Vec<u64> = v.iter().map(|&x| x * 2).collect();
        assert_eq!(doubled, serial);
    }

    #[test]
    fn into_par_iter_by_value() {
        let v: Vec<String> = (0..40).map(|i| format!("s{i}")).collect();
        let lens: Vec<usize> = v.clone().into_par_iter().map(|s| s.len()).collect();
        assert_eq!(lens, v.iter().map(String::len).collect::<Vec<_>>());
    }

    #[test]
    fn par_chunks_cover_slice_in_order() {
        let v: Vec<u32> = (0..103).collect();
        let sums: Vec<u32> = v.par_chunks(10).map(|c| c.iter().sum()).collect();
        let serial: Vec<u32> = v.chunks(10).map(|c| c.iter().sum()).collect();
        assert_eq!(sums, serial);
        assert_eq!(sums.len(), 11);
    }

    #[test]
    fn range_source() {
        let squares: Vec<usize> = (0..10).into_par_iter().map(|i| i * i).collect();
        assert_eq!(squares, vec![0, 1, 4, 9, 16, 25, 36, 49, 64, 81]);
    }

    #[test]
    fn install_sets_and_restores_pool_size() {
        let pool = ThreadPoolBuilder::new().num_threads(3).build().unwrap();
        assert_eq!(pool.current_num_threads(), 3);
        let before = current_num_threads();
        pool.install(|| {
            assert_eq!(current_num_threads(), 3);
            let inner = ThreadPoolBuilder::new().num_threads(2).build().unwrap();
            inner.install(|| assert_eq!(current_num_threads(), 2));
            assert_eq!(current_num_threads(), 3);
        });
        assert_eq!(current_num_threads(), before);
    }

    #[test]
    fn single_thread_pool_runs_inline() {
        let pool = ThreadPoolBuilder::new().num_threads(1).build().unwrap();
        let caller = std::thread::current().id();
        let ids: Vec<std::thread::ThreadId> =
            pool.install(|| (0..8).into_par_iter().map(|_| std::thread::current().id()).collect());
        assert!(ids.iter().all(|&id| id == caller));
    }

    #[test]
    fn workers_run_nested_calls_inline() {
        let pool = ThreadPoolBuilder::new().num_threads(4).build().unwrap();
        let nested: Vec<usize> =
            pool.install(|| (0..8).into_par_iter().map(|_| current_num_threads()).collect());
        // Inside a worker (or inline on the caller when fewer items than
        // workers) the active size is 1 — except the degenerate inline
        // case keeps the pool size. Either way nested calls must not see
        // the outer pool multiplied.
        assert!(nested.iter().all(|&n| n <= 4));
        let deep: Vec<Vec<u32>> = pool.install(|| {
            (0..4)
                .into_par_iter()
                .map(|i| (0..4).into_par_iter().map(move |j| (i * 4 + j) as u32).collect())
                .collect()
        });
        let flat: Vec<u32> = deep.into_iter().flatten().collect();
        assert_eq!(flat, (0..16).collect::<Vec<u32>>());
    }

    #[test]
    fn zero_threads_means_default() {
        let pool = ThreadPoolBuilder::new().build().unwrap();
        assert!(pool.current_num_threads() >= 1);
    }

    #[test]
    fn empty_input() {
        let v: Vec<u8> = Vec::new();
        let out: Vec<u8> = v.par_iter().map(|&x| x).collect();
        assert!(out.is_empty());
    }

    #[test]
    fn panic_propagates() {
        let pool = ThreadPoolBuilder::new().num_threads(2).build().unwrap();
        let result = std::panic::catch_unwind(|| {
            pool.install(|| {
                let _: Vec<u32> = (0..8)
                    .into_par_iter()
                    .map(|i| if i == 5 { panic!("boom") } else { 0 })
                    .collect();
            })
        });
        assert!(result.is_err());
        // Pool-size thread-local must be restored after the unwind.
        let _ = current_num_threads();
    }
}

//! Offline stand-in for `rustc-hash`.
//!
//! Provides the `FxHasher` family: a fast, non-cryptographic,
//! fully deterministic hasher (no per-process `RandomState` seeding) in
//! the multiply-rotate style rustc uses internally. Only the surface this
//! workspace uses is provided: [`FxHasher`], [`FxBuildHasher`],
//! [`FxHashMap`] and [`FxHashSet`].
//!
//! Determinism matters here beyond speed: map iteration order feeds into
//! analysis pipelines that promise byte-identical output across runs, so
//! a seeded `RandomState` default hasher is actively wrong for them.

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

/// `BuildHasher` for [`FxHasher`] (zero-sized, `Default`-constructed).
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// A `HashMap` using [`FxHasher`].
pub type FxHashMap<K, V> = HashMap<K, V, FxBuildHasher>;

/// A `HashSet` using [`FxHasher`].
pub type FxHashSet<T> = HashSet<T, FxBuildHasher>;

const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;
const ROTATE: u32 = 5;

/// Fast deterministic hasher (multiply-rotate over 64-bit words).
#[derive(Debug, Clone, Copy, Default)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(ROTATE) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn write(&mut self, mut bytes: &[u8]) {
        while bytes.len() >= 8 {
            let (head, rest) = bytes.split_at(8);
            self.add_to_hash(u64::from_le_bytes(head.try_into().unwrap()));
            bytes = rest;
        }
        if bytes.len() >= 4 {
            let (head, rest) = bytes.split_at(4);
            self.add_to_hash(u64::from(u32::from_le_bytes(head.try_into().unwrap())));
            bytes = rest;
        }
        if bytes.len() >= 2 {
            let (head, rest) = bytes.split_at(2);
            self.add_to_hash(u64::from(u16::from_le_bytes(head.try_into().unwrap())));
            bytes = rest;
        }
        if let Some(&b) = bytes.first() {
            self.add_to_hash(u64::from(b));
        }
    }

    #[inline]
    fn write_u8(&mut self, i: u8) {
        self.add_to_hash(u64::from(i));
    }

    #[inline]
    fn write_u16(&mut self, i: u16) {
        self.add_to_hash(u64::from(i));
    }

    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.add_to_hash(u64::from(i));
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.add_to_hash(i);
    }

    #[inline]
    fn write_u128(&mut self, i: u128) {
        self.add_to_hash(i as u64);
        self.add_to_hash((i >> 64) as u64);
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hash_of(bytes: &[u8]) -> u64 {
        let mut h = FxHasher::default();
        h.write(bytes);
        h.finish()
    }

    #[test]
    fn deterministic_across_instances() {
        assert_eq!(hash_of(b"critical lock"), hash_of(b"critical lock"));
        let mut a = FxHasher::default();
        a.write_u64(42);
        let mut b = FxHasher::default();
        b.write_u64(42);
        assert_eq!(a.finish(), b.finish());
    }

    #[test]
    fn distinguishes_inputs() {
        assert_ne!(hash_of(b"a"), hash_of(b"b"));
        assert_ne!(hash_of(b""), hash_of(b"a"));
        let mut h = FxHasher::default();
        h.write_u32(7);
        let mut g = FxHasher::default();
        g.write_u32(8);
        assert_ne!(h.finish(), g.finish());
    }

    #[test]
    fn map_and_set_usable() {
        let mut m: FxHashMap<u32, &str> = FxHashMap::default();
        m.insert(1, "one");
        m.insert(2, "two");
        assert_eq!(m.get(&1), Some(&"one"));
        let mut s: FxHashSet<u64> = FxHashSet::default();
        s.insert(9);
        assert!(s.contains(&9));
    }

    #[test]
    fn tail_bytes_hashed() {
        // 9 bytes exercises the 8 + 1 split; 7 exercises 4 + 2 + 1.
        assert_ne!(hash_of(&[1; 9]), hash_of(&[1; 8]));
        assert_ne!(hash_of(b"abcdefg"), hash_of(b"abcdefh"));
    }
}

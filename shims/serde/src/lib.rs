//! Offline stand-in for `serde`.
//!
//! The build environment has no registry access, so this crate provides the
//! subset of serde this workspace relies on, modeled as conversions to and
//! from an owned JSON [`Value`] instead of serde's visitor architecture:
//!
//! * [`Serialize`] / [`Deserialize`] traits (derivable via the re-exported
//!   macros from the local `serde_derive` shim);
//! * implementations for the primitive, container and map types used across
//!   the workspace;
//! * the [`Value`] data model itself (printed/parsed by the `serde_json`
//!   shim).
//!
//! Integers are kept exact (`u64`/`i64` variants) so `u64::MAX` sentinels
//! survive round-trips; floats use Rust's shortest-roundtrip `Display`.

pub use serde_derive::{Deserialize, Serialize};

use std::collections::{BTreeMap, HashMap};
use std::fmt;

/// An owned JSON value: the data model behind the shim's (de)serialization.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Non-negative integer.
    U64(u64),
    /// Negative integer.
    I64(i64),
    /// Floating-point number.
    F64(f64),
    /// String.
    Str(String),
    /// Array.
    Array(Vec<Value>),
    /// Object; insertion-ordered key/value pairs.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Fetch a key from an object value.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(o) => o.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }
}

/// Deserialization error: a path-less description of the mismatch.
#[derive(Debug, Clone)]
pub struct DeError(String);

impl DeError {
    /// Build an error from any message.
    pub fn custom(msg: impl fmt::Display) -> Self {
        DeError(msg.to_string())
    }
}

impl fmt::Display for DeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for DeError {}

/// Types that can render themselves as a JSON [`Value`].
pub trait Serialize {
    /// Convert to the JSON data model.
    fn to_value(&self) -> Value;
}

/// Types that can be rebuilt from a JSON [`Value`].
pub trait Deserialize: Sized {
    /// Build from the JSON data model.
    fn from_value(v: &Value) -> Result<Self, DeError>;

    /// The value to use for a missing struct field (`Some` only for
    /// `Option`, mirroring serde's implicit-`None` behavior).
    fn missing() -> Option<Self> {
        None
    }
}

// ------------------------------------------------------------- primitives

macro_rules! impl_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value { Value::U64(*self as u64) }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                match v {
                    Value::U64(n) => <$t>::try_from(*n)
                        .map_err(|_| DeError::custom(format!("{n} out of range for {}", stringify!($t)))),
                    Value::I64(n) => <$t>::try_from(*n)
                        .map_err(|_| DeError::custom(format!("{n} out of range for {}", stringify!($t)))),
                    Value::F64(f) if f.fract() == 0.0 && *f >= 0.0 => Ok(*f as $t),
                    other => Err(DeError::custom(format!(
                        "expected {}, found {other:?}", stringify!($t)
                    ))),
                }
            }
        }
    )*};
}

macro_rules! impl_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                if *self >= 0 { Value::U64(*self as u64) } else { Value::I64(*self as i64) }
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                match v {
                    Value::U64(n) => <$t>::try_from(*n)
                        .map_err(|_| DeError::custom(format!("{n} out of range for {}", stringify!($t)))),
                    Value::I64(n) => <$t>::try_from(*n)
                        .map_err(|_| DeError::custom(format!("{n} out of range for {}", stringify!($t)))),
                    Value::F64(f) if f.fract() == 0.0 => Ok(*f as $t),
                    other => Err(DeError::custom(format!(
                        "expected {}, found {other:?}", stringify!($t)
                    ))),
                }
            }
        }
    )*};
}

impl_unsigned!(u8, u16, u32, u64, usize);
impl_signed!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::F64(*self)
    }
}

impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::F64(f) => Ok(*f),
            Value::U64(n) => Ok(*n as f64),
            Value::I64(n) => Ok(*n as f64),
            other => Err(DeError::custom(format!("expected f64, found {other:?}"))),
        }
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::F64(f64::from(*self))
    }
}

impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        f64::from_value(v).map(|f| f as f32)
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Bool(b) => Ok(*b),
            other => Err(DeError::custom(format!("expected bool, found {other:?}"))),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            other => Err(DeError::custom(format!("expected string, found {other:?}"))),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

// ------------------------------------------------------------- containers

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(x) => x.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }

    fn missing() -> Option<Self> {
        Some(None)
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Array(items) => items.iter().map(T::from_value).collect(),
            other => Err(DeError::custom(format!("expected array, found {other:?}"))),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<V: Serialize> Serialize for BTreeMap<String, V> {
    fn to_value(&self) -> Value {
        Value::Object(self.iter().map(|(k, v)| (k.clone(), v.to_value())).collect())
    }
}

impl<V: Deserialize> Deserialize for BTreeMap<String, V> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Object(o) => {
                o.iter().map(|(k, v)| V::from_value(v).map(|v| (k.clone(), v))).collect()
            }
            other => Err(DeError::custom(format!("expected object, found {other:?}"))),
        }
    }
}

impl<V: Serialize> Serialize for HashMap<String, V> {
    fn to_value(&self) -> Value {
        // Sort for deterministic output.
        let mut pairs: Vec<(String, Value)> =
            self.iter().map(|(k, v)| (k.clone(), v.to_value())).collect();
        pairs.sort_by(|a, b| a.0.cmp(&b.0));
        Value::Object(pairs)
    }
}

impl<V: Deserialize> Deserialize for HashMap<String, V> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Object(o) => {
                o.iter().map(|(k, v)| V::from_value(v).map(|v| (k.clone(), v))).collect()
            }
            other => Err(DeError::custom(format!("expected object, found {other:?}"))),
        }
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        Ok(v.clone())
    }
}

// --------------------------------------------------- derive support shims

/// Helpers used by the generated derive code; not a public API.
pub mod __private {
    use super::{DeError, Deserialize, Value};

    /// Look up a struct field by name, falling back to the type's
    /// missing-field value (e.g. `None` for `Option`).
    pub fn field<T: Deserialize>(v: &Value, name: &str) -> Result<T, DeError> {
        match v {
            Value::Object(o) => {
                match o.iter().find(|(k, _)| k == name) {
                    Some((_, fv)) => T::from_value(fv)
                        .map_err(|e| DeError::custom(format!("field `{name}`: {e}"))),
                    None => T::missing()
                        .ok_or_else(|| DeError::custom(format!("missing field `{name}`"))),
                }
            }
            other => Err(DeError::custom(format!(
                "expected object with field `{name}`, found {other:?}"
            ))),
        }
    }

    /// Index into an array value (tuple structs / tuple variants).
    /// Like [`field`], but a missing field yields `Default::default()`
    /// (the shim's `#[serde(default)]`).
    pub fn field_or_default<T: Deserialize + Default>(v: &Value, name: &str) -> Result<T, DeError> {
        match v {
            Value::Object(o) => match o.iter().find(|(k, _)| k == name) {
                Some((_, fv)) => {
                    T::from_value(fv).map_err(|e| DeError::custom(format!("field `{name}`: {e}")))
                }
                None => Ok(T::default()),
            },
            other => Err(DeError::custom(format!(
                "expected object with field `{name}`, found {other:?}"
            ))),
        }
    }

    pub fn index(v: &Value, i: usize) -> Result<&Value, DeError> {
        match v {
            Value::Array(items) => {
                items.get(i).ok_or_else(|| DeError::custom(format!("missing tuple element {i}")))
            }
            other => Err(DeError::custom(format!("expected array, found {other:?}"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn option_missing_defaults_to_none() {
        let v = Value::Object(vec![]);
        let got: Option<String> = __private::field(&v, "name").unwrap();
        assert!(got.is_none());
    }

    #[test]
    fn u64_roundtrip_exact() {
        let v = u64::MAX.to_value();
        assert_eq!(u64::from_value(&v).unwrap(), u64::MAX);
    }

    #[test]
    fn map_roundtrip() {
        let mut m = BTreeMap::new();
        m.insert("a".to_string(), "1".to_string());
        let v = m.to_value();
        let back: BTreeMap<String, String> = Deserialize::from_value(&v).unwrap();
        assert_eq!(m, back);
    }
}

//! Offline stand-in for `serde_derive`.
//!
//! The build environment has no access to crates.io, so this crate
//! re-implements the `#[derive(Serialize, Deserialize)]` macros against the
//! local `serde` shim (a JSON-value data model rather than serde's full
//! serializer/deserializer architecture). It hand-parses the item token
//! stream — no `syn`/`quote` — and supports exactly the shapes this
//! workspace uses:
//!
//! * structs with named fields (plus `#[serde(skip_serializing_if = "…")]`
//!   and `#[serde(default)]`, which fills a missing field from
//!   `Default::default()` on deserialize),
//! * tuple structs (newtype and multi-field),
//! * enums with unit, named-field and tuple variants, serialized in serde's
//!   externally-tagged representation (`"Variant"` / `{"Variant": {...}}`).
//!
//! Generics are intentionally unsupported; deriving on a generic type is a
//! compile-time error with a clear message.

use proc_macro::{Delimiter, TokenStream, TokenTree};
use std::iter::Peekable;

type Iter = Peekable<proc_macro::token_stream::IntoIter>;

/// One parsed field of a struct or enum variant.
struct Field {
    /// `None` for tuple fields.
    name: Option<String>,
    /// Predicate path from `#[serde(skip_serializing_if = "…")]`.
    skip_if: Option<String>,
    /// `#[serde(default)]`: a missing field deserializes to
    /// `Default::default()` instead of erroring.
    default: bool,
}

enum Shape {
    Named(Vec<Field>),
    Tuple(usize),
    Unit,
}

struct Variant {
    name: String,
    shape: Shape,
}

enum Item {
    Struct { name: String, shape: Shape },
    Enum { name: String, variants: Vec<Variant> },
}

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_serialize(&item).parse().expect("generated Serialize impl must parse")
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_deserialize(&item).parse().expect("generated Deserialize impl must parse")
}

// ---------------------------------------------------------------- parsing

fn parse_item(input: TokenStream) -> Item {
    let mut it: Iter = input.into_iter().peekable();
    loop {
        match it.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                // Outer attribute: consume its bracket group.
                it.next();
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                // Visibility, possibly `pub(crate)`.
                if let Some(TokenTree::Group(g)) = it.peek() {
                    if g.delimiter() == Delimiter::Parenthesis {
                        it.next();
                    }
                }
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "struct" => {
                return parse_struct(&mut it);
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "enum" => {
                return parse_enum(&mut it);
            }
            Some(_) => {}
            None => panic!("serde shim derive: expected `struct` or `enum`"),
        }
    }
}

fn expect_ident(it: &mut Iter, what: &str) -> String {
    match it.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde shim derive: expected {what}, found {other:?}"),
    }
}

fn parse_struct(it: &mut Iter) -> Item {
    let name = expect_ident(it, "struct name");
    match it.next() {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
            Item::Struct { name, shape: Shape::Named(parse_named_fields(g.stream())) }
        }
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
            Item::Struct { name, shape: Shape::Tuple(count_tuple_fields(g.stream())) }
        }
        Some(TokenTree::Punct(p)) if p.as_char() == ';' => {
            Item::Struct { name, shape: Shape::Unit }
        }
        Some(TokenTree::Punct(p)) if p.as_char() == '<' => {
            panic!("serde shim derive: generic type `{name}` is not supported")
        }
        other => panic!("serde shim derive: unexpected token after struct name: {other:?}"),
    }
}

fn parse_enum(it: &mut Iter) -> Item {
    let name = expect_ident(it, "enum name");
    let body = match it.next() {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => g.stream(),
        Some(TokenTree::Punct(p)) if p.as_char() == '<' => {
            panic!("serde shim derive: generic enum `{name}` is not supported")
        }
        other => panic!("serde shim derive: expected enum body, found {other:?}"),
    };
    let mut vit: Iter = body.into_iter().peekable();
    let mut variants = Vec::new();
    loop {
        // Skip attributes (e.g. `#[default]`, doc comments).
        while matches!(vit.peek(), Some(TokenTree::Punct(p)) if p.as_char() == '#') {
            vit.next();
            vit.next();
        }
        let vname = match vit.next() {
            Some(TokenTree::Ident(id)) => id.to_string(),
            None => break,
            other => panic!("serde shim derive: expected variant name, found {other:?}"),
        };
        let shape = match vit.peek() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let s = g.stream();
                vit.next();
                Shape::Named(parse_named_fields(s))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let s = g.stream();
                vit.next();
                Shape::Tuple(count_tuple_fields(s))
            }
            _ => Shape::Unit,
        };
        // Skip an optional discriminant, then the separating comma.
        let mut depth = 0i32;
        while let Some(tt) = vit.peek() {
            match tt {
                TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => depth -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => {
                    vit.next();
                    break;
                }
                _ => {}
            }
            vit.next();
        }
        variants.push(Variant { name: vname, shape });
    }
    Item::Enum { name, variants }
}

fn parse_named_fields(body: TokenStream) -> Vec<Field> {
    let mut it: Iter = body.into_iter().peekable();
    let mut fields = Vec::new();
    loop {
        let mut skip_if = None;
        let mut default = false;
        // Attributes; extract `#[serde(default, skip_serializing_if = "…")]`.
        while matches!(it.peek(), Some(TokenTree::Punct(p)) if p.as_char() == '#') {
            it.next();
            if let Some(TokenTree::Group(g)) = it.next() {
                let opts = extract_serde_opts(g.stream());
                if let Some(pred) = opts.skip_if {
                    skip_if = Some(pred);
                }
                default |= opts.default;
            }
        }
        // Visibility.
        if matches!(it.peek(), Some(TokenTree::Ident(id)) if id.to_string() == "pub") {
            it.next();
            if let Some(TokenTree::Group(g)) = it.peek() {
                if g.delimiter() == Delimiter::Parenthesis {
                    it.next();
                }
            }
        }
        let name = match it.next() {
            Some(TokenTree::Ident(id)) => id.to_string(),
            None => break,
            other => panic!("serde shim derive: expected field name, found {other:?}"),
        };
        match it.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            other => panic!("serde shim derive: expected `:` after `{name}`, found {other:?}"),
        }
        // Skip the type up to the next top-level comma (angle-bracket aware).
        let mut depth = 0i32;
        while let Some(tt) = it.peek() {
            match tt {
                TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => depth -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => {
                    it.next();
                    break;
                }
                _ => {}
            }
            it.next();
        }
        fields.push(Field { name: Some(name), skip_if, default });
    }
    fields
}

fn count_tuple_fields(body: TokenStream) -> usize {
    let mut depth = 0i32;
    let mut commas = 0usize;
    let mut any = false;
    let mut trailing_comma = false;
    for tt in body {
        any = true;
        trailing_comma = false;
        match tt {
            TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => depth -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => {
                commas += 1;
                trailing_comma = true;
            }
            _ => {}
        }
    }
    if !any {
        0
    } else if trailing_comma {
        commas
    } else {
        commas + 1
    }
}

#[derive(Default)]
struct SerdeOpts {
    skip_if: Option<String>,
    default: bool,
}

/// Parse `serde(...)` options out of one attribute body: the
/// `skip_serializing_if = "pred"` predicate and the `default` flag.
fn extract_serde_opts(attr: TokenStream) -> SerdeOpts {
    let mut opts = SerdeOpts::default();
    let mut it = attr.into_iter();
    match it.next() {
        Some(TokenTree::Ident(id)) if id.to_string() == "serde" => {}
        _ => return opts,
    }
    let inner = match it.next() {
        Some(TokenTree::Group(g)) => g.stream(),
        _ => return opts,
    };
    let mut it = inner.into_iter();
    while let Some(tt) = it.next() {
        if let TokenTree::Ident(id) = &tt {
            match id.to_string().as_str() {
                "skip_serializing_if" => {
                    // `= "pred"`
                    it.next();
                    if let Some(TokenTree::Literal(lit)) = it.next() {
                        let s = lit.to_string();
                        opts.skip_if = Some(s.trim_matches('"').to_string());
                    }
                }
                "default" => opts.default = true,
                _ => {}
            }
        }
    }
    opts
}

// ---------------------------------------------------------------- codegen

fn gen_serialize(item: &Item) -> String {
    match item {
        Item::Struct { name, shape } => {
            let body = match shape {
                Shape::Named(fields) => {
                    let mut s =
                        String::from("let mut __o: Vec<(String, ::serde::Value)> = Vec::new();\n");
                    for f in fields {
                        let fname = f.name.as_ref().unwrap();
                        let push = format!(
                            "__o.push((\"{fname}\".to_string(), ::serde::Serialize::to_value(&self.{fname})));"
                        );
                        match &f.skip_if {
                            Some(pred) => {
                                s.push_str(&format!("if !({pred}(&self.{fname})) {{ {push} }}\n"))
                            }
                            None => {
                                s.push_str(&push);
                                s.push('\n');
                            }
                        }
                    }
                    s.push_str("::serde::Value::Object(__o)");
                    s
                }
                Shape::Tuple(1) => "::serde::Serialize::to_value(&self.0)".to_string(),
                Shape::Tuple(n) => {
                    let elems: Vec<String> = (0..*n)
                        .map(|i| format!("::serde::Serialize::to_value(&self.{i})"))
                        .collect();
                    format!("::serde::Value::Array(vec![{}])", elems.join(", "))
                }
                Shape::Unit => "::serde::Value::Null".to_string(),
            };
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                 fn to_value(&self) -> ::serde::Value {{\n{body}\n}}\n}}"
            )
        }
        Item::Enum { name, variants } => {
            let mut arms = String::new();
            for v in variants {
                let vname = &v.name;
                match &v.shape {
                    Shape::Unit => arms.push_str(&format!(
                        "{name}::{vname} => ::serde::Value::Str(\"{vname}\".to_string()),\n"
                    )),
                    Shape::Named(fields) => {
                        let binds: Vec<String> =
                            fields.iter().map(|f| f.name.clone().unwrap()).collect();
                        let mut inner = String::from(
                            "let mut __o: Vec<(String, ::serde::Value)> = Vec::new();\n",
                        );
                        for b in &binds {
                            inner.push_str(&format!(
                                "__o.push((\"{b}\".to_string(), ::serde::Serialize::to_value({b})));\n"
                            ));
                        }
                        arms.push_str(&format!(
                            "{name}::{vname} {{ {} }} => {{\n{inner}\
                             ::serde::Value::Object(vec![(\"{vname}\".to_string(), ::serde::Value::Object(__o))])\n}}\n",
                            binds.join(", ")
                        ));
                    }
                    Shape::Tuple(n) => {
                        let binds: Vec<String> = (0..*n).map(|i| format!("__f{i}")).collect();
                        let inner = if *n == 1 {
                            "::serde::Serialize::to_value(__f0)".to_string()
                        } else {
                            let elems: Vec<String> = binds
                                .iter()
                                .map(|b| format!("::serde::Serialize::to_value({b})"))
                                .collect();
                            format!("::serde::Value::Array(vec![{}])", elems.join(", "))
                        };
                        arms.push_str(&format!(
                            "{name}::{vname}({}) => ::serde::Value::Object(vec![(\"{vname}\".to_string(), {inner})]),\n",
                            binds.join(", ")
                        ));
                    }
                }
            }
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                 fn to_value(&self) -> ::serde::Value {{\nmatch self {{\n{arms}}}\n}}\n}}"
            )
        }
    }
}

fn named_ctor(path: &str, fields: &[Field], src: &str) -> String {
    let inits: Vec<String> = fields
        .iter()
        .map(|f| {
            let fname = f.name.as_ref().unwrap();
            let getter = if f.default { "field_or_default" } else { "field" };
            format!("{fname}: ::serde::__private::{getter}({src}, \"{fname}\")?")
        })
        .collect();
    format!("{path} {{ {} }}", inits.join(", "))
}

fn gen_deserialize(item: &Item) -> String {
    match item {
        Item::Struct { name, shape } => {
            let body = match shape {
                Shape::Named(fields) => format!("Ok({})", named_ctor(name, fields, "__v")),
                Shape::Tuple(1) => format!("Ok({name}(::serde::Deserialize::from_value(__v)?))"),
                Shape::Tuple(n) => {
                    let elems: Vec<String> = (0..*n)
                        .map(|i| {
                            format!("::serde::Deserialize::from_value(::serde::__private::index(__v, {i})?)?")
                        })
                        .collect();
                    format!("Ok({name}({}))", elems.join(", "))
                }
                Shape::Unit => format!("{{ let _ = __v; Ok({name}) }}"),
            };
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                 fn from_value(__v: &::serde::Value) -> ::core::result::Result<Self, ::serde::DeError> {{\n{body}\n}}\n}}"
            )
        }
        Item::Enum { name, variants } => {
            let mut str_arms = String::new();
            let mut obj_arms = String::new();
            for v in variants {
                let vname = &v.name;
                match &v.shape {
                    Shape::Unit => {
                        str_arms.push_str(&format!("\"{vname}\" => Ok({name}::{vname}),\n"))
                    }
                    Shape::Named(fields) => obj_arms.push_str(&format!(
                        "\"{vname}\" => Ok({}),\n",
                        named_ctor(&format!("{name}::{vname}"), fields, "__inner")
                    )),
                    Shape::Tuple(n) => {
                        let ctor = if *n == 1 {
                            format!("{name}::{vname}(::serde::Deserialize::from_value(__inner)?)")
                        } else {
                            let elems: Vec<String> = (0..*n)
                                .map(|i| {
                                    format!("::serde::Deserialize::from_value(::serde::__private::index(__inner, {i})?)?")
                                })
                                .collect();
                            format!("{name}::{vname}({})", elems.join(", "))
                        };
                        obj_arms.push_str(&format!("\"{vname}\" => Ok({ctor}),\n"));
                    }
                }
            }
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                 fn from_value(__v: &::serde::Value) -> ::core::result::Result<Self, ::serde::DeError> {{\n\
                 match __v {{\n\
                 ::serde::Value::Str(__s) => match __s.as_str() {{\n{str_arms}\
                 __other => Err(::serde::DeError::custom(format!(\"unknown variant `{{__other}}` of {name}\"))),\n}},\n\
                 ::serde::Value::Object(__o) if __o.len() == 1 => {{\n\
                 let __k = &__o[0].0;\n\
                 let __inner = &__o[0].1;\n\
                 let _ = __inner;\n\
                 match __k.as_str() {{\n{obj_arms}\
                 __other => Err(::serde::DeError::custom(format!(\"unknown variant `{{__other}}` of {name}\"))),\n}}\n}}\n\
                 _ => Err(::serde::DeError::custom(\"invalid enum representation for {name}\")),\n\
                 }}\n}}\n}}"
            )
        }
    }
}

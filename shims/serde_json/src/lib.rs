//! Offline stand-in for `serde_json`.
//!
//! Prints and parses the JSON [`Value`] model of the local `serde` shim.
//! Covers the API surface this workspace uses: `to_string`,
//! `to_string_pretty`, `to_vec`, `to_writer`, `from_str`, `from_slice`
//! and an [`Error`] type. Integers round-trip exactly (`u64`/`i64`);
//! floats print via Rust's shortest-roundtrip formatting.

pub use serde::Value;
use serde::{Deserialize, Serialize};

use std::fmt;
use std::io::{self, Write};

/// Serialization/deserialization error.
#[derive(Debug)]
pub enum Error {
    /// Malformed JSON text, with a byte offset.
    Syntax { offset: usize, message: String },
    /// The JSON parsed, but did not match the target type.
    Data(String),
    /// An I/O failure while writing.
    Io(io::Error),
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::Syntax { offset, message } => {
                write!(f, "JSON syntax error at byte {offset}: {message}")
            }
            Error::Data(m) => write!(f, "JSON data error: {m}"),
            Error::Io(e) => write!(f, "JSON io error: {e}"),
        }
    }
}

impl std::error::Error for Error {}

impl From<io::Error> for Error {
    fn from(e: io::Error) -> Self {
        Error::Io(e)
    }
}

impl From<serde::DeError> for Error {
    fn from(e: serde::DeError) -> Self {
        Error::Data(e.to_string())
    }
}

/// Crate-local result alias.
pub type Result<T> = std::result::Result<T, Error>;

// ----------------------------------------------------------------- output

fn escape_into(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0C}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn fmt_f64(f: f64, out: &mut String) {
    if f.is_finite() {
        let s = format!("{f}");
        out.push_str(&s);
        // Keep floats recognizably floats, as serde_json does.
        if !s.contains('.') && !s.contains('e') && !s.contains('E') {
            out.push_str(".0");
        }
    } else {
        // serde_json emits null for NaN/inf.
        out.push_str("null");
    }
}

fn write_value(v: &Value, out: &mut String, indent: Option<usize>, level: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::U64(n) => out.push_str(&n.to_string()),
        Value::I64(n) => out.push_str(&n.to_string()),
        Value::F64(f) => fmt_f64(*f, out),
        Value::Str(s) => escape_into(s, out),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, level + 1);
                write_value(item, out, indent, level + 1);
            }
            newline_indent(out, indent, level);
            out.push(']');
        }
        Value::Object(pairs) => {
            if pairs.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, val)) in pairs.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, level + 1);
                escape_into(k, out);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(val, out, indent, level + 1);
            }
            newline_indent(out, indent, level);
            out.push('}');
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, level: usize) {
    if let Some(width) = indent {
        out.push('\n');
        out.extend(std::iter::repeat_n(' ', width * level));
    }
}

/// Serialize to a compact JSON string.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&value.to_value(), &mut out, None, 0);
    Ok(out)
}

/// Serialize to a 2-space-indented JSON string.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&value.to_value(), &mut out, Some(2), 0);
    Ok(out)
}

/// Serialize to compact JSON bytes.
pub fn to_vec<T: Serialize + ?Sized>(value: &T) -> Result<Vec<u8>> {
    to_string(value).map(String::into_bytes)
}

/// Serialize compact JSON into a writer.
pub fn to_writer<W: Write, T: Serialize + ?Sized>(mut writer: W, value: &T) -> Result<()> {
    writer.write_all(to_string(value)?.as_bytes())?;
    Ok(())
}

// ------------------------------------------------------------------ input

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: impl Into<String>) -> Error {
        Error::Syntax { offset: self.pos, message: message.into() }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek()?;
        self.pos += 1;
        Some(b)
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<()> {
        if self.bump() == Some(b) {
            Ok(())
        } else {
            self.pos = self.pos.saturating_sub(1);
            Err(self.err(format!("expected `{}`", b as char)))
        }
    }

    fn eat_lit(&mut self, lit: &str) -> Result<()> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(())
        } else {
            Err(self.err(format!("expected `{lit}`")))
        }
    }

    fn value(&mut self) -> Result<Value> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') => {
                self.eat_lit("null")?;
                Ok(Value::Null)
            }
            Some(b't') => {
                self.eat_lit("true")?;
                Ok(Value::Bool(true))
            }
            Some(b'f') => {
                self.eat_lit("false")?;
                Ok(Value::Bool(false))
            }
            Some(b'"') => self.string().map(Value::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(c) => Err(self.err(format!("unexpected byte `{}`", c as char))),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn array(&mut self) -> Result<Value> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            items.push(self.value()?);
            self.skip_ws();
            match self.bump() {
                Some(b',') => continue,
                Some(b']') => return Ok(Value::Array(items)),
                _ => {
                    self.pos = self.pos.saturating_sub(1);
                    return Err(self.err("expected `,` or `]`"));
                }
            }
        }
    }

    fn object(&mut self) -> Result<Value> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            let val = self.value()?;
            pairs.push((key, val));
            self.skip_ws();
            match self.bump() {
                Some(b',') => continue,
                Some(b'}') => return Ok(Value::Object(pairs)),
                _ => {
                    self.pos = self.pos.saturating_sub(1);
                    return Err(self.err("expected `,` or `}`"));
                }
            }
        }
    }

    fn string(&mut self) -> Result<String> {
        self.expect(b'"')?;
        let mut s = String::new();
        loop {
            match self.bump() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => return Ok(s),
                Some(b'\\') => match self.bump() {
                    Some(b'"') => s.push('"'),
                    Some(b'\\') => s.push('\\'),
                    Some(b'/') => s.push('/'),
                    Some(b'n') => s.push('\n'),
                    Some(b'r') => s.push('\r'),
                    Some(b't') => s.push('\t'),
                    Some(b'b') => s.push('\u{08}'),
                    Some(b'f') => s.push('\u{0C}'),
                    Some(b'u') => {
                        let cp = self.hex4()?;
                        // Surrogate pair handling for non-BMP chars.
                        let c = if (0xD800..0xDC00).contains(&cp) {
                            self.eat_lit("\\u")?;
                            let lo = self.hex4()?;
                            if !(0xDC00..0xE000).contains(&lo) {
                                return Err(self.err("invalid low surrogate"));
                            }
                            let combined = 0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00);
                            char::from_u32(combined)
                        } else {
                            char::from_u32(cp)
                        };
                        s.push(c.ok_or_else(|| self.err("invalid unicode escape"))?);
                    }
                    _ => return Err(self.err("invalid escape")),
                },
                Some(b) if b < 0x80 => s.push(b as char),
                Some(b) => {
                    // Re-decode the UTF-8 sequence starting at `b`.
                    let start = self.pos - 1;
                    let len = match b {
                        0xC0..=0xDF => 2,
                        0xE0..=0xEF => 3,
                        0xF0..=0xF7 => 4,
                        _ => return Err(self.err("invalid UTF-8")),
                    };
                    let end = start + len;
                    let chunk =
                        self.bytes.get(start..end).ok_or_else(|| self.err("truncated UTF-8"))?;
                    let text = std::str::from_utf8(chunk).map_err(|_| self.err("invalid UTF-8"))?;
                    s.push_str(text);
                    self.pos = end;
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32> {
        let mut v = 0u32;
        for _ in 0..4 {
            let b = self.bump().ok_or_else(|| self.err("truncated \\u escape"))?;
            let d = (b as char).to_digit(16).ok_or_else(|| self.err("invalid hex digit"))?;
            v = v * 16 + d;
        }
        Ok(v)
    }

    fn number(&mut self) -> Result<Value> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        if !is_float {
            if let Ok(u) = text.parse::<u64>() {
                return Ok(Value::U64(u));
            }
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Value::I64(i));
            }
        }
        text.parse::<f64>()
            .map(Value::F64)
            .map_err(|_| self.err(format!("invalid number `{text}`")))
    }
}

/// Parse a [`Value`] from bytes, requiring the input to be fully consumed.
fn parse_value(bytes: &[u8]) -> Result<Value> {
    let mut p = Parser { bytes, pos: 0 };
    let v = p.value()?;
    p.skip_ws();
    if p.pos != bytes.len() {
        return Err(p.err("trailing characters"));
    }
    Ok(v)
}

/// Deserialize a value from a JSON string.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T> {
    from_slice(s.as_bytes())
}

/// Deserialize a value from JSON bytes.
pub fn from_slice<T: Deserialize>(bytes: &[u8]) -> Result<T> {
    let v = parse_value(bytes)?;
    Ok(T::from_value(&v)?)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_scalars() {
        let s = to_string(&u64::MAX).unwrap();
        assert_eq!(s, "18446744073709551615");
        let back: u64 = from_str(&s).unwrap();
        assert_eq!(back, u64::MAX);
    }

    #[test]
    fn roundtrip_nested() {
        let v = Value::Object(vec![
            ("name".into(), Value::Str("a \"b\"\n".into())),
            ("xs".into(), Value::Array(vec![Value::U64(1), Value::F64(0.5)])),
            ("none".into(), Value::Null),
        ]);
        let s = to_string(&v).unwrap();
        let back: Value = from_str(&s).unwrap();
        assert_eq!(v, back);
        let pretty = to_string_pretty(&v).unwrap();
        let back: Value = from_str(&pretty).unwrap();
        assert_eq!(v, back);
    }

    #[test]
    fn float_keeps_dot() {
        assert_eq!(to_string(&2.0f64).unwrap(), "2.0");
        assert_eq!(to_string(&1.5f64).unwrap(), "1.5");
    }

    #[test]
    fn unicode_escapes() {
        let back: String = from_str(r#""é😀é""#).unwrap();
        assert_eq!(back, "é😀é");
    }

    #[test]
    fn syntax_errors() {
        assert!(from_str::<Value>("{").is_err());
        assert!(from_str::<Value>("[1,]").is_err());
        assert!(from_str::<Value>("1 2").is_err());
    }
}

//! # critlock — Critical Lock Analysis
//!
//! A Rust reproduction of *Critical Lock Analysis: Diagnosing Critical
//! Section Bottlenecks in Multithreaded Applications* (Chen & Stenström,
//! SC 2012).
//!
//! This facade crate re-exports the workspace members:
//!
//! * [`trace`] — synchronization event traces, builder DSL, codecs;
//! * [`sim`] — deterministic discrete-event execution simulator;
//! * [`instrument`] — real-thread instrumented `Mutex`/`Barrier`/`Condvar`;
//! * [`analysis`] — the critical-path walk, TYPE 1/TYPE 2 lock metrics,
//!   reports, what-if projection, online profiling;
//! * [`workloads`] — the paper's benchmark suite re-modelled (micro,
//!   Radiosity, TSP, UTS, Water-nsquared, Volrend, Raytrace, an
//!   OpenLDAP-like server) with original and optimized variants.
//!
//! See `README.md` for a walkthrough and `EXPERIMENTS.md` for the
//! paper-versus-measured record of every table and figure.

#![warn(missing_docs)]

pub use critlock_analysis as analysis;
pub use critlock_instrument as instrument;
pub use critlock_sim as sim;
pub use critlock_trace as trace;
pub use critlock_workloads as workloads;

pub use critlock_analysis::{analyze, AnalysisReport};
pub use critlock_sim::{MachineConfig, Simulator};
pub use critlock_trace::Trace;

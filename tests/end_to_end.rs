//! End-to-end integration: workload → trace → (de)serialization →
//! analysis → reporting, across all crates through the facade.

use critlock::analysis::report::{render_csv, render_text, RenderOptions};
use critlock::analysis::validate::{check_critical_path, check_trace};
use critlock::analysis::{analyze, critical_path, online_analyze};
use critlock::workloads::{suite, WorkloadCfg};

fn tmpdir() -> std::path::PathBuf {
    let d = std::env::temp_dir().join("critlock-e2e");
    std::fs::create_dir_all(&d).unwrap();
    d
}

#[test]
fn every_workload_end_to_end() {
    for spec in suite::all() {
        let cfg = WorkloadCfg::with_threads(6).with_scale(0.25);
        let trace = spec.run(&cfg).unwrap_or_else(|e| panic!("{}: {e}", spec.name));

        // Protocol and cross-thread consistency.
        trace.validate().unwrap_or_else(|e| panic!("{}: {e}", spec.name));
        let warnings = check_trace(&trace);
        assert!(warnings.is_empty(), "{}: {warnings:?}", spec.name);

        // Binary round-trip preserves everything.
        let path = tmpdir().join(format!("{}.cltr", spec.name));
        critlock::trace::codec::save(&trace, &path).unwrap();
        let back = critlock::trace::codec::load(&path).unwrap();
        assert_eq!(trace, back, "{}: codec round-trip", spec.name);
        std::fs::remove_file(&path).ok();

        // The walk tiles the makespan on virtual-time traces.
        let cp = critical_path(&trace);
        assert!(cp.complete, "{}: incomplete walk", spec.name);
        let cp_warnings = check_critical_path(&trace, &cp);
        assert!(cp_warnings.is_empty(), "{}: {cp_warnings:?}", spec.name);

        // Reports render in all formats.
        let rep = analyze(&trace);
        let text = render_text(&rep, &RenderOptions::default());
        assert!(text.contains("critical lock analysis"));
        let csv = render_csv(&rep);
        assert_eq!(csv.lines().count(), 1 + rep.locks.len());
        let json = critlock::analysis::report::to_json(&rep);
        serde_roundtrip(&json, &rep);
    }
}

fn serde_roundtrip(json: &str, rep: &critlock::AnalysisReport) {
    let back: critlock::AnalysisReport = serde_json::from_str(json).unwrap();
    assert_eq!(&back, rep);
}

#[test]
fn online_matches_offline_cp_length_on_all_workloads() {
    for spec in suite::all() {
        let cfg = WorkloadCfg::with_threads(5).with_scale(0.25);
        let trace = spec.run(&cfg).unwrap();
        let offline = critical_path(&trace);
        let online = online_analyze(&trace);
        assert_eq!(
            online.cp_length, offline.length,
            "{}: online {} vs offline {}",
            spec.name, online.cp_length, offline.length
        );
    }
}

#[test]
fn jsonl_and_binary_formats_agree() {
    let cfg = WorkloadCfg::with_threads(4).with_scale(0.3);
    let trace = suite::run_workload("radiosity", &cfg).unwrap().unwrap();
    let d = tmpdir();
    let pb = d.join("r.cltr");
    let pj = d.join("r.jsonl");
    critlock::trace::codec::save(&trace, &pb).unwrap();
    critlock::trace::jsonl::save(&trace, &pj).unwrap();
    let a = critlock::trace::jsonl::load_auto(&pb).unwrap();
    let b = critlock::trace::jsonl::load_auto(&pj).unwrap();
    assert_eq!(a, b);
    std::fs::remove_file(&pb).ok();
    std::fs::remove_file(&pj).ok();
}

#[test]
fn analysis_is_deterministic_across_runs() {
    let cfg = WorkloadCfg::with_threads(8).with_scale(0.3).with_seed(99);
    let a = analyze(&suite::run_workload("tsp", &cfg).unwrap().unwrap());
    let b = analyze(&suite::run_workload("tsp", &cfg).unwrap().unwrap());
    assert_eq!(a, b);
}

#[test]
fn seeds_change_executions_but_not_conclusions() {
    // Different seeds give different traces, but the bottleneck lock of a
    // saturated workload is stable.
    let mut tops = Vec::new();
    for seed in [1u64, 2, 3] {
        let cfg = WorkloadCfg::with_threads(16).with_scale(0.55).with_seed(seed);
        let trace = suite::run_workload("tsp", &cfg).unwrap().unwrap();
        let rep = analyze(&trace);
        tops.push(rep.top_critical_lock().unwrap().name.clone());
    }
    assert!(tops.iter().all(|t| t == "Qlock"), "{tops:?}");
}

#[test]
fn facade_reexports_work() {
    // The facade crate exposes the main entry points directly.
    let mut sim = critlock::Simulator::new("facade", critlock::MachineConfig::ideal());
    let l = sim.add_lock("L");
    sim.spawn("t", critlock::sim::ScriptProgram::new(vec![critlock::sim::Op::Critical(l, 5)]));
    let trace: critlock::Trace = sim.run().unwrap();
    let rep = critlock::analyze(&trace);
    assert_eq!(rep.lock_by_name("L").unwrap().cp_time, 5);
}

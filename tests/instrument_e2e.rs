//! Real-thread end-to-end tests: the instrumentation runtime produces
//! traces the analysis engine accepts and draws sensible conclusions
//! from, despite real-clock noise.

use critlock::analysis::{analyze, critical_path, online_analyze};
use critlock::instrument::{run_workers, spawn, Session};
use critlock::workloads::micro;
use std::sync::Arc;

#[test]
fn real_fork_join_pipeline() {
    let session = Session::new("fork-join");
    let m = Arc::new(session.mutex("L", 0u64));
    let b = Arc::new(session.barrier("B", 3));
    let handles: Vec<_> = (0..3)
        .map(|i| {
            let (m, b) = (Arc::clone(&m), Arc::clone(&b));
            spawn(&session, format!("w{i}"), move || {
                for _ in 0..10 {
                    {
                        let mut g = m.lock();
                        for _ in 0..20_000 {
                            *g = std::hint::black_box(*g + 1);
                        }
                    }
                    b.wait();
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
    let trace = session.finish().unwrap();
    trace.validate().unwrap();
    assert_eq!(*m.lock(), 3 * 10 * 20_000);

    let cp = critical_path(&trace);
    assert!(cp.complete);
    assert!(cp.length <= trace.makespan());
    // Real-clock traces have gaps (futex wakeup latency after each
    // barrier); with critical sections long enough to dominate, coverage
    // stays substantial. On single-CPU hosts the wakeup latency is a
    // larger share of the makespan — observed values sit just below
    // 0.3 there — so the floor leaves headroom for scheduler noise.
    assert!(cp.coverage() > 0.2, "coverage {}", cp.coverage());

    let rep = analyze(&trace);
    let l = rep.lock_by_name("L").unwrap();
    assert_eq!(l.total_invocations, 30);
    let eps = critlock::trace::barrier_episodes(&trace);
    assert_eq!(eps.len(), 30);
}

#[test]
fn real_micro_saved_and_reloaded() {
    let trace = micro::run_real(3, 60_000, 75_000).unwrap();
    let dir = std::env::temp_dir().join("critlock-e2e-real");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("micro-real.cltr");
    critlock::trace::codec::save(&trace, &path).unwrap();
    let back = critlock::trace::codec::load(&path).unwrap();
    assert_eq!(trace, back);
    std::fs::remove_file(&path).ok();

    let rep = analyze(&back);
    assert_eq!(rep.lock_by_name("L1").unwrap().total_invocations, 3);
    assert_eq!(rep.lock_by_name("L2").unwrap().total_invocations, 3);
}

#[test]
fn online_profile_works_on_real_traces() {
    let session = Session::new("online-real");
    let m = Arc::new(session.mutex("hot", 0u64));
    let m2 = Arc::clone(&m);
    // Each hold must be long enough to measure a nonzero duration at
    // clock resolution: the online profile attributes path time to a
    // lock only while the clock advances inside the critical section,
    // so sub-tick holds can legitimately leave `hot` off the path.
    run_workers(&session, 4, move |_| {
        for _ in 0..50 {
            let mut g = m2.lock();
            for _ in 0..20_000 {
                *g = std::hint::black_box(*g + 1);
            }
        }
    });
    let trace = session.finish().unwrap();
    let online = online_analyze(&trace);
    assert!(online.cp_length > 0);
    assert!(online.lock_by_name("hot").is_some());
}

#[test]
fn panicking_worker_still_flushes_events() {
    let session = Session::new("panics");
    let h = spawn(&session, "doomed", || {
        // No locks held at panic time, so the stream stays well-formed.
        panic!("intentional");
    });
    assert!(h.join().is_err());
    let trace = session.finish().unwrap();
    assert_eq!(trace.num_threads(), 2);
    // Start and exit were both recorded despite the panic.
    let events = &trace.threads[1].events;
    assert_eq!(events.first().unwrap().kind, critlock::trace::EventKind::ThreadStart);
    assert_eq!(events.last().unwrap().kind, critlock::trace::EventKind::ThreadExit);
}

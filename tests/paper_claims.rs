//! The paper's headline claims, asserted as integration tests at
//! moderate scale. (Full-scale versions with the exact paper numbers
//! live in `critlock-bench`; these run fast under `cargo test`.)

use critlock::analysis::{analyze, rank_targets, rank_targets_by_wait, ranking_disagreement};
use critlock::workloads::{fig1_trace, micro, radiosity, suite, tsp, WorkloadCfg};

/// §II / Fig. 1 — idleness is not criticality: the longest-waited lock
/// (L4) is off the path, an uncontended lock (L3) is on it.
#[test]
fn claim_idleness_is_not_criticality() {
    let rep = analyze(&fig1_trace());
    let l3 = rep.lock_by_name("L3").unwrap();
    let l4 = rep.lock_by_name("L4").unwrap();
    assert_eq!(l3.total_wait, 0, "L3 never waits");
    assert!(l3.cp_time > 0, "yet L3 is critical");
    assert!(l4.total_wait > 0, "L4 carries the big wait");
    assert_eq!(l4.cp_time, 0, "yet L4 is a normal lock");
}

/// §V.B / Fig. 6 — the two methods pick different locks on the
/// micro-benchmark and the CP-time choice wins in practice.
#[test]
fn claim_micro_benchmark_methods_disagree_and_cp_wins() {
    let cfg = WorkloadCfg::with_threads(4);
    let base = micro::run(&cfg).unwrap();
    let rep = analyze(&base);

    let by_cp = rank_targets(&rep, 0.5);
    let by_wait = rank_targets_by_wait(&rep, 0.5);
    assert_eq!(by_cp[0].name, "L2");
    assert_eq!(by_wait[0].name, "L1");
    assert!(ranking_disagreement(&rep).is_some());

    // Equal-effort optimizations: the CP-time pick must give the larger
    // measured speedup.
    let s_l1 = base.makespan() as f64 / micro::run_l1_optimized(&cfg).unwrap().makespan() as f64;
    let s_l2 = base.makespan() as f64 / micro::run_l2_optimized(&cfg).unwrap().makespan() as f64;
    assert!(s_l2 > s_l1);
}

/// §V.D / Fig. 9 — the critical lock changes with scale: freInter rules
/// small runs, tq[0].qlock takes over as threads grow.
#[test]
fn claim_radiosity_bottleneck_shifts_with_scale() {
    let scale = 0.5;
    let low = analyze(&radiosity::run(&WorkloadCfg::with_threads(4).with_scale(scale)).unwrap());
    let high = analyze(&radiosity::run(&WorkloadCfg::with_threads(16).with_scale(scale)).unwrap());
    assert_eq!(low.top_critical_lock().unwrap().name, "freeInter");
    assert_eq!(high.top_critical_lock().unwrap().name, "tq[0].qlock");
}

/// §V.D.2 — the quantification explains *why*: high contention
/// probability along the path and invocation inflation for the task
/// queue, neither of which the wait-time metric shows.
#[test]
fn claim_radiosity_quantification_mechanisms() {
    let rep = analyze(&radiosity::run(&WorkloadCfg::with_threads(16).with_scale(0.5)).unwrap());
    let tq0 = rep.lock_by_name("tq[0].qlock").unwrap();
    assert!(tq0.cont_prob_on_cp > tq0.avg_cont_prob * 0.8);
    assert!(tq0.incr_invocations > 1.2, "{}", tq0.incr_invocations);
    assert!(tq0.cp_time_frac > tq0.avg_wait_frac);
}

/// §V.D.3 / Fig. 12 — optimizing the identified lock helps; optimizing a
/// lock the method calls negligible does not.
#[test]
fn claim_optimizing_the_right_lock_helps() {
    use critlock::sim::replay::{replay, ReplayConfig};
    let cfg = WorkloadCfg::with_threads(16).with_scale(0.5);
    let orig = radiosity::run(&cfg).unwrap();
    let opt = radiosity::run_optimized(&cfg).unwrap();
    assert!(opt.makespan() < orig.makespan(), "two-lock queue helps");

    // Shrinking a negligible lock (free_edge) does almost nothing.
    let rep = analyze(&orig);
    let edge = rep.lock_by_name("free_edge").unwrap();
    assert!(edge.cp_time_frac < 0.02);
    let lock = orig.object_by_name("free_edge").unwrap();
    let replayed =
        replay(&orig, cfg.machine.clone(), &ReplayConfig::shrink_lock(lock, 0.5)).unwrap();
    let gain = orig.makespan() as f64 / replayed.makespan() as f64 - 1.0;
    assert!(gain < 0.02, "negligible lock gave {:.2}%", gain * 100.0);
}

/// §V.E — TSP's global queue lock dominates and splitting it pays off.
#[test]
fn claim_tsp_queue_split_pays_off() {
    let cfg = WorkloadCfg::with_threads(16).with_scale(0.55);
    let orig = tsp::run(&cfg).unwrap();
    let opt = tsp::run_optimized(&cfg).unwrap();
    let rep = analyze(&orig);
    assert_eq!(rep.rank_by_cp_time("Qlock"), Some(1));
    assert!(opt.makespan() < orig.makespan());
}

/// §V.C — for a well-tuned server the tool reports *no* bottleneck
/// instead of inventing one.
#[test]
fn claim_tuned_server_is_clean() {
    let rep = analyze(
        &suite::run_workload("openldap", &WorkloadCfg::with_threads(16).with_scale(0.4))
            .unwrap()
            .unwrap(),
    );
    if let Some(top) = rep.top_critical_lock() {
        assert!(top.cp_time_frac < 0.08, "{} {:.1}%", top.name, top.cp_time_frac * 100.0);
    }
}

/// §V.C — UTS: locks without any contention still matter when they sit
/// on the critical path.
#[test]
fn claim_uncontended_locks_can_be_critical() {
    let rep = analyze(
        &suite::run_workload("uts", &WorkloadCfg::with_threads(8).with_scale(0.4))
            .unwrap()
            .unwrap(),
    );
    let top = rep.top_critical_lock().unwrap();
    assert!(top.name.starts_with("stackLock["));
    assert!(top.cp_time_frac > 0.01);
    assert!(top.avg_wait_frac < 0.01);
}

/// §III — the paper's algorithm walks the whole path: its length always
/// equals the end-to-end completion time on clean traces.
#[test]
fn claim_walk_explains_the_whole_completion_time() {
    for name in ["micro", "radiosity", "tsp", "uts", "water-nsquared", "volrend", "raytrace"] {
        let cfg = WorkloadCfg::with_threads(6).with_scale(0.3);
        let rep = analyze(&suite::run_workload(name, &cfg).unwrap().unwrap());
        assert!(rep.cp_complete, "{name}");
        assert_eq!(rep.cp_length, rep.makespan, "{name}");
    }
}

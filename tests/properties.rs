//! Property-based tests over randomized simulated executions.
//!
//! Strategy: generate random (but well-formed) thread programs — mixes of
//! compute blocks and flat critical sections over a shared lock pool,
//! with balanced barrier rounds — run them through the deterministic
//! simulator, and check the invariants every layer of the stack promises.

use critlock::analysis::validate::{check_critical_path, check_trace};
use critlock::analysis::{analyze, critical_path, online_analyze};
use critlock::sim::replay::{replay, ReplayConfig};
use critlock::sim::{MachineConfig, Op, ScriptProgram, Simulator};
use critlock::trace::Trace;
use proptest::prelude::*;

/// One generated operation: kind 0 = compute, 1 = mutex critical section,
/// 2 = rwlock read section, 3 = rwlock write section.
type GenOp = (u8, usize, u64);

/// A generated workload description.
#[derive(Debug, Clone)]
struct Workload {
    num_locks: usize,
    barrier_rounds: usize,
    /// Per thread, per round: operation list.
    threads: Vec<Vec<Vec<GenOp>>>,
    seed: u64,
}

fn op_strategy(num_locks: usize) -> impl Strategy<Value = GenOp> {
    (0u8..4, 0..num_locks, 1u64..40)
}

fn workload_strategy() -> impl Strategy<Value = Workload> {
    (1usize..4, 0usize..3, 2usize..6, any::<u64>()).prop_flat_map(
        |(num_locks, barrier_rounds, num_threads, seed)| {
            let round = prop::collection::vec(op_strategy(num_locks), 0..6);
            let thread = prop::collection::vec(round, barrier_rounds + 1);
            prop::collection::vec(thread, num_threads).prop_map(move |threads| Workload {
                num_locks,
                barrier_rounds,
                threads,
                seed,
            })
        },
    )
}

fn build_and_run(w: &Workload, machine: MachineConfig) -> Trace {
    let mut sim = Simulator::new("prop", machine);
    let locks: Vec<_> = (0..w.num_locks).map(|i| sim.add_lock(format!("L{i}"))).collect();
    let rwlocks: Vec<_> = (0..w.num_locks).map(|i| sim.add_rwlock(format!("R{i}"))).collect();
    let barrier =
        if w.barrier_rounds > 0 { Some(sim.add_barrier("B", w.threads.len())) } else { None };
    for (ti, rounds) in w.threads.iter().enumerate() {
        let mut ops = Vec::new();
        for (ri, round) in rounds.iter().enumerate() {
            for &(kind, lock_idx, dur) in round {
                ops.push(match kind {
                    0 => Op::Compute(dur),
                    1 => Op::Critical(locks[lock_idx], dur),
                    2 => Op::CriticalRead(rwlocks[lock_idx], dur),
                    _ => Op::CriticalWrite(rwlocks[lock_idx], dur),
                });
            }
            if ri < w.barrier_rounds {
                ops.push(Op::Barrier(barrier.expect("barrier registered")));
            }
        }
        sim.spawn(format!("T{ti}"), ScriptProgram::new(ops));
    }
    sim.run().expect("generated workload must run")
}

/// Total running time across all threads (sum of segment durations).
fn total_busy(trace: &Trace) -> u64 {
    let st = critlock::analysis::SegmentedTrace::build(trace);
    st.iter_threads().flat_map(|segs| segs.iter().map(|s| s.duration())).sum()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn trace_is_well_formed(w in workload_strategy()) {
        let trace = build_and_run(&w, MachineConfig::ideal().with_seed(w.seed));
        trace.validate().expect("protocol");
        let warnings = check_trace(&trace);
        prop_assert!(warnings.is_empty(), "{warnings:?}");
    }

    #[test]
    fn critical_path_tiles_makespan(w in workload_strategy()) {
        let trace = build_and_run(&w, MachineConfig::ideal().with_seed(w.seed));
        let cp = critical_path(&trace);
        prop_assert!(cp.complete);
        prop_assert_eq!(cp.length, trace.makespan());
        let warnings = check_critical_path(&trace, &cp);
        prop_assert!(warnings.is_empty(), "{warnings:?}");
    }

    #[test]
    fn online_equals_offline_cp_length(w in workload_strategy()) {
        let trace = build_and_run(&w, MachineConfig::ideal().with_seed(w.seed));
        let offline = critical_path(&trace);
        let online = online_analyze(&trace);
        prop_assert_eq!(online.cp_length, offline.length);
    }

    #[test]
    fn metrics_are_internally_consistent(w in workload_strategy()) {
        let trace = build_and_run(&w, MachineConfig::ideal().with_seed(w.seed));
        let rep = analyze(&trace);
        // Flat (non-nested) critical sections: per-lock CP times cannot
        // exceed the critical path in total.
        let sum: u64 = rep.locks.iter().map(|l| l.cp_time).sum();
        prop_assert!(sum <= rep.cp_length, "{sum} > {}", rep.cp_length);
        for l in &rep.locks {
            prop_assert!(l.cp_time <= l.total_hold);
            prop_assert!(l.contended_on_cp <= l.invocations_on_cp);
            prop_assert!(l.invocations_on_cp <= l.total_invocations);
            prop_assert!((0.0..=1.0).contains(&l.cont_prob_on_cp));
            prop_assert!((0.0..=1.0).contains(&l.avg_cont_prob));
        }
    }

    #[test]
    fn codec_roundtrips(w in workload_strategy()) {
        let trace = build_and_run(&w, MachineConfig::ideal().with_seed(w.seed));
        let mut buf = Vec::new();
        critlock::trace::codec::write_trace(&trace, &mut buf).expect("encode");
        let back = critlock::trace::codec::read_trace(&mut std::io::Cursor::new(&buf))
            .expect("decode");
        prop_assert_eq!(&trace, &back);

        let mut jbuf = Vec::new();
        critlock::trace::jsonl::write_trace(&trace, &mut jbuf).expect("encode jsonl");
        let back = critlock::trace::jsonl::read_trace(&mut std::io::Cursor::new(&jbuf))
            .expect("decode jsonl");
        prop_assert_eq!(&trace, &back);
    }

    #[test]
    fn parallel_analysis_is_bit_identical_to_serial(w in workload_strategy()) {
        // The determinism contract of the parallel pipeline: at any pool
        // size, decode, segmentation, metrics and the online pass produce
        // *exactly* the report a 1-thread pool produces — equal structs
        // and byte-identical JSON (so float formatting is covered too).
        let trace = build_and_run(&w, MachineConfig::ideal().with_seed(w.seed));
        let mut buf = Vec::new();
        critlock::trace::codec::write_trace(&trace, &mut buf).expect("encode");

        let serial_pool = rayon::ThreadPoolBuilder::new().num_threads(1).build().unwrap();
        let parallel_pool = rayon::ThreadPoolBuilder::new().num_threads(8).build().unwrap();

        let serial_trace = serial_pool
            .install(|| critlock::trace::codec::read_trace_bytes(&buf))
            .expect("serial decode");
        let parallel_trace = parallel_pool
            .install(|| critlock::trace::codec::read_trace_bytes(&buf))
            .expect("parallel decode");
        prop_assert_eq!(&serial_trace, &parallel_trace);

        let serial = serial_pool.install(|| analyze(&serial_trace));
        let parallel = parallel_pool.install(|| analyze(&parallel_trace));
        prop_assert_eq!(&serial, &parallel);
        prop_assert_eq!(
            serde_json::to_string(&serial).unwrap(),
            serde_json::to_string(&parallel).unwrap()
        );

        let serial_online = serial_pool.install(|| online_analyze(&trace));
        let parallel_online = parallel_pool.install(|| online_analyze(&trace));
        prop_assert_eq!(serial_online.cp_length, parallel_online.cp_length);
    }

    #[test]
    fn identity_replay_preserves_work_and_holds(w in workload_strategy()) {
        // Identity replay preserves every thread's work and every lock's
        // hold profile exactly. The makespan is preserved only up to
        // tie-breaking: when two threads request a lock at the same
        // instant, the trace does not record enough to reconstruct the
        // original arbitration, so the replayed schedule may differ at
        // ties (the deterministic no-tie cases in critlock-sim's unit
        // tests pin exact makespan equality).
        let machine = MachineConfig::ideal().with_seed(w.seed);
        let trace = build_and_run(&w, machine.clone());
        let replayed = replay(&trace, machine, &ReplayConfig::identity()).expect("replay");
        replayed.validate().expect("well-formed");
        prop_assert_eq!(total_busy(&replayed), total_busy(&trace));

        let a = analyze(&trace);
        let b = analyze(&replayed);
        let profile = |r: &critlock::AnalysisReport| {
            let mut v: Vec<(String, u64, u64)> = r
                .locks
                .iter()
                .map(|l| (l.name.clone(), l.total_hold, l.total_invocations))
                .collect();
            v.sort();
            v
        };
        prop_assert_eq!(profile(&a), profile(&b));
        let cp = critical_path(&replayed);
        prop_assert!(cp.complete);
        prop_assert_eq!(cp.length, replayed.makespan());
    }

    #[test]
    fn shrink_replay_is_well_formed_and_work_bounded(w in workload_strategy()) {
        // NOTE: "shrinking never slows the run" and "the first-order
        // projection upper-bounds the replayed gain" are NOT theorems once
        // lock acquisition *order* can change — classic scheduling
        // anomalies break both. (They do hold for structured cases; see
        // the deterministic micro/radiosity validations in critlock-bench.)
        // What is provable: the replayed trace is well-formed, its walk
        // tiles its makespan, and — since virtual time only advances while
        // at least one thread computes — its makespan cannot exceed the
        // total busy time, which shrinking only reduces.
        let machine = MachineConfig::ideal().with_seed(w.seed);
        let trace = build_and_run(&w, machine.clone());
        let rep = analyze(&trace);
        if let Some(top) = rep.top_critical_lock() {
            let replayed = replay(
                &trace,
                machine,
                &ReplayConfig::shrink_lock(top.lock, 0.5),
            )
            .expect("replay");
            replayed.validate().expect("replayed trace well-formed");
            let cp = critical_path(&replayed);
            prop_assert!(cp.complete);
            prop_assert_eq!(cp.length, replayed.makespan());
            let busy = total_busy(&trace);
            prop_assert!(
                replayed.makespan() <= busy,
                "replayed {} > total busy {}",
                replayed.makespan(),
                busy
            );
        }
    }

    #[test]
    fn limited_contexts_obey_work_conservation(w in workload_strategy()) {
        // "Fewer contexts is never faster" is not a theorem with locks
        // (scheduling anomalies), but work conservation is: with at most
        // 2 threads running at once, the makespan is at least half the
        // total busy time — and these fixed scripts do the same busy work
        // on any machine.
        let unlimited = build_and_run(&w, MachineConfig::ideal().with_seed(w.seed));
        let mut limited_machine = MachineConfig::ideal().with_seed(w.seed).with_contexts(2);
        limited_machine.quantum = 25;
        let limited = build_and_run(&w, limited_machine);
        let busy = total_busy(&unlimited);
        prop_assert!(
            limited.makespan() >= busy.div_ceil(2),
            "makespan {} < busy {}/2",
            limited.makespan(),
            busy
        );
        // The analysis still works under time-sharing.
        let cp = critical_path(&limited);
        prop_assert!(cp.complete);
        prop_assert_eq!(cp.length, limited.makespan());
    }

    #[test]
    fn window_clips_are_valid_and_analyzable(
        w in workload_strategy(),
        cut in (0u64..100, 0u64..100),
    ) {
        let trace = build_and_run(&w, MachineConfig::ideal().with_seed(w.seed));
        let span = trace.makespan().max(1);
        let lo = trace.start_ts() + span * cut.0.min(cut.1) / 100;
        let hi = trace.start_ts() + span * cut.0.max(cut.1) / 100;
        let clipped = critlock::analysis::clip(&trace, lo, hi);
        clipped.validate().expect("clipped trace well-formed");
        prop_assert!(clipped.makespan() <= hi - lo);
        // The clipped trace analyzes without panicking and the walk stays
        // inside the window.
        let cp = critical_path(&clipped);
        prop_assert!(cp.length <= clipped.makespan());
        for s in &cp.slices {
            prop_assert!(s.start >= lo && s.end <= hi);
        }
        let rep = analyze(&clipped);
        for l in &rep.locks {
            prop_assert!(l.cp_time <= cp.length.max(1));
        }
    }

    #[test]
    fn blocker_wait_matches_episode_waits(w in workload_strategy()) {
        let trace = build_and_run(&w, MachineConfig::ideal().with_seed(w.seed));
        let rep = critlock::analysis::blocker_report(&trace);
        let episode_wait: u64 = critlock::trace::lock_episodes(&trace)
            .iter()
            .filter(|e| e.contended)
            .map(|e| e.wait_time())
            .chain(
                critlock::trace::rw_episodes(&trace)
                    .iter()
                    .filter(|e| e.contended)
                    .map(|e| e.wait_time()),
            )
            .sum();
        // Every contended wait resolves to a blocking edge on clean
        // simulator traces.
        prop_assert_eq!(rep.total_wait, episode_wait);
    }

    #[test]
    fn per_thread_criticality_tiles_the_path(w in workload_strategy()) {
        let trace = build_and_run(&w, MachineConfig::ideal().with_seed(w.seed));
        let cp = critical_path(&trace);
        let rep = critlock::analysis::thread_report(&trace, &cp);
        let total: u64 = rep.threads.iter().map(|t| t.cp_time).sum();
        prop_assert_eq!(total, cp.length);
    }

    #[test]
    fn lock_policies_preserve_totals(w in workload_strategy()) {
        use critlock::sim::LockPolicy;
        // Total hold time per lock is schedule-independent even though
        // orderings differ across hand-off policies.
        let mk = |policy| {
            let machine = MachineConfig::ideal().with_seed(w.seed).with_policy(policy);
            let trace = build_and_run(&w, machine);
            let rep = analyze(&trace);
            let mut holds: Vec<(String, u64, u64)> = rep
                .locks
                .iter()
                .map(|l| (l.name.clone(), l.total_hold, l.total_invocations))
                .collect();
            holds.sort();
            holds
        };
        prop_assert_eq!(mk(LockPolicy::FifoHandoff), mk(LockPolicy::LifoHandoff));
        prop_assert_eq!(mk(LockPolicy::FifoHandoff), mk(LockPolicy::RandomHandoff));
    }
}

//! Whole-stack property test for the zero-copy decode path: a trace
//! serialized at any supported format version, decoded through the
//! borrowed [`RawTraceView`] and through the independent streaming
//! decoder, must produce **bit-identical analyses** — the same
//! [`AnalysisReport`] and the same critical path — because analysis is a
//! pure function of the decoded trace and the two decoders must agree on
//! every byte of it.

use critlock::analysis::{analyze, critical_path};
use critlock::trace::codec::{read_trace, write_trace_with_version, RawTraceView};
use critlock::trace::{Trace, TraceBuilder};
use proptest::prelude::*;

/// A protocol-valid workload: 1–3 threads mixing compute and whole
/// critical sections over two locks.
fn valid_trace_strategy() -> impl Strategy<Value = Trace> {
    prop::collection::vec(prop::collection::vec((1u64..8, 0u8..3), 0..24), 1..4).prop_map(
        |threads| {
            let mut b = TraceBuilder::new("zero-copy-analysis");
            let l1 = b.lock("L1");
            let l2 = b.lock("L2");
            let tids: Vec<_> = (0..threads.len()).map(|i| b.thread(format!("t{i}"), 0)).collect();
            for (tid, ops) in tids.iter().zip(&threads) {
                let mut c = b.on(*tid);
                for &(amount, kind) in ops {
                    match kind {
                        0 => {
                            c.work(amount);
                        }
                        1 => {
                            c.cs(l1, amount);
                        }
                        _ => {
                            c.cs(l2, amount);
                        }
                    }
                }
                c.exit();
            }
            b.build().expect("builder output is always valid")
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn borrowed_and_owned_decoders_yield_identical_analyses(trace in valid_trace_strategy()) {
        for version in 1u64..=3 {
            let mut bytes = Vec::new();
            write_trace_with_version(&trace, version, &mut bytes)
                .expect("encoding cannot fail");

            let owned = read_trace(&mut &bytes[..]).expect("streaming decode must succeed");
            let borrowed = RawTraceView::parse(&bytes)
                .and_then(|view| view.to_trace())
                .expect("borrowed decode must succeed");
            prop_assert_eq!(&borrowed, &owned, "decoders diverged at v{}", version);

            prop_assert_eq!(
                analyze(&borrowed),
                analyze(&owned),
                "analysis reports diverged at v{}", version
            );
            prop_assert_eq!(
                critical_path(&borrowed),
                critical_path(&owned),
                "critical paths diverged at v{}", version
            );
        }
    }
}
